//! CommunityWatch — the always-on detection service over any update
//! source (ROADMAP item 3; the generalization of §7 the CommunityWatch
//! line of related work proposes).
//!
//! [`WatchSink`] is an ordinary [`AnalysisSink`], so the same sink runs
//! over a live daemon feed (`PipelineBuilder …
//! .shutdown(&stop).run()`), a corpus replay, or a sharded batch pass.
//! It maintains **sliding-window baselines** — per-community
//! announce/withdraw rates and session fan-out, per-prefix origin and
//! on-path presence, per-collector activity, and the incremental
//! cross-collector [`AgreementMatrix`] (per-window deltas, no whole-run
//! recompute) — scores deviations online, and emits typed [`Alert`]s:
//!
//! * [`AlertKind::PrefixHijack`] — a prefix announced by an origin AS
//!   outside its learned origin set,
//! * [`AlertKind::RouteLeak`] — a new transit AS on a vantage's path
//!   while the origin is unchanged,
//! * [`AlertKind::BlackholeInjection`] / [`AlertKind::NovelCommunity`] —
//!   the §7 profile checks, when a trained
//!   [`CommunityProfiler`] is attached,
//! * [`AlertKind::BaselineShift`] — windowed announce-rate / fan-out /
//!   distinct-attribute deviations,
//! * [`AlertKind::CollectorOutage`] — a collector silent for consecutive
//!   windows while other collectors stay active.
//!
//! Every observation is accumulated in mergeable, order-insensitive
//! structures and all window-replay detection happens at
//! [`finish`](WatchSink::finish) in deterministic map order, so the
//! alert list is **identical for any shard count or collector order**.
//! With a whole-day window ([`WatchConfig::whole_day`]) and an attached
//! profiler, the online result is byte-equal to the batch
//! [`CommunityProfiler::detect`] — the equivalence the property tests
//! pin.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use kcc_bgp_types::{Asn, Community, MessageKind, Prefix, RouteUpdate};
use kcc_collector::{PeerMeta, SessionKey};
use kcc_obs::{Counter, Gauge, Registry};

use crate::alert::{sort_alerts, Alert, AlertKind, ShiftMetric};
use crate::anomaly::{burst_check, point_checks, AnomalyConfig, CommunityProfiler};
use crate::corpus::AgreementMatrix;
use crate::pipeline::{AnalysisSink, Merge};

/// Detection-service tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchConfig {
    /// Detection window length in µs (default 15 minutes — the paper's
    /// beacon phase length). `u64::MAX` makes the whole run one window.
    pub window_us: u64,
    /// Windows a baseline must observe before deviations are scored
    /// (per prefix for path checks, per community for rate checks).
    pub learn_windows: u64,
    /// The §7 profile-check tuning (used when a trained profiler is
    /// attached with [`WatchSink::with_profile`]).
    pub anomaly: AnomalyConfig,
    /// Rate/fan-out shift factor: observed × windows > factor × sum.
    pub rate_factor: u64,
    /// Minimum observed rate (or fan-out) before a shift can fire.
    pub rate_min: u64,
    /// Consecutive silent windows (while others are active) before a
    /// collector outage fires.
    pub outage_windows: u64,
    /// Run per-prefix origin / on-path checks (hijack, leak).
    pub path_checks: bool,
    /// Run per-community announce-rate and session-fan-out checks.
    pub rate_checks: bool,
    /// Run per-collector outage checks.
    pub outage_checks: bool,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            window_us: 900_000_000,
            learn_windows: 2,
            anomaly: AnomalyConfig::default(),
            rate_factor: 8,
            rate_min: 16,
            outage_windows: 2,
            path_checks: true,
            rate_checks: true,
            outage_checks: true,
        }
    }
}

impl WatchConfig {
    /// One window covering the whole run. Window-replay checks
    /// structurally stay in their learning phase, so (with an attached
    /// profiler) the output equals the batch detector's.
    pub fn whole_day() -> Self {
        WatchConfig { window_us: u64::MAX, ..Default::default() }
    }

    /// Only the §7 profile checks (novel community, blackhole
    /// injection, distinct-attribute bursts).
    pub fn profile_only() -> Self {
        WatchConfig {
            path_checks: false,
            rate_checks: false,
            outage_checks: false,
            ..Default::default()
        }
    }
}

/// The earliest sighting of something in a window — ties on time break
/// on the session key, so merges are order-insensitive.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Sighting {
    time_us: u64,
    session: SessionKey,
}

/// One stream's open distinct-attribute window.
#[derive(Debug, Clone)]
struct StreamWindow {
    window: u64,
    first_us: u64,
    attrs: HashSet<String>,
}

impl StreamWindow {
    fn open(window: u64, first_us: u64) -> Self {
        StreamWindow { window, first_us, attrs: HashSet::new() }
    }
}

/// One prefix's observations in one window.
#[derive(Debug, Clone, Default)]
struct PrefixWindow {
    /// Origin ASes seen, with the earliest sighting of each.
    origins: BTreeMap<Asn, Sighting>,
    /// On-path ASes per collector vantage, with the earliest sighting
    /// and the announced origin at that sighting.
    onpath: BTreeMap<(String, Asn), (Sighting, Asn)>,
}

/// One community's counters in one window.
#[derive(Debug, Clone, Default)]
struct CommunityWindow {
    announces: u64,
    withdraws: u64,
    /// Deterministic per-session hashes — fan-out is their count.
    fanout: BTreeSet<u64>,
}

fn session_hash(key: &SessionKey) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn min_sighting<K: Ord>(map: &mut BTreeMap<K, Sighting>, k: K, s: Sighting) {
    match map.get_mut(&k) {
        Some(cur) => {
            if s < *cur {
                *cur = s;
            }
        }
        None => {
            map.insert(k, s);
        }
    }
}

/// What a watch run concluded.
#[derive(Debug, Clone)]
pub struct WatchReport {
    /// Every alert, in the canonical [`Alert::sort_key`] order.
    pub alerts: Vec<Alert>,
    /// Updates observed.
    pub updates: u64,
    /// Distinct `(session, prefix)` streams with profile state.
    pub streams: u64,
    /// Distinct detection windows that saw any activity.
    pub windows: u64,
    /// The incremental cross-collector presence/agreement matrix at end
    /// of run ([`AgreementMatrix::window_delta`] reads per-window
    /// changes back out).
    pub matrix: AgreementMatrix,
}

impl WatchReport {
    /// `(distinct communities, unanimous, disputed)` across collectors.
    pub fn agreement_summary(&self) -> (usize, usize, usize) {
        self.matrix.summary()
    }

    /// Alert counts per kind label, in label order.
    pub fn kind_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for a in &self.alerts {
            *counts.entry(a.kind.label()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Registers this report's figures in `registry`: alerts by
    /// kind/severity (`kcc_watch_alerts_total`), plus updates, streams
    /// and windows. Deterministic: the same report always adds the same
    /// counts, regardless of how the run was sharded.
    pub fn export_metrics(&self, registry: &Registry) {
        let mut counts: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
        for a in &self.alerts {
            *counts.entry((a.kind.label(), a.severity.label())).or_insert(0) += 1;
        }
        for ((kind, severity), n) in counts {
            registry
                .counter_with("kcc_watch_alerts_total", &[("kind", kind), ("severity", severity)])
                .add(n);
        }
        registry.counter("kcc_watch_updates_total").add(self.updates);
        registry.gauge("kcc_watch_streams").set(self.streams as i64);
        registry.gauge("kcc_watch_windows").set(self.windows as i64);
    }
}

/// Live metric handles a [`WatchSink`] updates as it observes
/// ([`WatchSink::with_metrics`]). Registration happens once up front;
/// the per-update cost is a few relaxed atomic ops.
#[derive(Debug, Clone)]
struct WatchMetrics {
    registry: Arc<Registry>,
    updates: Arc<Counter>,
    point_alerts: Arc<Counter>,
    window_lag: Arc<Gauge>,
    baselines: Arc<Gauge>,
}

/// The always-on detection sink (see the module docs). Feed it through
/// any pipeline shape; call [`finish`](WatchSink::finish) for the
/// [`WatchReport`], or [`poll_new`](WatchSink::poll_new) mid-run (via
/// `Pipeline::sink_mut`) to stream point alerts as they fire.
#[derive(Debug, Clone)]
pub struct WatchSink {
    cfg: WatchConfig,
    profiler: Option<Arc<CommunityProfiler>>,
    alerts: Vec<Alert>,
    polled: usize,
    stream_windows: HashMap<(SessionKey, Prefix), StreamWindow>,
    last_comms: HashMap<(SessionKey, Prefix), Vec<Community>>,
    prefixes: BTreeMap<Prefix, BTreeMap<u64, PrefixWindow>>,
    communities: BTreeMap<Community, BTreeMap<u64, CommunityWindow>>,
    collectors: BTreeMap<String, BTreeMap<u64, u64>>,
    matrix: AgreementMatrix,
    updates: u64,
    metrics: Option<WatchMetrics>,
}

impl WatchSink {
    /// A watch sink without profile checks (attach a trained profiler
    /// with [`with_profile`](WatchSink::with_profile) to enable them).
    pub fn new(cfg: WatchConfig) -> Self {
        WatchSink {
            cfg,
            profiler: None,
            alerts: Vec::new(),
            polled: 0,
            stream_windows: HashMap::new(),
            last_comms: HashMap::new(),
            prefixes: BTreeMap::new(),
            communities: BTreeMap::new(),
            collectors: BTreeMap::new(),
            matrix: AgreementMatrix::new(),
            updates: 0,
            metrics: None,
        }
    }

    /// Attaches live metrics: per-update counters, streaming point
    /// alerts, the window-lag gauge (µs into the current detection
    /// window) and the learned-baseline count, all registered in
    /// `registry`. [`finish`](WatchSink::finish) additionally exports
    /// the final report via [`WatchReport::export_metrics`].
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(WatchMetrics {
            updates: registry.counter("kcc_watch_updates_seen_total"),
            point_alerts: registry.counter("kcc_watch_point_alerts_total"),
            window_lag: registry.gauge("kcc_watch_window_lag_us"),
            baselines: registry.gauge("kcc_watch_baselines"),
            registry,
        });
        self
    }

    /// Attaches a trained [`CommunityProfiler`], enabling the §7 point
    /// checks and per-window distinct-attribute bursts.
    ///
    /// # Panics
    /// If the profiler was never trained.
    pub fn with_profile(mut self, profiler: Arc<CommunityProfiler>) -> Self {
        assert!(profiler.is_trained(), "profiler must be trained before detection");
        self.profiler = Some(profiler);
        self
    }

    fn window_of(&self, time_us: u64) -> u64 {
        time_us / self.cfg.window_us.max(1)
    }

    /// The alerts that streamed since the previous `poll_new` call —
    /// point alerts fire inline; window-replay alerts (hijack, leak,
    /// rate, outage) only appear in [`finish`](WatchSink::finish).
    pub fn poll_new(&mut self) -> &[Alert] {
        let start = self.polled.min(self.alerts.len());
        self.polled = self.alerts.len();
        &self.alerts[start..]
    }

    /// Per-prefix hijack / route-leak detection: replay the prefix's
    /// windows in ascending order, learning for
    /// [`learn_windows`](WatchConfig::learn_windows) observed windows,
    /// then flag novel origins (hijack) and novel per-vantage on-path
    /// ASes whose announced origin was already learned (leak). Each
    /// window's observations fold into the learned sets afterwards, so
    /// a deviation alerts once.
    fn path_alerts(&self, alerts: &mut Vec<Alert>) {
        for (prefix, windows) in &self.prefixes {
            let mut learned_origins: BTreeSet<Asn> = BTreeSet::new();
            let mut learned_onpath: BTreeSet<(&str, Asn)> = BTreeSet::new();
            for (observed, pw) in windows.values().enumerate() {
                if observed as u64 >= self.cfg.learn_windows {
                    for (origin, s) in &pw.origins {
                        if !learned_origins.contains(origin) {
                            alerts.push(Alert::new(
                                s.time_us,
                                Some(s.session.clone()),
                                Some(*prefix),
                                AlertKind::PrefixHijack {
                                    origin: *origin,
                                    expected: learned_origins.iter().copied().collect(),
                                },
                            ));
                        }
                    }
                    for ((collector, asn), (s, origin_at)) in &pw.onpath {
                        if !learned_onpath.contains(&(collector.as_str(), *asn))
                            && learned_origins.contains(origin_at)
                            && !pw.origins.contains_key(asn)
                        {
                            alerts.push(Alert::new(
                                s.time_us,
                                Some(s.session.clone()),
                                Some(*prefix),
                                AlertKind::RouteLeak { via: *asn, origin: *origin_at },
                            ));
                        }
                    }
                }
                learned_origins.extend(pw.origins.keys().copied());
                learned_onpath.extend(pw.onpath.keys().map(|(c, asn)| (c.as_str(), *asn)));
            }
        }
    }

    /// Per-community announce-rate and session-fan-out shifts against
    /// the running mean of previously observed windows.
    fn rate_alerts(&self, alerts: &mut Vec<Alert>) {
        for (community, windows) in &self.communities {
            let mut sum_announces = 0u64;
            let mut sum_fanout = 0u64;
            for (n, (w, cw)) in windows.iter().enumerate() {
                let n = n as u64;
                let fanout = cw.fanout.len() as u64;
                if n >= self.cfg.learn_windows {
                    let at = w.saturating_mul(self.cfg.window_us);
                    if cw.announces >= self.cfg.rate_min
                        && cw.announces * n > self.cfg.rate_factor * sum_announces
                    {
                        alerts.push(Alert::new(
                            at,
                            None,
                            None,
                            AlertKind::BaselineShift {
                                metric: ShiftMetric::AnnounceRate,
                                community: Some(*community),
                                observed: cw.announces,
                                baseline: sum_announces / n,
                            },
                        ));
                    }
                    if fanout >= self.cfg.rate_min && fanout * n > self.cfg.rate_factor * sum_fanout
                    {
                        alerts.push(Alert::new(
                            at,
                            None,
                            None,
                            AlertKind::BaselineShift {
                                metric: ShiftMetric::SessionFanout,
                                community: Some(*community),
                                observed: fanout,
                                baseline: sum_fanout / n,
                            },
                        ));
                    }
                }
                sum_announces += cw.announces;
                sum_fanout += fanout;
            }
        }
    }

    /// Per-collector outage runs: consecutive *globally active* windows
    /// (from the collector's first active window on) in which this
    /// collector was silent while some other collector was not.
    fn outage_alerts(&self, alerts: &mut Vec<Alert>) {
        let active: BTreeSet<u64> =
            self.collectors.values().flat_map(|m| m.keys().copied()).collect();
        for (name, act) in &self.collectors {
            let Some(&first) = act.keys().next() else { continue };
            let mut run_start: Option<u64> = None;
            let mut run_len = 0u64;
            let flush = |start: Option<u64>, len: u64, alerts: &mut Vec<Alert>| {
                if let Some(start) = start {
                    if len >= self.cfg.outage_windows {
                        alerts.push(Alert::new(
                            start.saturating_mul(self.cfg.window_us),
                            None,
                            None,
                            AlertKind::CollectorOutage {
                                collector: name.clone(),
                                silent_windows: len,
                            },
                        ));
                    }
                }
            };
            for &w in active.iter().filter(|&&w| w >= first) {
                if act.contains_key(&w) {
                    flush(run_start.take(), run_len, alerts);
                    run_len = 0;
                } else {
                    run_start.get_or_insert(w);
                    run_len += 1;
                }
            }
            flush(run_start, run_len, alerts);
        }
    }

    /// Closes open windows, runs the window-replay detections in
    /// deterministic order, and returns the sorted report.
    pub fn finish(mut self) -> WatchReport {
        let metrics = self.metrics.take();
        let mut alerts = std::mem::take(&mut self.alerts);
        if let Some(profiler) = &self.profiler {
            for (stream, sw) in &self.stream_windows {
                alerts.extend(burst_check(
                    profiler,
                    &self.cfg.anomaly,
                    stream,
                    sw.attrs.len(),
                    sw.first_us,
                ));
            }
        }
        if self.cfg.path_checks {
            self.path_alerts(&mut alerts);
        }
        if self.cfg.rate_checks {
            self.rate_alerts(&mut alerts);
        }
        if self.cfg.outage_checks {
            self.outage_alerts(&mut alerts);
        }
        sort_alerts(&mut alerts);
        let windows: BTreeSet<u64> =
            self.collectors.values().flat_map(|m| m.keys().copied()).collect();
        let report = WatchReport {
            alerts,
            updates: self.updates,
            streams: self.stream_windows.len() as u64,
            windows: windows.len() as u64,
            matrix: self.matrix,
        };
        if let Some(m) = &metrics {
            report.export_metrics(&m.registry);
        }
        report
    }
}

impl AnalysisSink for WatchSink {
    fn on_session(&mut self, meta: &PeerMeta) {
        // Register the collector column even before (or without) any
        // update: agreement and outage are judged against every known
        // vantage.
        self.collectors.entry(meta.key.collector.clone()).or_default();
        self.matrix.add_collector(&meta.key.collector);
    }

    fn on_update(&mut self, key: &SessionKey, u: &RouteUpdate) {
        self.updates += 1;
        let w = self.window_of(u.time_us);
        let alerts_before = self.alerts.len();
        if let Some(m) = &self.metrics {
            m.updates.inc();
            m.window_lag.set(u.time_us.saturating_sub(w.saturating_mul(self.cfg.window_us)) as i64);
        }
        *self.collectors.entry(key.collector.clone()).or_default().entry(w).or_insert(0) += 1;

        let MessageKind::Announcement(attrs) = &u.kind else {
            // Withdrawals: attribute to the communities last announced
            // on this stream (withdrawals carry no attributes).
            if self.cfg.rate_checks {
                if let Some(comms) = self.last_comms.get(&(key.clone(), u.prefix)) {
                    for c in comms {
                        self.communities.entry(*c).or_default().entry(w).or_default().withdraws +=
                            1;
                    }
                }
            }
            return;
        };

        // §7 profile checks (point alerts stream; bursts close per
        // stream window).
        if let Some(profiler) = self.profiler.clone() {
            point_checks(&profiler, &self.cfg.anomaly, key, u, &mut self.alerts);
            let stream = (key.clone(), u.prefix);
            let sw = self
                .stream_windows
                .entry(stream.clone())
                .or_insert_with(|| StreamWindow::open(w, u.time_us));
            if sw.window != w {
                let closed = std::mem::replace(sw, StreamWindow::open(w, u.time_us));
                self.alerts.extend(burst_check(
                    &profiler,
                    &self.cfg.anomaly,
                    &stream,
                    closed.attrs.len(),
                    closed.first_us,
                ));
            }
            sw.attrs.insert(attrs.communities.canonical_key());
        }

        // Per-prefix origin / on-path presence.
        if self.cfg.path_checks {
            if let Some(origin) = attrs.as_path.origin() {
                let sighting = Sighting { time_us: u.time_us, session: key.clone() };
                let pw = self.prefixes.entry(u.prefix).or_default().entry(w).or_default();
                min_sighting(&mut pw.origins, origin, sighting.clone());
                for asn in attrs.as_path.asns() {
                    let k = (key.collector.clone(), asn);
                    match pw.onpath.get_mut(&k) {
                        Some((cur, cur_origin)) => {
                            if sighting < *cur {
                                *cur = sighting.clone();
                                *cur_origin = origin;
                            }
                        }
                        None => {
                            pw.onpath.insert(k, (sighting.clone(), origin));
                        }
                    }
                }
            }
        }

        // Per-community rates, fan-out and the agreement matrix.
        for c in attrs.communities.iter_classic() {
            self.matrix.observe(&key.collector, *c, w);
            if self.cfg.rate_checks {
                let cw = self.communities.entry(*c).or_default().entry(w).or_default();
                cw.announces += 1;
                cw.fanout.insert(session_hash(key));
            }
        }
        if self.cfg.rate_checks {
            self.last_comms.insert(
                (key.clone(), u.prefix),
                attrs.communities.iter_classic().copied().collect(),
            );
        }
        if let Some(m) = &self.metrics {
            let fired = self.alerts.len() - alerts_before;
            if fired > 0 {
                m.point_alerts.add(fired as u64);
            }
            m.baselines.set((self.prefixes.len() + self.communities.len()) as i64);
        }
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for WatchSink {
    fn merge(&mut self, mut other: Self) {
        self.alerts.append(&mut other.alerts);
        // Streams are keyed by session: disjoint across shards.
        self.stream_windows.extend(other.stream_windows);
        self.last_comms.extend(other.last_comms);
        for (prefix, windows) in other.prefixes {
            let mine = self.prefixes.entry(prefix).or_default();
            for (w, pw) in windows {
                let m = mine.entry(w).or_default();
                for (origin, s) in pw.origins {
                    min_sighting(&mut m.origins, origin, s);
                }
                for (k, (s, origin_at)) in pw.onpath {
                    match m.onpath.get_mut(&k) {
                        Some((cur, cur_origin)) => {
                            if s < *cur {
                                *cur = s;
                                *cur_origin = origin_at;
                            }
                        }
                        None => {
                            m.onpath.insert(k, (s, origin_at));
                        }
                    }
                }
            }
        }
        for (community, windows) in other.communities {
            let mine = self.communities.entry(community).or_default();
            for (w, cw) in windows {
                let m = mine.entry(w).or_default();
                m.announces += cw.announces;
                m.withdraws += cw.withdraws;
                m.fanout.extend(cw.fanout);
            }
        }
        for (name, act) in other.collectors {
            let mine = self.collectors.entry(name).or_default();
            for (w, n) in act {
                *mine.entry(w).or_insert(0) += n;
            }
        }
        self.matrix.merge(other.matrix);
        self.updates += other.updates;
        if self.metrics.is_none() {
            self.metrics = other.metrics;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, run_sharded};
    use kcc_bgp_types::community::well_known::BLACKHOLE;
    use kcc_bgp_types::{CommunitySet, PathAttributes};
    use kcc_collector::{ArchiveSource, UpdateArchive};

    fn key_n(collector: &str, n: u32) -> SessionKey {
        SessionKey::new(collector, Asn(100 + n), format!("10.0.0.{}", n + 1).parse().unwrap())
    }

    fn prefix() -> Prefix {
        "84.205.64.0/24".parse().unwrap()
    }

    fn announce(t: u64, path: &str, comms: &[(u16, u16)]) -> RouteUpdate {
        let attrs = PathAttributes {
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        };
        RouteUpdate::announce(t, prefix(), attrs)
    }

    /// Window length used by the windowed tests (1 ms).
    const W: u64 = 1_000;

    fn cfg() -> WatchConfig {
        WatchConfig { window_us: W, learn_windows: 1, ..Default::default() }
    }

    fn run(archive: &UpdateArchive, cfg: WatchConfig) -> WatchReport {
        run_pipeline(ArchiveSource::new(archive), (), WatchSink::new(cfg)).unwrap().sink.finish()
    }

    #[test]
    fn hijack_flagged_after_learning() {
        let mut a = UpdateArchive::new(0);
        let k = key_n("rrc00", 0);
        a.record(&k, announce(10, "100 200 900", &[]));
        a.record(&k, announce(W + 10, "100 200 900", &[])); // same origin: clean
        a.record(&k, announce(2 * W + 10, "100 200 999", &[])); // novel origin
        let report = run(&a, cfg());
        assert_eq!(report.alerts.len(), 1, "{:?}", report.alerts);
        let alert = &report.alerts[0];
        assert_eq!(
            alert.kind,
            AlertKind::PrefixHijack { origin: Asn(999), expected: vec![Asn(900)] }
        );
        assert_eq!(alert.time_us, 2 * W + 10);
        assert_eq!(alert.session.as_ref(), Some(&k));
    }

    #[test]
    fn hijack_alerts_once_then_folds_into_baseline() {
        let mut a = UpdateArchive::new(0);
        let k = key_n("rrc00", 0);
        a.record(&k, announce(10, "100 200 900", &[]));
        a.record(&k, announce(W + 10, "100 200 999", &[]));
        a.record(&k, announce(2 * W + 10, "100 200 999", &[])); // repeat: learned now
        let report = run(&a, cfg());
        assert_eq!(report.alerts.len(), 1);
    }

    #[test]
    fn route_leak_flagged_for_new_transit_with_learned_origin() {
        let mut a = UpdateArchive::new(0);
        let k = key_n("rrc00", 0);
        a.record(&k, announce(10, "100 200 900", &[]));
        a.record(&k, announce(W + 10, "100 777 900", &[])); // new transit, same origin
        let report = run(&a, cfg());
        assert_eq!(report.alerts.len(), 1, "{:?}", report.alerts);
        assert_eq!(report.alerts[0].kind, AlertKind::RouteLeak { via: Asn(777), origin: Asn(900) });
    }

    #[test]
    fn leak_is_per_vantage() {
        // rrc01 always saw 777 on path; rrc00 seeing it for the first
        // time is still a leak at rrc00's vantage.
        let mut a = UpdateArchive::new(0);
        a.record(&key_n("rrc01", 1), announce(10, "100 777 900", &[]));
        a.record(&key_n("rrc00", 0), announce(20, "100 200 900", &[]));
        a.record(&key_n("rrc01", 1), announce(W + 10, "100 777 900", &[]));
        a.record(&key_n("rrc00", 0), announce(W + 20, "100 777 900", &[]));
        let report = run(&a, cfg());
        let leaks: Vec<_> = report
            .alerts
            .iter()
            .filter(|a| matches!(a.kind, AlertKind::RouteLeak { .. }))
            .collect();
        assert_eq!(leaks.len(), 1, "{:?}", report.alerts);
        assert_eq!(leaks[0].session.as_ref().unwrap().collector, "rrc00");
    }

    #[test]
    fn announce_rate_shift_flagged() {
        let mut a = UpdateArchive::new(0);
        let k = key_n("rrc00", 0);
        for w in 0..2u64 {
            for i in 0..2u64 {
                a.record(&k, announce(w * W + i, "100 200 900", &[(3356, 1)]));
            }
        }
        for i in 0..40u64 {
            a.record(&k, announce(2 * W + i, "100 200 900", &[(3356, 1)]));
        }
        let c = WatchConfig { learn_windows: 2, ..cfg() };
        let report = run(&a, c);
        let shifts: Vec<_> = report
            .alerts
            .iter()
            .filter(|a| {
                matches!(a.kind, AlertKind::BaselineShift { metric: ShiftMetric::AnnounceRate, .. })
            })
            .collect();
        assert_eq!(shifts.len(), 1, "{:?}", report.alerts);
        assert_eq!(
            shifts[0].kind,
            AlertKind::BaselineShift {
                metric: ShiftMetric::AnnounceRate,
                community: Some(Community::from_parts(3356, 1)),
                observed: 40,
                baseline: 2,
            }
        );
        assert_eq!(shifts[0].time_us, 2 * W);
    }

    #[test]
    fn collector_outage_flagged_against_active_peers() {
        let mut a = UpdateArchive::new(0);
        for w in 0..6u64 {
            a.record(&key_n("rrc00", 0), announce(w * W, "100 200 900", &[]));
            if w < 3 {
                a.record(&key_n("rrc01", 1), announce(w * W + 1, "100 200 900", &[]));
            }
        }
        let report = run(&a, cfg());
        let outages: Vec<_> = report
            .alerts
            .iter()
            .filter(|a| matches!(a.kind, AlertKind::CollectorOutage { .. }))
            .collect();
        assert_eq!(outages.len(), 1, "{:?}", report.alerts);
        assert_eq!(
            outages[0].kind,
            AlertKind::CollectorOutage { collector: "rrc01".into(), silent_windows: 3 }
        );
        assert_eq!(outages[0].time_us, 3 * W);
        assert_eq!(outages[0].collector(), Some("rrc01"));
    }

    #[test]
    fn single_collector_never_outages() {
        let mut a = UpdateArchive::new(0);
        a.record(&key_n("rrc00", 0), announce(0, "100 200 900", &[]));
        a.record(&key_n("rrc00", 0), announce(9 * W, "100 200 900", &[]));
        let report = run(&a, cfg());
        assert!(report.alerts.is_empty(), "{:?}", report.alerts);
    }

    fn profile_day() -> (UpdateArchive, UpdateArchive) {
        let k = key_n("rrc00", 0);
        let mut train = UpdateArchive::new(0);
        for v in 0..6u16 {
            train.record(&k, announce(v as u64, "100 200 900", &[(200, 2500 + v)]));
        }
        let mut test = UpdateArchive::new(0);
        test.record(&k, announce(100, "100 200 900", &[(200, 7777)])); // novel value
        test.record(
            &k,
            announce(101, "100 200 900", &[(BLACKHOLE.asn_part(), BLACKHOLE.value_part())]),
        );
        (train, test)
    }

    #[test]
    fn whole_day_online_equals_batch_detect() {
        let (train, test) = profile_day();
        let mut profiler = CommunityProfiler::new();
        profiler.train(&train);
        let batch = profiler.detect(&test, &AnomalyConfig::default());
        let sink = WatchSink::new(WatchConfig::whole_day()).with_profile(Arc::new(profiler));
        let report = run_pipeline(ArchiveSource::new(&test), (), sink).unwrap().sink.finish();
        assert_eq!(report.alerts, batch);
        assert_eq!(report.alerts.len(), 2);
    }

    #[test]
    fn point_alerts_stream_via_poll() {
        let (train, test) = profile_day();
        let mut profiler = CommunityProfiler::new();
        profiler.train(&train);
        let mut sink = WatchSink::new(WatchConfig::whole_day()).with_profile(Arc::new(profiler));
        assert!(sink.poll_new().is_empty());
        for (key, rec) in test.sessions() {
            for u in &rec.updates {
                sink.on_update(key, u);
            }
        }
        assert_eq!(sink.poll_new().len(), 2);
        assert!(sink.poll_new().is_empty(), "cursor advanced");
        assert_eq!(sink.finish().alerts.len(), 2, "finish still reports everything");
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn untrained_profile_panics() {
        let _ =
            WatchSink::new(WatchConfig::default()).with_profile(Arc::new(CommunityProfiler::new()));
    }

    fn eventful_archive() -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        for n in 0..4u32 {
            let collector = if n % 2 == 0 { "rrc00" } else { "rrc01" };
            let k = key_n(collector, n);
            for w in 0..4u64 {
                a.record(&k, announce(w * W + n as u64, "100 200 900", &[(3356, w as u16)]));
            }
        }
        a.record(&key_n("rrc00", 0), announce(4 * W, "100 200 999", &[(3356, 9)]));
        a
    }

    #[test]
    fn alerts_are_shard_count_independent() {
        let a = eventful_archive();
        let serial = run(&a, cfg());
        assert!(!serial.alerts.is_empty());
        for shards in [2, 3, 5] {
            let sharded =
                run_sharded(ArchiveSource::new(&a), shards, || (), || WatchSink::new(cfg()))
                    .unwrap()
                    .sink
                    .finish();
            assert_eq!(sharded.alerts, serial.alerts, "{shards} shards diverged");
            assert_eq!(sharded.updates, serial.updates);
            assert_eq!(sharded.matrix.presence(), serial.matrix.presence());
        }
    }

    #[test]
    fn merge_is_collector_order_independent() {
        let a = eventful_archive();
        let per_collector = |name: &str| {
            let mut sink = WatchSink::new(cfg());
            for (key, rec) in a.sessions().filter(|(k, _)| k.collector == name) {
                for u in &rec.updates {
                    sink.on_update(key, u);
                }
            }
            sink
        };
        let mut fwd = per_collector("rrc00");
        fwd.merge(per_collector("rrc01"));
        let mut rev = per_collector("rrc01");
        rev.merge(per_collector("rrc00"));
        assert_eq!(fwd.finish().alerts, rev.finish().alerts);
    }

    #[test]
    fn matrix_deltas_accumulate_per_window() {
        let a = eventful_archive();
        let report = run(&a, cfg());
        assert_eq!(report.windows, 5);
        // Window 0's delta: community 3356:0 first seen at both vantages.
        let d0 = report.matrix.window_delta(0);
        assert!(d0.contains(&(Community::from_parts(3356, 0), "rrc00")));
        assert!(d0.contains(&(Community::from_parts(3356, 0), "rrc01")));
        assert_eq!(report.matrix.window_delta(4), vec![(Community::from_parts(3356, 9), "rrc00")]);
    }
}
