//! Dataset overview (Table 1) and type shares (Table 2).

use kcc_bgp_types::{AsPath, Asn, FastHashSet, MessageKind, Prefix, RouteUpdate};
use kcc_collector::{ArchiveSource, PeerMeta, SessionKey, UpdateArchive};

use crate::classify::{AnnouncementType, TypeCounts};
use crate::pipeline::{run_pipeline, AnalysisSink, Merge};
use crate::report::{fmt_count, render_table};

/// The Table 1 summary of one dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverviewStats {
    /// Distinct IPv4 prefixes.
    pub ipv4_prefixes: u64,
    /// Distinct IPv6 prefixes.
    pub ipv6_prefixes: u64,
    /// Distinct ASes seen anywhere in AS paths.
    pub ases: u64,
    /// BGP sessions.
    pub sessions: u64,
    /// Distinct peer ASes.
    pub peers: u64,
    /// Announcements.
    pub announcements: u64,
    /// Announcements carrying at least one community.
    pub with_communities: u64,
    /// Distinct 16-bit community high halves (the ASNs defining community
    /// semantics) — the paper's "uniq. 16 bits".
    pub uniq_16bit: u64,
    /// Distinct AS paths.
    pub uniq_as_paths: u64,
    /// Withdrawals.
    pub withdrawals: u64,
}

/// Accumulates the Table 1 overview incrementally. Distinct-count state
/// (prefixes, ASes, paths) grows with the *universe*, not with the day's
/// update volume — the inherent cost of "uniq." columns.
#[derive(Debug, Clone, Default)]
pub struct OverviewSink {
    v4: FastHashSet<Prefix>,
    v6: FastHashSet<Prefix>,
    ases: FastHashSet<u32>,
    comm_asns: FastHashSet<u16>,
    paths: FastHashSet<AsPath>,
    sessions: FastHashSet<SessionKey>,
    peers: FastHashSet<Asn>,
    announcements: u64,
    with_communities: u64,
    withdrawals: u64,
}

impl OverviewSink {
    /// The accumulated overview.
    pub fn finish(self) -> OverviewStats {
        OverviewStats {
            ipv4_prefixes: self.v4.len() as u64,
            ipv6_prefixes: self.v6.len() as u64,
            ases: self.ases.len() as u64,
            sessions: self.sessions.len() as u64,
            peers: self.peers.len() as u64,
            announcements: self.announcements,
            with_communities: self.with_communities,
            uniq_16bit: self.comm_asns.len() as u64,
            uniq_as_paths: self.paths.len() as u64,
            withdrawals: self.withdrawals,
        }
    }
}

impl AnalysisSink for OverviewSink {
    fn on_session(&mut self, meta: &PeerMeta) {
        self.sessions.insert(meta.key.clone());
        self.peers.insert(meta.key.peer_asn);
    }

    fn on_update(&mut self, _session: &SessionKey, u: &RouteUpdate) {
        match &u.kind {
            MessageKind::Announcement(attrs) => {
                self.announcements += 1;
                if u.prefix.is_ipv4() {
                    self.v4.insert(u.prefix);
                } else {
                    self.v6.insert(u.prefix);
                }
                // A path already in `paths` contributed all its ASNs
                // before — skip the per-hop loop and the clone on the
                // (dominant) repeat case.
                if !self.paths.contains(&attrs.as_path) {
                    for asn in attrs.as_path.asns() {
                        self.ases.insert(asn.value());
                    }
                    self.paths.insert(attrs.as_path.clone());
                }
                if !attrs.communities.is_empty() {
                    self.with_communities += 1;
                    for c in attrs.communities.iter_classic() {
                        self.comm_asns.insert(c.asn_part());
                    }
                }
            }
            MessageKind::Withdrawal => self.withdrawals += 1,
        }
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for OverviewSink {
    fn merge(&mut self, other: Self) {
        self.v4.extend(other.v4);
        self.v6.extend(other.v6);
        self.ases.extend(other.ases);
        self.comm_asns.extend(other.comm_asns);
        self.paths.extend(other.paths);
        self.sessions.extend(other.sessions);
        self.peers.extend(other.peers);
        self.announcements += other.announcements;
        self.with_communities += other.with_communities;
        self.withdrawals += other.withdrawals;
    }
}

/// Computes the Table 1 overview for an archive — the batch wrapper over
/// the streaming [`OverviewSink`].
pub fn overview(archive: &UpdateArchive) -> OverviewStats {
    run_pipeline(ArchiveSource::new(archive), (), OverviewSink::default())
        .expect("archive sources cannot fail")
        .sink
        .finish()
}

impl OverviewStats {
    /// Renders in the paper's Table 1 two-column layout.
    pub fn render(&self, title: &str) -> String {
        let rows = vec![
            vec![
                "IPv4 prefixes".into(),
                fmt_count(self.ipv4_prefixes),
                "Announcements".into(),
                fmt_count(self.announcements),
            ],
            vec![
                "IPv6 prefixes".into(),
                fmt_count(self.ipv6_prefixes),
                "w/ communities".into(),
                fmt_count(self.with_communities),
            ],
            vec![
                "ASes".into(),
                fmt_count(self.ases),
                "uniq. 16 bits".into(),
                fmt_count(self.uniq_16bit),
            ],
            vec![
                "Sessions".into(),
                fmt_count(self.sessions),
                "uniq. AS paths".into(),
                fmt_count(self.uniq_as_paths),
            ],
            vec![
                "Peers".into(),
                fmt_count(self.peers),
                "Withdrawals".into(),
                fmt_count(self.withdrawals),
            ],
        ];
        format!("{title}\n{}", render_table(&["", "", "", ""], &rows))
    }
}

/// Table 2: per-type shares for one or two datasets.
#[derive(Debug, Clone)]
pub struct TypeShares {
    /// Column label → counts.
    pub columns: Vec<(String, TypeCounts)>,
}

impl TypeShares {
    /// Builds from labeled counters.
    pub fn new(columns: Vec<(String, TypeCounts)>) -> Self {
        TypeShares { columns }
    }

    /// Renders in the paper's Table 2 layout (one row per type, one
    /// percentage column per dataset).
    pub fn render(&self) -> String {
        let mut headers: Vec<&str> = vec!["type", "observed changes"];
        let labels: Vec<&str> = self.columns.iter().map(|(l, _)| l.as_str()).collect();
        headers.extend(labels);
        let describe = |t: AnnouncementType| match t {
            AnnouncementType::Pc => "path + community",
            AnnouncementType::Pn => "path only",
            AnnouncementType::Nc => "community only",
            AnnouncementType::Nn => "no change",
            AnnouncementType::Xc => "path prepending + comm.",
            AnnouncementType::Xn => "path prepending only",
        };
        let rows: Vec<Vec<String>> = AnnouncementType::ALL
            .iter()
            .map(|&t| {
                let mut row = vec![t.label().to_string(), describe(t).to_string()];
                for (_, counts) in &self.columns {
                    row.push(format!("{:.1}%", counts.share(t)));
                }
                row
            })
            .collect();
        render_table(&headers, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, Community, CommunitySet, PathAttributes, RouteUpdate};
    use kcc_collector::SessionKey;

    fn archive() -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        let k1 = SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap());
        let k2 = SessionKey::new("rrc00", Asn(20_811), "10.0.0.2".parse().unwrap());
        let mut attrs =
            PathAttributes { as_path: "20205 3356 12654".parse().unwrap(), ..Default::default() };
        a.record(&k1, RouteUpdate::announce(1, "84.205.64.0/24".parse().unwrap(), attrs.clone()));
        attrs.communities = CommunitySet::from_classic([Community::from_parts(3356, 2501)]);
        a.record(
            &k1,
            RouteUpdate::announce(2, "2001:7fb:fe00::/48".parse().unwrap(), attrs.clone()),
        );
        let attrs2 = PathAttributes {
            as_path: "20811 3356 12654".parse().unwrap(),
            communities: CommunitySet::from_classic([
                Community::from_parts(3356, 2502),
                Community::from_parts(20_811, 100),
            ]),
            ..Default::default()
        };
        a.record(&k2, RouteUpdate::announce(3, "84.205.64.0/24".parse().unwrap(), attrs2));
        a.record(&k2, RouteUpdate::withdraw(4, "84.205.64.0/24".parse().unwrap()));
        a
    }

    #[test]
    fn overview_counts() {
        let s = overview(&archive());
        assert_eq!(s.ipv4_prefixes, 1);
        assert_eq!(s.ipv6_prefixes, 1);
        assert_eq!(s.ases, 4); // 20205, 20811, 3356, 12654
        assert_eq!(s.sessions, 2);
        assert_eq!(s.peers, 2);
        assert_eq!(s.announcements, 3);
        assert_eq!(s.with_communities, 2);
        assert_eq!(s.uniq_16bit, 2); // 3356 and 20811
        assert_eq!(s.uniq_as_paths, 2);
        assert_eq!(s.withdrawals, 1);
    }

    #[test]
    fn overview_render_contains_rows() {
        let text = overview(&archive()).render("Overview d_test");
        assert!(text.contains("IPv4 prefixes"));
        assert!(text.contains("Withdrawals"));
        assert!(text.contains("uniq. 16 bits"));
    }

    #[test]
    fn shares_render_matches_layout() {
        let mut counts = TypeCounts::default();
        for _ in 0..337 {
            counts.add(AnnouncementType::Pc);
        }
        for _ in 0..151 {
            counts.add(AnnouncementType::Pn);
        }
        for _ in 0..245 {
            counts.add(AnnouncementType::Nc);
        }
        for _ in 0..257 {
            counts.add(AnnouncementType::Nn);
        }
        for _ in 0..3 {
            counts.add(AnnouncementType::Xc);
        }
        for _ in 0..7 {
            counts.add(AnnouncementType::Xn);
        }
        let t = TypeShares::new(vec![("d_mar20".into(), counts)]);
        let text = t.render();
        assert!(text.contains("33.7%"));
        assert!(text.contains("24.5%"));
        assert!(text.contains("no change"));
        assert!(text.contains("community only"));
    }
}
