//! The data cleaning pipeline (paper §4).
//!
//! "Prior to analyzing our update message data, we first perform basic
//! filtering, cleaning, and normalization":
//!
//! 1. remove messages containing an ASN or prefix unallocated at message
//!    time,
//! 2. prepend the route server's ASN to paths from IXP route-server peers
//!    that do not insert their own ASN,
//! 3. disambiguate same-second timestamps at second-granularity
//!    collectors (order-preserving 0.01 ms spacing).

use kcc_bgp_types::{FastHashMap, MessageKind, RouteUpdate};
use kcc_collector::timestamps::disambiguated;
use kcc_collector::{PeerMeta, SessionKey, UpdateArchive};

use crate::pipeline::{Merge, Stage};
use crate::registry::AllocationRegistry;

/// Which cleaning stages to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleaningConfig {
    /// Drop messages with unallocated ASNs/prefixes.
    pub filter_unallocated: bool,
    /// Insert route-server ASNs into AS paths.
    pub insert_route_server_asn: bool,
    /// Normalize second-granularity timestamps.
    pub normalize_timestamps: bool,
}

impl Default for CleaningConfig {
    /// All stages on — the paper's configuration.
    fn default() -> Self {
        CleaningConfig {
            filter_unallocated: true,
            insert_route_server_asn: true,
            normalize_timestamps: true,
        }
    }
}

/// What the cleaning pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleaningReport {
    /// Messages dropped for an unallocated ASN in the path.
    pub removed_unallocated_asn: u64,
    /// Messages dropped for an unallocated prefix.
    pub removed_unallocated_prefix: u64,
    /// Announcements that received a route-server ASN prepend.
    pub route_server_insertions: u64,
    /// Sessions whose timestamps were normalized.
    pub sessions_normalized: u64,
    /// Messages surviving the pass.
    pub kept: u64,
}

fn update_is_allocated(
    u: &RouteUpdate,
    registry: &AllocationRegistry,
    report: &mut CleaningReport,
) -> bool {
    if !registry.prefix_allocated(&u.prefix, u.time_us) {
        report.removed_unallocated_prefix += 1;
        return false;
    }
    if let MessageKind::Announcement(attrs) = &u.kind {
        for asn in attrs.as_path.asns() {
            if !registry.asn_allocated(asn, u.time_us) {
                report.removed_unallocated_asn += 1;
                return false;
            }
        }
    }
    true
}

impl Merge for CleaningReport {
    fn merge(&mut self, other: Self) {
        self.removed_unallocated_asn += other.removed_unallocated_asn;
        self.removed_unallocated_prefix += other.removed_unallocated_prefix;
        self.route_server_insertions += other.route_server_insertions;
        self.sessions_normalized += other.sessions_normalized;
        self.kept += other.kept;
    }
}

/// The §4 cleaning pipeline as an incremental [`Stage`]: unallocated
/// ASN/prefix filtering, route-server ASN insertion, and streaming
/// timestamp disambiguation. Per-session state is one `u64` (the last
/// emitted time of second-granularity sessions) — nothing scales with
/// the day's length.
#[derive(Debug)]
pub struct CleaningStage<'a> {
    registry: &'a AllocationRegistry,
    config: CleaningConfig,
    report: CleaningReport,
    /// Last emitted time per second-granularity session; `None` until
    /// its first update.
    last_emitted: FastHashMap<SessionKey, Option<u64>>,
}

impl<'a> CleaningStage<'a> {
    /// A stage applying `config` against `registry`.
    pub fn new(registry: &'a AllocationRegistry, config: CleaningConfig) -> Self {
        CleaningStage {
            registry,
            config,
            report: CleaningReport::default(),
            last_emitted: FastHashMap::default(),
        }
    }

    /// What the stage has done so far.
    pub fn report(&self) -> CleaningReport {
        self.report
    }
}

impl Stage for CleaningStage<'_> {
    fn on_session(&mut self, meta: &PeerMeta) {
        if self.config.normalize_timestamps
            && meta.second_granularity
            && !self.last_emitted.contains_key(&meta.key)
        {
            self.last_emitted.insert(meta.key.clone(), None);
            self.report.sessions_normalized += 1;
        }
    }

    fn process(&mut self, meta: &PeerMeta, mut update: RouteUpdate) -> Option<RouteUpdate> {
        if self.config.filter_unallocated
            && !update_is_allocated(&update, self.registry, &mut self.report)
        {
            return None;
        }
        if self.config.insert_route_server_asn && meta.route_server {
            if let MessageKind::Announcement(attrs) = &mut update.kind {
                if attrs.as_path.first() != Some(meta.key.peer_asn) {
                    // Copy-on-write: only the corrected update's attrs
                    // fork; siblings sharing the packet's Arc are intact.
                    let attrs = std::sync::Arc::make_mut(attrs);
                    attrs.as_path = attrs.as_path.prepend(meta.key.peer_asn, 1);
                    self.report.route_server_insertions += 1;
                }
            }
        }
        if self.config.normalize_timestamps && meta.second_granularity {
            if let Some(slot) = self.last_emitted.get_mut(&meta.key) {
                update.time_us = disambiguated(*slot, update.time_us);
                *slot = Some(update.time_us);
            }
        }
        self.report.kept += 1;
        Some(update)
    }
}

impl Merge for CleaningStage<'_> {
    fn merge(&mut self, other: Self) {
        self.report.merge(other.report);
        // Sessions are disjoint across shards.
        self.last_emitted.extend(other.last_emitted);
    }
}

/// Runs the cleaning pipeline in place and reports what changed — the
/// batch wrapper over [`CleaningStage`], applied session by session.
pub fn clean_archive(
    archive: &mut UpdateArchive,
    registry: &AllocationRegistry,
    config: &CleaningConfig,
) -> CleaningReport {
    let mut stage = CleaningStage::new(registry, *config);
    for (_, rec) in archive.sessions_mut() {
        let meta = rec.meta.clone();
        stage.on_session(&meta);
        let updates = std::mem::take(&mut rec.updates);
        rec.updates = updates.into_iter().filter_map(|u| stage.process(&meta, u)).collect();
    }
    stage.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, PathAttributes, Prefix};
    use kcc_collector::{PeerMeta, SessionKey};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(t: u64, prefix: &str, path: &str) -> RouteUpdate {
        RouteUpdate::announce(
            t,
            p(prefix),
            PathAttributes { as_path: path.parse().unwrap(), ..Default::default() },
        )
    }

    fn registry() -> AllocationRegistry {
        let mut r = AllocationRegistry::new();
        for asn in [20_205u32, 3356, 174, 12_654] {
            r.register_asn(Asn(asn), 0);
        }
        r.register_asn(Asn(5_000), 2_000_000); // allocated at t=2s
        r.register_block(p("84.205.0.0/16"), 0);
        r
    }

    fn key() -> SessionKey {
        SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap())
    }

    #[test]
    fn unallocated_asn_dropped() {
        let mut a = UpdateArchive::new(0);
        a.record(&key(), announce(1, "84.205.64.0/24", "20205 3356 12654"));
        a.record(&key(), announce(2, "84.205.64.0/24", "20205 9999 12654")); // 9999 bogon
        let report = clean_archive(&mut a, &registry(), &CleaningConfig::default());
        assert_eq!(report.removed_unallocated_asn, 1);
        assert_eq!(report.kept, 1);
        assert_eq!(a.update_count(), 1);
    }

    #[test]
    fn unallocated_prefix_dropped() {
        let mut a = UpdateArchive::new(0);
        a.record(&key(), announce(1, "84.205.64.0/24", "20205 12654"));
        a.record(&key(), announce(2, "203.0.113.0/24", "20205 12654")); // outside blocks
        let report = clean_archive(&mut a, &registry(), &CleaningConfig::default());
        assert_eq!(report.removed_unallocated_prefix, 1);
        assert_eq!(a.update_count(), 1);
    }

    #[test]
    fn allocation_is_time_dependent() {
        // AS5000 allocated at t=2s: a message at t=1s is bogon, at t=3s fine.
        let mut a = UpdateArchive::new(0);
        a.record(&key(), announce(1_000_000, "84.205.64.0/24", "20205 5000 12654"));
        a.record(&key(), announce(3_000_000, "84.205.64.0/24", "20205 5000 12654"));
        let report = clean_archive(&mut a, &registry(), &CleaningConfig::default());
        assert_eq!(report.removed_unallocated_asn, 1);
        assert_eq!(a.update_count(), 1);
        assert_eq!(a.all_updates()[0].1.time_us, 3_000_000);
    }

    #[test]
    fn withdrawals_keep_only_prefix_check() {
        let mut a = UpdateArchive::new(0);
        a.record(&key(), RouteUpdate::withdraw(1, p("84.205.64.0/24")));
        a.record(&key(), RouteUpdate::withdraw(2, p("203.0.113.0/24")));
        let report = clean_archive(&mut a, &registry(), &CleaningConfig::default());
        assert_eq!(report.removed_unallocated_prefix, 1);
        assert_eq!(a.update_count(), 1);
    }

    #[test]
    fn route_server_asn_inserted() {
        let mut a = UpdateArchive::new(0);
        let k = key();
        a.add_session(PeerMeta { key: k.clone(), route_server: true, second_granularity: false });
        // Path does NOT start with the peer AS (route server behavior).
        a.record(&k, announce(1, "84.205.64.0/24", "3356 12654"));
        // Path already starts with it: untouched.
        a.record(&k, announce(2, "84.205.64.0/24", "20205 3356 12654"));
        let report = clean_archive(&mut a, &registry(), &CleaningConfig::default());
        assert_eq!(report.route_server_insertions, 1);
        let updates = &a.session(&k).unwrap().updates;
        assert_eq!(updates[0].attributes().unwrap().as_path.to_string(), "20205 3356 12654");
        assert_eq!(updates[1].attributes().unwrap().as_path.to_string(), "20205 3356 12654");
    }

    #[test]
    fn second_granularity_sessions_normalized() {
        let mut a = UpdateArchive::new(0);
        let k = key();
        a.add_session(PeerMeta { key: k.clone(), route_server: false, second_granularity: true });
        a.record(&k, announce(5_000_000, "84.205.64.0/24", "20205 12654"));
        a.record(&k, announce(5_000_000, "84.205.64.0/24", "20205 12654"));
        let report = clean_archive(&mut a, &registry(), &CleaningConfig::default());
        assert_eq!(report.sessions_normalized, 1);
        let updates = &a.session(&k).unwrap().updates;
        assert_eq!(updates[1].time_us, 5_000_010);
    }

    /// Regression: the streaming stage used to push a ≥100,000-update
    /// same-second run past the next distinct second (run × 10 µs > 1 s),
    /// reordering updates relative to the following second. The clamp in
    /// `disambiguated` caps the spread inside the run's own second.
    #[test]
    fn streaming_normalization_never_crosses_next_second() {
        let mut a = UpdateArchive::new(0);
        let k = key();
        a.add_session(PeerMeta { key: k.clone(), route_server: false, second_granularity: true });
        let run_len = 100_050usize;
        for _ in 0..run_len {
            a.record(&k, RouteUpdate::withdraw(5_000_000, p("84.205.64.0/24")));
        }
        a.record(&k, RouteUpdate::withdraw(6_000_000, p("84.205.64.0/24")));
        clean_archive(&mut a, &registry(), &CleaningConfig::default());
        let updates = &a.session(&k).unwrap().updates;
        for w in updates.windows(2) {
            assert!(w[0].time_us <= w[1].time_us, "output must stay monotonic");
        }
        assert!(
            updates[run_len - 1].time_us < 6_000_000,
            "same-second run crossed into the next second: {}",
            updates[run_len - 1].time_us
        );
        assert_eq!(updates[run_len].time_us, 6_000_000);
    }

    #[test]
    fn stages_can_be_disabled() {
        let mut a = UpdateArchive::new(0);
        a.record(&key(), announce(1, "203.0.113.0/24", "9999 12654"));
        let cfg = CleaningConfig {
            filter_unallocated: false,
            insert_route_server_asn: false,
            normalize_timestamps: false,
        };
        let report = clean_archive(&mut a, &registry(), &cfg);
        assert_eq!(report.kept, 1);
        assert_eq!(a.update_count(), 1);
    }
}
