//! The one-pass streaming analysis pipeline.
//!
//! The paper's measurement covers ~126 collector-days and >3.8 billion
//! updates — a scale at which "load the day, then run each analysis over
//! it" cannot work. This module turns the analysis surface inside out:
//!
//! * an [`UpdateSource`] (materialized archive, MRT bytes, simulator
//!   capture, trace generator) is pulled **once**,
//! * a chain of [`Stage`]s applies the §4 cleaning transforms
//!   incrementally ([`crate::clean::CleaningStage`]),
//! * a [`Pipeline`] keeps exactly one [`PathAttributes`] per active
//!   `(session, prefix)` stream — the §5 classifier state, constant per
//!   stream — and fans every surviving update plus its
//!   [`ClassifiedEvent`] out to all registered [`AnalysisSink`]s.
//!
//! Every analysis in this crate (overview, phase counts, exploration,
//! revealed information, per-session distributions, timelines, anomaly
//! detection, tomography, interconnections, longitudinal day points)
//! implements [`AnalysisSink`], so one pass drives them all; the
//! pre-existing batch functions survive as thin wrappers over this path.
//!
//! Because `(session, prefix)` streams are independent, [`run_sharded`]
//! hash-partitions sessions across `std::thread::scope` workers (the
//! pattern proven by the sweep runner) and merges the per-shard sinks on
//! finish — results are identical for any shard count.
//!
//! [`PathAttributes`]: kcc_bgp_types::PathAttributes

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use kcc_obs::{HistogramSnapshot, Registry};

use kcc_bgp_types::{FastHashMap, RouteUpdate};
use kcc_collector::{
    Corpus, PeerMeta, SessionKey, ShutdownFlag, SourceError, SourceItem, UpdateSource,
};

use crate::stream::{ClassifiedArchive, ClassifiedEvent, StreamClassifier};

/// An incremental per-update transform (the §4 cleaning steps). Stages
/// see each session's updates in arrival order and may drop or rewrite
/// them; per-session state is the only state a stage should keep.
pub trait Stage {
    /// A session became known (always before its first update).
    fn on_session(&mut self, _meta: &PeerMeta) {}

    /// Transforms one update; `None` drops it.
    fn process(&mut self, meta: &PeerMeta, update: RouteUpdate) -> Option<RouteUpdate>;
}

/// The identity stage.
impl Stage for () {
    fn process(&mut self, _meta: &PeerMeta, update: RouteUpdate) -> Option<RouteUpdate> {
        Some(update)
    }
}

impl<A: Stage, B: Stage> Stage for (A, B) {
    fn on_session(&mut self, meta: &PeerMeta) {
        self.0.on_session(meta);
        self.1.on_session(meta);
    }

    fn process(&mut self, meta: &PeerMeta, update: RouteUpdate) -> Option<RouteUpdate> {
        self.1.process(meta, self.0.process(meta, update)?)
    }
}

impl<A: Stage, B: Stage, C: Stage> Stage for (A, B, C) {
    fn on_session(&mut self, meta: &PeerMeta) {
        self.0.on_session(meta);
        self.1.on_session(meta);
        self.2.on_session(meta);
    }

    fn process(&mut self, meta: &PeerMeta, update: RouteUpdate) -> Option<RouteUpdate> {
        self.2.process(meta, self.1.process(meta, self.0.process(meta, update)?)?)
    }
}

/// An incremental analysis consumer. Implementations accumulate whatever
/// aggregate their analysis needs; the pipeline feeds them raw updates
/// (post-cleaning) and classified events in one pass.
pub trait AnalysisSink {
    /// A session became known (always before its first update).
    fn on_session(&mut self, _meta: &PeerMeta) {}

    /// One update survived the stage chain.
    fn on_update(&mut self, _session: &SessionKey, _update: &RouteUpdate) {}

    /// The update's §5 classification against its stream predecessor.
    fn on_event(&mut self, _session: &SessionKey, _event: &ClassifiedEvent) {}

    /// Whether this sink consumes [`AnalysisSink::on_event`]. Sinks that
    /// only need raw updates return `false`, letting the pipeline skip
    /// the classifier (and its per-stream state) entirely.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Combine two partial results of the same shape — what [`run_sharded`]
/// does to per-shard stages and sinks on finish. Merging must be
/// insensitive to how sessions were partitioned: counts add, sets union,
/// per-session maps (disjoint across shards) extend.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

impl Merge for () {
    fn merge(&mut self, _other: ()) {}
}

impl Merge for crate::classify::TypeCounts {
    fn merge(&mut self, other: Self) {
        crate::classify::TypeCounts::merge(self, &other);
    }
}

macro_rules! impl_sink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: AnalysisSink),+> AnalysisSink for ($($name,)+) {
            fn on_session(&mut self, meta: &PeerMeta) {
                $(self.$idx.on_session(meta);)+
            }
            fn on_update(&mut self, session: &SessionKey, update: &RouteUpdate) {
                $(self.$idx.on_update(session, update);)+
            }
            fn on_event(&mut self, session: &SessionKey, event: &ClassifiedEvent) {
                $(self.$idx.on_event(session, event);)+
            }
            fn wants_events(&self) -> bool {
                $(self.$idx.wants_events())||+
            }
        }
        impl<$($name: Merge),+> Merge for ($($name,)+) {
            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }
        }
    };
}

impl_sink_tuple!(A: 0, B: 1);
impl_sink_tuple!(A: 0, B: 1, C: 2);
impl_sink_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_sink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_sink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// What one pipeline run processed and how much state it held.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Sessions seen.
    pub sessions: u64,
    /// Updates pulled from the source.
    pub updates: u64,
    /// Updates surviving the stage chain.
    pub kept: u64,
    /// Distinct `(session, prefix)` streams with classifier state.
    pub streams: u64,
    /// Estimated bytes of resident classifier state (one set of path
    /// attributes per stream) at finish.
    pub state_bytes: u64,
    /// Peak of `state_bytes` over the run — the "constant memory per
    /// stream" number the streaming redesign exists for. Across shards
    /// this sums the per-shard peaks (they are resident concurrently).
    pub peak_state_bytes: u64,
}

impl Merge for PipelineStats {
    fn merge(&mut self, other: Self) {
        self.sessions += other.sessions;
        self.updates += other.updates;
        self.kept += other.kept;
        self.streams += other.streams;
        self.state_bytes += other.state_bytes;
        self.peak_state_bytes += other.peak_state_bytes;
    }
}

/// Sampled wall-time profile of a pipeline run, split by phase of the
/// per-update path (stage chain → sink update → classify → sink event)
/// plus one `finish` observation per pipeline instance.
///
/// Kept separate from [`PipelineStats`] on purpose: stats are exact,
/// `Copy`, and deterministic (tests compare them with `assert_eq!`);
/// timing is sampled and machine-dependent. The sampling knob
/// ([`PipelineBuilder::profile`]) bounds the overhead — only every N-th
/// update pays for `Instant::now` calls, everything else pays one
/// decrement-and-branch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineProfile {
    /// Updates that were fully timed (1-in-N of all updates).
    pub sampled: u64,
    /// Stage-chain (`Stage::process`) wall time, nanoseconds.
    pub stage_nanos: HistogramSnapshot,
    /// Classifier (`StreamClassifier::classify`) wall time, nanoseconds.
    pub classify_nanos: HistogramSnapshot,
    /// Sink `on_update` wall time, nanoseconds.
    pub sink_update_nanos: HistogramSnapshot,
    /// Sink `on_event` wall time, nanoseconds.
    pub sink_event_nanos: HistogramSnapshot,
    /// Per-sink-instance finish/teardown wall time, nanoseconds (one
    /// observation per pipeline — per shard, per collector).
    pub finish_nanos: HistogramSnapshot,
}

impl PipelineProfile {
    /// Registers this profile's histograms (labeled `phase="stage"`,
    /// `"classify"`, `"sink_update"`, `"sink_event"`, `"finish"`) and
    /// the sample counter in `registry`, folding the recorded values in.
    /// Extra labels (e.g. `collector="rrc00"`) apply to every series.
    pub fn export(&self, registry: &Registry, labels: &[(&str, &str)]) {
        let phases = [
            ("stage", &self.stage_nanos),
            ("classify", &self.classify_nanos),
            ("sink_update", &self.sink_update_nanos),
            ("sink_event", &self.sink_event_nanos),
            ("finish", &self.finish_nanos),
        ];
        for (phase, hist) in phases {
            let mut all = labels.to_vec();
            all.push(("phase", phase));
            registry.histogram_with("kcc_pipeline_phase_nanos", &all).record(hist);
        }
        registry.counter_with("kcc_pipeline_profile_samples_total", labels).add(self.sampled);
    }
}

impl Merge for PipelineProfile {
    fn merge(&mut self, other: Self) {
        self.sampled += other.sampled;
        self.stage_nanos.merge(&other.stage_nanos);
        self.classify_nanos.merge(&other.classify_nanos);
        self.sink_update_nanos.merge(&other.sink_update_nanos);
        self.sink_event_nanos.merge(&other.sink_event_nanos);
        self.finish_nanos.merge(&other.finish_nanos);
    }
}

/// Live profiling state: the sampling countdown plus the accumulating
/// profile.
#[derive(Debug)]
struct ProfileState {
    every: u64,
    countdown: u64,
    profile: PipelineProfile,
}

impl ProfileState {
    fn new(every: u64) -> Self {
        let every = every.max(1);
        ProfileState { every, countdown: every, profile: PipelineProfile::default() }
    }

    /// Whether this update is sampled (true once every `every` calls).
    #[inline]
    fn tick(&mut self) -> bool {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.every;
            self.profile.sampled += 1;
            true
        } else {
            false
        }
    }
}

/// Everything a pipeline run returns: the (possibly merged) stage chain
/// and sink, plus run statistics.
#[derive(Debug)]
pub struct PipelineOutput<St, S> {
    /// The stage chain with its accumulated state (e.g. the cleaning
    /// report).
    pub stages: St,
    /// The sink(s) with their accumulated analysis results.
    pub sink: S,
    /// Run statistics.
    pub stats: PipelineStats,
    /// Sampled per-phase timing, when profiling was enabled
    /// ([`PipelineBuilder::profile`]); merged across shards/collectors.
    pub profile: Option<PipelineProfile>,
}

/// The single-pass driver: source → stages → classifier → sinks.
#[derive(Debug)]
pub struct Pipeline<St, S> {
    stages: St,
    sink: S,
    classify: bool,
    // Classifiers live in a flat Vec; the String-keyed map is consulted
    // only when the session changes. Sources deliver long same-session
    // runs (MRT records explode to many updates on one session), so the
    // `Arc::ptr_eq` cache below turns the per-update session lookup into
    // a pointer compare.
    classifier_ids: FastHashMap<SessionKey, usize>,
    classifiers: Vec<StreamClassifier>,
    current: Option<(std::sync::Arc<PeerMeta>, usize)>,
    stats: PipelineStats,
    profile: Option<ProfileState>,
}

impl<St: Stage, S: AnalysisSink> Pipeline<St, S> {
    /// A pipeline over the given stage chain and sink (tuples of sinks
    /// fan out).
    pub fn new(stages: St, sink: S) -> Self {
        let classify = sink.wants_events();
        Pipeline {
            stages,
            sink,
            classify,
            classifier_ids: FastHashMap::default(),
            classifiers: Vec::new(),
            current: None,
            stats: PipelineStats::default(),
            profile: None,
        }
    }

    /// Enables sampled per-phase timing: every `every`-th update has
    /// each phase of its trip wall-clocked into
    /// [`PipelineOutput::profile`] (`every` is clamped to ≥ 1).
    pub fn enable_profiling(&mut self, every: u64) {
        self.profile = Some(ProfileState::new(every));
    }

    /// Feeds one source item through stages, classifier and sinks.
    pub fn feed(&mut self, item: SourceItem) {
        match item {
            SourceItem::Session(meta) => {
                self.register(&meta);
            }
            SourceItem::Update(meta, update) => {
                let slot = self.register(&meta);
                self.stats.updates += 1;
                // One decrement-and-branch per update when profiling is
                // on. The sampled (1-in-N) trip is monomorphized
                // separately so the common path carries no timing code
                // at all — the measured streaming overhead of enabled
                // profiling stays within the CI-gated budget.
                let sampled = match &mut self.profile {
                    None => false,
                    Some(p) => p.tick(),
                };
                if sampled {
                    self.feed_update::<true>(&meta, update, slot);
                } else {
                    self.feed_update::<false>(&meta, update, slot);
                }
            }
        }
    }

    /// One update's trip through stages, classifier and sinks. With
    /// `PROFILED` each phase is wall-clocked into the profile; the
    /// `false` instantiation compiles the timing away.
    fn feed_update<const PROFILED: bool>(
        &mut self,
        meta: &std::sync::Arc<PeerMeta>,
        update: RouteUpdate,
        slot: usize,
    ) {
        let timer = PROFILED.then(Instant::now);
        let processed = self.stages.process(meta, update);
        if PROFILED {
            if let (Some(t), Some(p)) = (timer, &mut self.profile) {
                p.profile.stage_nanos.observe(t.elapsed().as_nanos() as u64);
            }
        }
        let Some(update) = processed else {
            return;
        };
        self.stats.kept += 1;
        let timer = PROFILED.then(Instant::now);
        self.sink.on_update(&meta.key, &update);
        if PROFILED {
            if let (Some(t), Some(p)) = (timer, &mut self.profile) {
                p.profile.sink_update_nanos.observe(t.elapsed().as_nanos() as u64);
            }
        }
        if self.classify {
            let classifier = &mut self.classifiers[slot];
            let streams_before = classifier.stream_count() as u64;
            let bytes_before = classifier.state_bytes() as u64;
            let timer = PROFILED.then(Instant::now);
            let event = classifier.classify(&update);
            if PROFILED {
                if let (Some(t), Some(p)) = (timer, &mut self.profile) {
                    p.profile.classify_nanos.observe(t.elapsed().as_nanos() as u64);
                }
            }
            self.stats.streams += classifier.stream_count() as u64 - streams_before;
            self.stats.state_bytes =
                self.stats.state_bytes + classifier.state_bytes() as u64 - bytes_before;
            self.stats.peak_state_bytes = self.stats.peak_state_bytes.max(self.stats.state_bytes);
            let timer = PROFILED.then(Instant::now);
            self.sink.on_event(&meta.key, &event);
            if PROFILED {
                if let (Some(t), Some(p)) = (timer, &mut self.profile) {
                    p.profile.sink_event_nanos.observe(t.elapsed().as_nanos() as u64);
                }
            }
        }
    }

    fn register(&mut self, meta: &std::sync::Arc<PeerMeta>) -> usize {
        // Fast path: same `PeerMeta` handle as the previous item — no
        // hashing at all.
        if let Some((cached, slot)) = &self.current {
            if std::sync::Arc::ptr_eq(cached, meta) {
                return *slot;
            }
        }
        // Sessions double as the seen-set even when the sink skips
        // classification — an empty classifier costs nothing.
        let slot = match self.classifier_ids.get(&meta.key) {
            Some(&slot) => slot,
            None => {
                let slot = self.classifiers.len();
                self.classifiers.push(StreamClassifier::new());
                self.classifier_ids.insert(meta.key.clone(), slot);
                self.stats.sessions += 1;
                self.stages.on_session(meta);
                self.sink.on_session(meta);
                slot
            }
        };
        self.current = Some((std::sync::Arc::clone(meta), slot));
        slot
    }

    /// Pulls a source dry through this pipeline.
    pub fn run<Src: UpdateSource>(&mut self, mut source: Src) -> Result<(), SourceError> {
        while let Some(item) = source.next_item()? {
            self.feed(item);
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// The sink mid-run — lets a driver inspect or drain incremental
    /// results (e.g. stream alerts as they fire) without finishing.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Dismantles the pipeline into its results. With profiling on, the
    /// classifier-state teardown is timed as this instance's `finish`
    /// observation (one per sink instance — per shard, per collector).
    pub fn finish(self) -> PipelineOutput<St, S> {
        let Pipeline { stages, sink, classifier_ids, classifiers, stats, profile, .. } = self;
        let profile = profile.map(|mut state| {
            let start = Instant::now();
            drop(classifiers);
            drop(classifier_ids);
            state.profile.finish_nanos.observe(start.elapsed().as_nanos() as u64);
            state.profile
        });
        PipelineOutput { stages, sink, stats, profile }
    }
}

/// The placeholder sink of a [`PipelineBuilder`] before
/// [`sink`](PipelineBuilder::sink) is called. Deliberately **not** an
/// [`AnalysisSink`]: a builder without a sink does not type-check at
/// `.run()`, so forgetting the sink is a compile error rather than a
/// silent no-op run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoSink;

/// The fluent entry point to every pipeline shape — one builder replaces
/// the four historically separate functions:
///
/// | call chain | replaces |
/// |---|---|
/// | `.stages(st).sink(s).run()` | `run_pipeline` |
/// | `.stages(st).sink(s).shutdown(&stop).run()` | `run_live` |
/// | `.stages(st).sink(s).shards(n).run()` | `run_sharded` |
/// | `PipelineBuilder::collectors(corpus)…` | `run_corpus` |
///
/// ```
/// # use kcc_core::pipeline::PipelineBuilder;
/// # use kcc_core::stream::CountsSink;
/// # use kcc_collector::{ArchiveSource, UpdateArchive};
/// # let archive = UpdateArchive::new(0);
/// let out = PipelineBuilder::new(ArchiveSource::new(&archive))
///     .sink(CountsSink::default())
///     .run()
///     .unwrap();
/// # let _ = out.sink.finish();
/// ```
#[derive(Debug)]
pub struct PipelineBuilder<Src, St = (), S = NoSink> {
    source: Src,
    stages: St,
    sink: S,
    stop: Option<ShutdownFlag>,
    profile_every: Option<u64>,
}

impl<Src> PipelineBuilder<Src> {
    /// A builder over one source, with the identity stage chain and no
    /// sink yet.
    pub fn new(source: Src) -> Self {
        PipelineBuilder { source, stages: (), sink: NoSink, stop: None, profile_every: None }
    }
}

impl<Src, St, S> PipelineBuilder<Src, St, S> {
    /// Sets the stage chain (tuples chain in order).
    pub fn stages<St2>(self, stages: St2) -> PipelineBuilder<Src, St2, S> {
        PipelineBuilder {
            source: self.source,
            stages,
            sink: self.sink,
            stop: self.stop,
            profile_every: self.profile_every,
        }
    }

    /// Sets the sink (tuples of sinks fan out).
    pub fn sink<S2>(self, sink: S2) -> PipelineBuilder<Src, St, S2> {
        PipelineBuilder {
            source: self.source,
            stages: self.stages,
            sink,
            stop: self.stop,
            profile_every: self.profile_every,
        }
    }

    /// Enables sampled per-phase timing: every `every`-th update has
    /// each phase wall-clocked into [`PipelineOutput::profile`]. The
    /// sampling interval bounds the overhead (see `BENCH_pipeline.json`
    /// `overhead_percent`, gated ≤ 2% in CI).
    pub fn profile(mut self, every: u64) -> Self {
        self.profile_every = Some(every);
        self
    }

    /// Bounds the run by a shared [`ShutdownFlag`] — the live-daemon
    /// shape. Share the same flag with the source
    /// (`kcc_collector::LiveSource::shutdown_flag`) so a trigger unblocks
    /// any pending `next_item` call, lets the source drain what it
    /// already buffered, and then reports end-of-stream — the pipeline
    /// finishes gracefully with every received update accounted for. The
    /// source ending on its own finishes the run the same way.
    pub fn shutdown(mut self, stop: &ShutdownFlag) -> Self {
        self.stop = Some(stop.clone());
        self
    }

    /// Runs the pipeline on the calling thread (honoring
    /// [`shutdown`](PipelineBuilder::shutdown) if set) and returns the
    /// stages, sink and statistics.
    pub fn run(self) -> Result<PipelineOutput<St, S>, SourceError>
    where
        Src: UpdateSource,
        St: Stage,
        S: AnalysisSink,
    {
        let mut source = self.source;
        let mut pipeline = Pipeline::new(self.stages, self.sink);
        if let Some(every) = self.profile_every {
            pipeline.enable_profiling(every);
        }
        match self.stop {
            None => pipeline.run(source)?,
            Some(stop) => loop {
                if stop.is_triggered() {
                    // Drain: a cooperating source returns None once its
                    // buffer is empty, so no received update is silently
                    // dropped.
                    while let Some(item) = source.next_item()? {
                        pipeline.feed(item);
                    }
                    break;
                }
                match source.next_item()? {
                    Some(item) => pipeline.feed(item),
                    None => break,
                }
            },
        }
        Ok(pipeline.finish())
    }

    /// Fans the run out over `n` hash-partitioned worker threads. The
    /// configured stages and sink become per-shard factories by cloning;
    /// use [`ShardedPipelineBuilder::stages_with`] /
    /// [`ShardedPipelineBuilder::sinks_with`] for non-`Clone` state
    /// (e.g. a `CleaningStage` borrowing a registry). Sharded runs are
    /// for bounded sources; a configured shutdown flag is ignored.
    pub fn shards(
        self,
        n: usize,
    ) -> ShardedPipelineBuilder<Src, impl Fn() -> St + Sync, impl Fn() -> S + Sync>
    where
        St: Clone + Sync,
        S: Clone + Sync,
    {
        let stages = self.stages;
        let sink = self.sink;
        ShardedPipelineBuilder {
            source: self.source,
            shards: n,
            make_stages: move || stages.clone(),
            make_sink: move || sink.clone(),
            profile_every: self.profile_every,
        }
    }
}

/// The unconfigured corpus builder [`PipelineBuilder::collectors`]
/// returns: identity stages and no sink for every member until
/// [`CorpusBuilder::stages_for`] / [`CorpusBuilder::sinks_for`] replace
/// the factories.
pub type DefaultCorpusBuilder<'s> = CorpusBuilder<'s, fn(&str), fn(&str) -> NoSink>;

impl<'s> PipelineBuilder<Corpus<'s>> {
    /// A per-collector builder over a corpus — every member runs its own
    /// full pipeline (the [`run_corpus`] shape). Configure with
    /// [`CorpusBuilder::stages_for`] / [`CorpusBuilder::sinks_for`] /
    /// [`CorpusBuilder::threads`], then [`CorpusBuilder::run`].
    pub fn collectors(corpus: Corpus<'s>) -> DefaultCorpusBuilder<'s> {
        CorpusBuilder {
            corpus,
            threads: 4,
            make_stages: |_| (),
            make_sink: |_| NoSink,
            profile_every: None,
        }
    }
}

/// A [`PipelineBuilder`] fanned out over worker threads
/// ([`PipelineBuilder::shards`]); per-shard stages and sinks come from
/// factories so shards never share mutable state.
#[derive(Debug)]
pub struct ShardedPipelineBuilder<Src, FSt, FS> {
    source: Src,
    shards: usize,
    make_stages: FSt,
    make_sink: FS,
    profile_every: Option<u64>,
}

impl<Src, FSt, FS> ShardedPipelineBuilder<Src, FSt, FS> {
    /// Replaces the per-shard stage factory — the route for stage chains
    /// that are not `Clone` (e.g. `CleaningStage` borrowing a registry).
    pub fn stages_with<F2>(self, make_stages: F2) -> ShardedPipelineBuilder<Src, F2, FS> {
        ShardedPipelineBuilder {
            source: self.source,
            shards: self.shards,
            make_stages,
            make_sink: self.make_sink,
            profile_every: self.profile_every,
        }
    }

    /// Replaces the per-shard sink factory.
    pub fn sinks_with<F2>(self, make_sink: F2) -> ShardedPipelineBuilder<Src, FSt, F2> {
        ShardedPipelineBuilder {
            source: self.source,
            shards: self.shards,
            make_stages: self.make_stages,
            make_sink,
            profile_every: self.profile_every,
        }
    }

    /// Enables sampled per-phase timing on every shard (see
    /// [`PipelineBuilder::profile`]); per-shard profiles merge on
    /// finish.
    pub fn profile(mut self, every: u64) -> Self {
        self.profile_every = Some(every);
        self
    }

    /// Runs the source across the workers and merges the per-shard
    /// stages/sinks in shard order. Results are **shard-count
    /// independent** (see [`run_sharded`] for the argument).
    pub fn run<St, S>(self) -> Result<PipelineOutput<St, S>, SourceError>
    where
        Src: UpdateSource,
        St: Stage + Merge + Send,
        S: AnalysisSink + Merge + Send,
        FSt: Fn() -> St + Sync,
        FS: Fn() -> S + Sync,
    {
        run_sharded_impl(
            self.source,
            self.shards,
            self.make_stages,
            self.make_sink,
            self.profile_every,
        )
    }
}

/// A per-collector corpus run being configured
/// ([`PipelineBuilder::collectors`]): each member gets its own stages and
/// sink from the factories (built from the collector name), members fan
/// out across up to `threads` workers, and outputs merge in collector
/// name order.
#[derive(Debug)]
pub struct CorpusBuilder<'s, FSt, FS> {
    corpus: Corpus<'s>,
    threads: usize,
    make_stages: FSt,
    make_sink: FS,
    profile_every: Option<u64>,
}

impl<'s, FSt, FS> CorpusBuilder<'s, FSt, FS> {
    /// Sets the worker-thread cap (default 4; clamped to the member
    /// count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables sampled per-phase timing on every member pipeline (see
    /// [`PipelineBuilder::profile`]); per-collector profiles also merge
    /// into [`CorpusOutput::profile`] in name order.
    pub fn profile(mut self, every: u64) -> Self {
        self.profile_every = Some(every);
        self
    }

    /// Sets the per-collector stage factory (called with each collector
    /// name).
    pub fn stages_for<F2>(self, make_stages: F2) -> CorpusBuilder<'s, F2, FS> {
        CorpusBuilder {
            corpus: self.corpus,
            threads: self.threads,
            make_stages,
            make_sink: self.make_sink,
            profile_every: self.profile_every,
        }
    }

    /// Sets the per-collector sink factory (called with each collector
    /// name).
    pub fn sinks_for<F2>(self, make_sink: F2) -> CorpusBuilder<'s, FSt, F2> {
        CorpusBuilder {
            corpus: self.corpus,
            threads: self.threads,
            make_stages: self.make_stages,
            make_sink,
            profile_every: self.profile_every,
        }
    }

    /// Runs every member through its own pipeline and folds the outputs
    /// into a [`CorpusOutput`]. Results are **collector-order- and
    /// thread-count-independent** (see [`run_corpus`] for the argument).
    pub fn run<St, S>(self) -> Result<CorpusOutput<St, S>, SourceError>
    where
        St: Stage + Send,
        S: AnalysisSink + Merge + Clone + Send,
        FSt: Fn(&str) -> St + Sync,
        FS: Fn(&str) -> S + Sync,
    {
        run_corpus_impl(
            self.corpus,
            self.threads,
            self.make_stages,
            self.make_sink,
            self.profile_every,
        )
    }
}

/// Runs one source through stages and sinks on the calling thread.
///
/// Note: prefer [`PipelineBuilder`] — `PipelineBuilder::new(source)
/// .stages(stages).sink(sink).run()`. This function survives as a thin
/// wrapper over the builder.
pub fn run_pipeline<Src, St, S>(
    source: Src,
    stages: St,
    sink: S,
) -> Result<PipelineOutput<St, S>, SourceError>
where
    Src: UpdateSource,
    St: Stage,
    S: AnalysisSink,
{
    PipelineBuilder::new(source).stages(stages).sink(sink).run()
}

/// Runs a live/unbounded source through stages and sinks — the pipeline
/// entry a collector daemon uses (see
/// [`PipelineBuilder::shutdown`] for the drain semantics).
///
/// Note: prefer [`PipelineBuilder`] — `PipelineBuilder::new(source)
/// .stages(stages).sink(sink).shutdown(stop).run()`. This function
/// survives as a thin wrapper over the builder.
pub fn run_live<Src, St, S>(
    source: Src,
    stages: St,
    sink: S,
    stop: &ShutdownFlag,
) -> Result<PipelineOutput<St, S>, SourceError>
where
    Src: UpdateSource,
    St: Stage,
    S: AnalysisSink,
{
    PipelineBuilder::new(source).stages(stages).sink(sink).shutdown(stop).run()
}

/// Feeds an already-classified archive's events into a sink — the bridge
/// the batch wrappers over event-consuming analyses use.
pub fn feed_classified<S: AnalysisSink>(classified: &ClassifiedArchive, sink: &mut S) {
    for (key, events) in &classified.per_session {
        for event in events {
            sink.on_event(key, event);
        }
    }
}

/// Which shard owns a session. Streams are per-session, so partitioning
/// by session key keeps every stream's state and events on one worker.
fn shard_of(key: &SessionKey, shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// Items per channel message: batching amortizes channel synchronization
/// without hurting the constant-memory story (bounded by
/// `BATCH × IN_FLIGHT × shards` updates in flight).
const SHARD_BATCH: usize = 512;
/// Bounded channel depth per shard.
const SHARD_IN_FLIGHT: usize = 8;

/// Runs one source across `shards` worker threads, hash-partitioned by
/// [`SessionKey`], and merges the per-shard stages/sinks in shard order.
///
/// Results are **shard-count independent**: every `(session, prefix)`
/// stream lives on exactly one worker (so per-stream state and event
/// order are unaffected) and [`Merge`] implementations are
/// partition-insensitive. On a single-core host this degrades to the
/// serial path's results at roughly the serial path's speed; on
/// multi-core hardware wall-clock scales with the shard count.
///
/// Note: prefer [`PipelineBuilder`] —
/// `PipelineBuilder::new(source).stages(st).sink(s).shards(n).run()`
/// (with [`ShardedPipelineBuilder::stages_with`] /
/// [`ShardedPipelineBuilder::sinks_with`] for non-`Clone` state). This
/// function survives as a thin wrapper over the builder.
pub fn run_sharded<Src, St, S, FSt, FS>(
    source: Src,
    shards: usize,
    make_stages: FSt,
    make_sink: FS,
) -> Result<PipelineOutput<St, S>, SourceError>
where
    Src: UpdateSource,
    St: Stage + Merge + Send,
    S: AnalysisSink + Merge + Send,
    FSt: Fn() -> St + Sync,
    FS: Fn() -> S + Sync,
{
    run_sharded_impl(source, shards, make_stages, make_sink, None)
}

/// The hash-partitioned fan-out shared by [`run_sharded`] and
/// [`ShardedPipelineBuilder::run`].
fn run_sharded_impl<Src, St, S, FSt, FS>(
    mut source: Src,
    shards: usize,
    make_stages: FSt,
    make_sink: FS,
    profile_every: Option<u64>,
) -> Result<PipelineOutput<St, S>, SourceError>
where
    Src: UpdateSource,
    St: Stage + Merge + Send,
    S: AnalysisSink + Merge + Send,
    FSt: Fn() -> St + Sync,
    FS: Fn() -> S + Sync,
{
    if shards <= 1 {
        let mut builder = PipelineBuilder::new(source).stages(make_stages()).sink(make_sink());
        if let Some(every) = profile_every {
            builder = builder.profile(every);
        }
        return builder.run();
    }

    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<Vec<SourceItem>>(SHARD_IN_FLIGHT);
            senders.push(tx);
            let make_stages = &make_stages;
            let make_sink = &make_sink;
            handles.push(scope.spawn(move || {
                let mut pipeline = Pipeline::new(make_stages(), make_sink());
                if let Some(every) = profile_every {
                    pipeline.enable_profiling(every);
                }
                while let Ok(batch) = rx.recv() {
                    for item in batch {
                        pipeline.feed(item);
                    }
                }
                pipeline.finish()
            }));
        }

        let mut buffers: Vec<Vec<SourceItem>> = (0..shards).map(|_| Vec::new()).collect();
        let outcome = loop {
            match source.next_item() {
                Ok(Some(item)) => {
                    let key = match &item {
                        SourceItem::Session(meta) => &meta.key,
                        SourceItem::Update(meta, _) => &meta.key,
                    };
                    let shard = shard_of(key, shards);
                    buffers[shard].push(item);
                    if buffers[shard].len() >= SHARD_BATCH {
                        let batch = std::mem::take(&mut buffers[shard]);
                        if senders[shard].send(batch).is_err() {
                            break Err(SourceError::Other("pipeline worker exited early".into()));
                        }
                    }
                }
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        for (shard, buffer) in buffers.into_iter().enumerate() {
            if !buffer.is_empty() {
                // A failed send means the worker panicked; joining below
                // will surface that panic.
                let _ = senders[shard].send(buffer);
            }
        }
        drop(senders);

        let mut merged: Option<PipelineOutput<St, S>> = None;
        for handle in handles {
            let part = handle.join().expect("pipeline worker panicked");
            match &mut merged {
                None => merged = Some(part),
                Some(out) => {
                    out.stages.merge(part.stages);
                    out.sink.merge(part.sink);
                    out.stats.merge(part.stats);
                    match (&mut out.profile, part.profile) {
                        (Some(a), Some(b)) => a.merge(b),
                        (slot @ None, Some(b)) => *slot = Some(b),
                        (_, None) => {}
                    }
                }
            }
        }
        outcome.map(|()| merged.expect("at least one shard"))
    })
}

/// Everything a corpus run returns.
#[derive(Debug)]
pub struct CorpusOutput<St, S> {
    /// One full pipeline output per collector, **sorted by collector
    /// name** — the order every merge below used, so results are
    /// insensitive to member insertion order and thread count.
    pub per_collector: Vec<(String, PipelineOutput<St, S>)>,
    /// All per-collector sinks merged in name order — the combined
    /// all-vantage result.
    pub combined: S,
    /// All per-collector stats merged in name order.
    pub stats: PipelineStats,
    /// All per-collector profiles merged in name order, when profiling
    /// was enabled ([`CorpusBuilder::profile`]).
    pub profile: Option<PipelineProfile>,
}

impl<St, S> CorpusOutput<St, S> {
    /// One collector's output by name.
    pub fn collector(&self, name: &str) -> Option<&PipelineOutput<St, S>> {
        self.per_collector.iter().find(|(n, _)| n == name).map(|(_, out)| out)
    }
}

/// Runs every member of a [`Corpus`] through its **own** full pipeline —
/// per-collector stages (the §4 cleaning is applied per collector, as in
/// the paper) and per-collector sinks, built by the factories from the
/// collector name — fanning the members across up to `threads` workers
/// with `std::thread::scope`. On finish, per-collector outputs are
/// sorted by name and the sinks/stats additionally merged (in that same
/// name order) into the combined all-vantage result.
///
/// Results are **collector-order- and thread-count-independent**: each
/// member is a fully independent pipeline (sessions carry their
/// collector, so no state is shared), workers only affect *which* thread
/// runs a member, and every merge folds in sorted name order using the
/// same integer-counter [`Merge`] discipline as [`run_sharded`]. A
/// failing member surfaces the error of the smallest collector name so
/// even the failure mode is deterministic.
///
/// Note: prefer [`PipelineBuilder`] —
/// `PipelineBuilder::collectors(corpus).threads(n)
/// .stages_for(f).sinks_for(g).run()`. This function survives as a thin
/// wrapper over the builder.
pub fn run_corpus<'scope, St, S, FSt, FS>(
    corpus: Corpus<'scope>,
    threads: usize,
    make_stages: FSt,
    make_sink: FS,
) -> Result<CorpusOutput<St, S>, SourceError>
where
    St: Stage + Send,
    S: AnalysisSink + Merge + Clone + Send,
    FSt: Fn(&str) -> St + Sync,
    FS: Fn(&str) -> S + Sync,
{
    run_corpus_impl(corpus, threads, make_stages, make_sink, None)
}

/// The corpus fan-out shared by [`run_corpus`] and
/// [`CorpusBuilder::run`].
fn run_corpus_impl<'scope, St, S, FSt, FS>(
    corpus: Corpus<'scope>,
    threads: usize,
    make_stages: FSt,
    make_sink: FS,
    profile_every: Option<u64>,
) -> Result<CorpusOutput<St, S>, SourceError>
where
    St: Stage + Send,
    S: AnalysisSink + Merge + Clone + Send,
    FSt: Fn(&str) -> St + Sync,
    FS: Fn(&str) -> S + Sync,
{
    type Slot<St, S> = Option<(String, Result<PipelineOutput<St, S>, SourceError>)>;
    let members = corpus.into_members();
    let n = members.len();
    let slots: Mutex<Vec<Slot<St, S>>> = Mutex::new((0..n).map(|_| None).collect());
    let queue = AtomicUsize::new(0);
    let members: Vec<Mutex<Option<kcc_collector::NamedSource<'scope>>>> =
        members.into_iter().map(|m| Mutex::new(Some(m))).collect();

    std::thread::scope(|scope| {
        let workers = threads.clamp(1, n.max(1));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let members = &members;
            let make_stages = &make_stages;
            let make_sink = &make_sink;
            handles.push(scope.spawn(move || loop {
                let idx = queue.fetch_add(1, Ordering::Relaxed);
                if idx >= members.len() {
                    return;
                }
                let member = members[idx]
                    .lock()
                    .expect("member mutex poisoned")
                    .take()
                    .expect("each member claimed exactly once");
                let name = member.name.clone();
                let mut builder = PipelineBuilder::new(member.source)
                    .stages(make_stages(&name))
                    .sink(make_sink(&name));
                if let Some(every) = profile_every {
                    builder = builder.profile(every);
                }
                let result = builder.run();
                slots.lock().expect("slot mutex poisoned")[idx] = Some((name, result));
            }));
        }
        for h in handles {
            h.join().expect("corpus worker panicked");
        }
    });

    let mut outputs: Vec<(String, PipelineOutput<St, S>)> = Vec::with_capacity(n);
    let mut failures: Vec<(String, SourceError)> = Vec::new();
    for slot in slots.into_inner().expect("slot mutex poisoned") {
        let (name, result) = slot.expect("every member ran");
        match result {
            Ok(out) => outputs.push((name, out)),
            Err(e) => failures.push((name, e)),
        }
    }
    if !failures.is_empty() {
        failures.sort_by(|a, b| a.0.cmp(&b.0));
        let (name, error) = failures.remove(0);
        return Err(SourceError::Other(format!("collector {name}: {error}")));
    }
    outputs.sort_by(|a, b| a.0.cmp(&b.0));

    let mut combined: Option<S> = None;
    let mut stats = PipelineStats::default();
    let mut profile: Option<PipelineProfile> = None;
    for (_, out) in &outputs {
        match &mut combined {
            None => combined = Some(out.sink.clone()),
            Some(c) => c.merge(out.sink.clone()),
        }
        stats.merge(out.stats);
        if let Some(p) = &out.profile {
            match &mut profile {
                None => profile = Some(p.clone()),
                Some(merged) => merged.merge(p.clone()),
            }
        }
    }
    let combined = combined.ok_or_else(|| SourceError::Other("corpus has no members".into()))?;
    Ok(CorpusOutput { per_collector: outputs, combined, stats, profile })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::TypeCounts;
    use crate::stream::{classify_archive, CountsSink};
    use crate::table::{overview, OverviewSink};
    use kcc_bgp_types::{Asn, Community, CommunitySet, PathAttributes, Prefix};
    use kcc_collector::{ArchiveSource, UpdateArchive};

    fn attrs(path: &str, comm: u16) -> PathAttributes {
        PathAttributes {
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic([Community::from_parts(3356, comm)]),
            ..Default::default()
        }
    }

    fn archive() -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let other: Prefix = "84.205.65.0/24".parse().unwrap();
        for peer in 0..6u32 {
            let key = SessionKey::new(
                "rrc00",
                Asn(100 + peer),
                format!("10.0.0.{}", peer + 1).parse().unwrap(),
            );
            for i in 0..10u64 {
                a.record(&key, RouteUpdate::announce(i, prefix, attrs("1 2 3", i as u16 % 3)));
                a.record(&key, RouteUpdate::announce(i, other, attrs("1 9 3", 7)));
            }
            a.record(&key, RouteUpdate::withdraw(100, prefix));
        }
        a
    }

    #[test]
    fn one_pass_drives_multiple_sinks() {
        let a = archive();
        let out = run_pipeline(
            ArchiveSource::new(&a),
            (),
            (CountsSink::default(), OverviewSink::default()),
        )
        .unwrap();
        let (counts, overview_sink) = out.sink;
        assert_eq!(counts.finish(), classify_archive(&a).counts);
        assert_eq!(overview_sink.finish(), overview(&a));
        assert_eq!(out.stats.sessions, 6);
        assert_eq!(out.stats.updates, a.update_count() as u64);
        assert_eq!(out.stats.streams, 12, "2 prefixes × 6 sessions");
        assert!(out.stats.peak_state_bytes > 0);
    }

    #[test]
    fn update_only_sinks_skip_classifier_state() {
        let a = archive();
        let out = run_pipeline(ArchiveSource::new(&a), (), OverviewSink::default()).unwrap();
        assert_eq!(out.stats.streams, 0, "no classifier state for update-only sinks");
        assert_eq!(out.sink.finish(), overview(&a));
    }

    #[test]
    fn sharded_equals_serial() {
        let a = archive();
        let serial = run_pipeline(
            ArchiveSource::new(&a),
            (),
            (CountsSink::default(), OverviewSink::default()),
        )
        .unwrap();
        for shards in [2, 3, 5] {
            let sharded = run_sharded(
                ArchiveSource::new(&a),
                shards,
                || (),
                || (CountsSink::default(), OverviewSink::default()),
            )
            .unwrap();
            assert_eq!(
                sharded.sink.0.finish(),
                serial.sink.0.finish(),
                "{shards} shards: counts diverged"
            );
            assert_eq!(
                sharded.sink.1.clone().finish(),
                serial.sink.1.clone().finish(),
                "{shards} shards: overview diverged"
            );
            assert_eq!(sharded.stats.sessions, serial.stats.sessions);
            assert_eq!(sharded.stats.updates, serial.stats.updates);
            assert_eq!(sharded.stats.streams, serial.stats.streams);
        }
    }

    #[test]
    fn more_shards_than_sessions_is_fine() {
        let a = archive();
        let out = run_sharded(ArchiveSource::new(&a), 64, || (), CountsSink::default).unwrap();
        assert_eq!(out.sink.finish(), classify_archive(&a).counts);
    }

    fn collector_archive(collector: &str, peers: std::ops::Range<u32>) -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        for peer in peers {
            let key = SessionKey::new(
                collector,
                Asn(100 + peer),
                format!("10.0.{}.{}", peer / 250, peer % 250 + 1).parse().unwrap(),
            );
            for i in 0..8u64 {
                a.record(&key, RouteUpdate::announce(i, prefix, attrs("1 2 3", i as u16 % 4)));
            }
        }
        a
    }

    #[test]
    fn corpus_is_order_and_thread_count_independent() {
        let a = collector_archive("rrc00", 0..4);
        let b = collector_archive("rrc01", 2..8);
        let c = collector_archive("route-views2", 5..6);
        let build = |order: &[usize]| {
            let archives = [&a, &b, &c];
            let names = ["rrc00", "rrc01", "route-views2"];
            let mut corpus = Corpus::new();
            for &i in order {
                corpus.push(names[i], ArchiveSource::new(archives[i])).unwrap();
            }
            corpus
        };
        let reference =
            run_corpus(build(&[0, 1, 2]), 1, |_| (), |_| CountsSink::default()).unwrap();
        for order in [[2, 1, 0], [1, 0, 2]] {
            for threads in [1, 2, 7] {
                let out =
                    run_corpus(build(&order), threads, |_| (), |_| CountsSink::default()).unwrap();
                let names: Vec<&String> = out.per_collector.iter().map(|(n, _)| n).collect();
                assert_eq!(names, vec!["route-views2", "rrc00", "rrc01"], "name-sorted");
                assert_eq!(out.combined.finish(), reference.combined.finish());
                assert_eq!(out.stats, reference.stats);
                for ((n1, o1), (n2, o2)) in out.per_collector.iter().zip(&reference.per_collector) {
                    assert_eq!(n1, n2);
                    assert_eq!(o1.sink.finish(), o2.sink.finish());
                    assert_eq!(o1.stats, o2.stats);
                }
            }
        }
    }

    #[test]
    fn single_member_corpus_equals_plain_pipeline() {
        let a = collector_archive("rrc00", 0..5);
        let direct = run_pipeline(ArchiveSource::new(&a), (), CountsSink::default()).unwrap();
        let corpus = Corpus::new().with("rrc00", ArchiveSource::new(&a)).unwrap();
        let out = run_corpus(corpus, 4, |_| (), |_| CountsSink::default()).unwrap();
        assert_eq!(out.per_collector.len(), 1);
        assert_eq!(out.combined.finish(), direct.sink.finish());
        assert_eq!(out.stats, direct.stats);
        assert_eq!(out.collector("rrc00").unwrap().stats, direct.stats);
    }

    #[test]
    fn corpus_combined_merges_in_name_order() {
        // Overview distinct-count merges must union across collectors.
        let a = collector_archive("rrc00", 0..3);
        let b = collector_archive("rrc01", 0..3);
        let corpus = Corpus::new()
            .with("rrc00", ArchiveSource::new(&a))
            .unwrap()
            .with("rrc01", ArchiveSource::new(&b))
            .unwrap();
        let out = run_corpus(corpus, 2, |_| (), |_| OverviewSink::default()).unwrap();
        let merged = out.combined.finish();
        assert_eq!(merged.sessions, 6, "3 sessions per collector, keys disjoint");
        assert_eq!(merged.peers, 3, "same peer ASes union across collectors");
    }

    #[test]
    fn empty_corpus_is_an_error() {
        assert!(run_corpus(Corpus::new(), 2, |_| (), |_| CountsSink::default()).is_err());
    }

    #[test]
    fn failing_member_reports_smallest_name() {
        struct Failing;
        impl UpdateSource for Failing {
            fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
                Err(SourceError::Other("boom".into()))
            }
        }
        let corpus = Corpus::new().with("rrc07", Failing).unwrap().with("rrc03", Failing).unwrap();
        let err = run_corpus(corpus, 2, |_| (), |_| CountsSink::default()).unwrap_err();
        assert!(err.to_string().contains("rrc03"), "deterministic failure: {err}");
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = PipelineStats {
            sessions: 1,
            updates: 10,
            kept: 9,
            streams: 2,
            state_bytes: 100,
            peak_state_bytes: 120,
        };
        a.merge(PipelineStats {
            sessions: 2,
            updates: 5,
            kept: 5,
            streams: 1,
            state_bytes: 50,
            peak_state_bytes: 60,
        });
        assert_eq!(a.sessions, 3);
        assert_eq!(a.updates, 15);
        assert_eq!(a.peak_state_bytes, 180);
    }

    #[test]
    fn builder_serial_equals_run_pipeline() {
        let a = archive();
        let built = PipelineBuilder::new(ArchiveSource::new(&a))
            .sink((CountsSink::default(), OverviewSink::default()))
            .run()
            .unwrap();
        let direct = run_pipeline(
            ArchiveSource::new(&a),
            (),
            (CountsSink::default(), OverviewSink::default()),
        )
        .unwrap();
        assert_eq!(built.sink.0.finish(), direct.sink.0.finish());
        assert_eq!(built.sink.1.finish(), direct.sink.1.finish());
        assert_eq!(built.stats, direct.stats);
    }

    #[test]
    fn builder_shutdown_drains_bounded_sources() {
        // A pre-triggered flag exercises the drain path: every item must
        // still be consumed.
        let a = archive();
        let stop = ShutdownFlag::new();
        stop.trigger();
        let out = PipelineBuilder::new(ArchiveSource::new(&a))
            .sink(CountsSink::default())
            .shutdown(&stop)
            .run()
            .unwrap();
        assert_eq!(out.stats.updates, a.update_count() as u64);
        assert_eq!(out.sink.finish(), classify_archive(&a).counts);
    }

    #[test]
    fn builder_shards_by_cloning_sink() {
        let a = archive();
        let serial = run_pipeline(ArchiveSource::new(&a), (), CountsSink::default()).unwrap();
        let sharded = PipelineBuilder::new(ArchiveSource::new(&a))
            .sink(CountsSink::default())
            .shards(3)
            .run()
            .unwrap();
        assert_eq!(sharded.sink.finish(), serial.sink.finish());
        assert_eq!(sharded.stats.updates, serial.stats.updates);
    }

    #[test]
    fn builder_shards_with_factory_override() {
        let a = archive();
        let serial = run_pipeline(ArchiveSource::new(&a), (), CountsSink::default()).unwrap();
        let sharded = PipelineBuilder::new(ArchiveSource::new(&a))
            .sink(NoSink)
            .shards(4)
            .sinks_with(CountsSink::default)
            .run()
            .unwrap();
        assert_eq!(sharded.sink.finish(), serial.sink.finish());
    }

    #[test]
    fn builder_collectors_equals_run_corpus() {
        let a = collector_archive("rrc00", 0..4);
        let b = collector_archive("rrc01", 2..8);
        let mk = || {
            Corpus::new()
                .with("rrc00", ArchiveSource::new(&a))
                .unwrap()
                .with("rrc01", ArchiveSource::new(&b))
                .unwrap()
        };
        let direct = run_corpus(mk(), 2, |_| (), |_| CountsSink::default()).unwrap();
        let built = PipelineBuilder::collectors(mk())
            .threads(2)
            .sinks_for(|_: &str| CountsSink::default())
            .run()
            .unwrap();
        assert_eq!(built.combined.finish(), direct.combined.finish());
        assert_eq!(built.stats, direct.stats);
        let names: Vec<&String> = built.per_collector.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["rrc00", "rrc01"]);
    }

    #[test]
    fn counts_merge_is_typecounts_merge() {
        let mut a = TypeCounts { pc: 1, ..Default::default() };
        Merge::merge(&mut a, TypeCounts { pc: 2, nn: 3, ..Default::default() });
        assert_eq!(a.pc, 3);
        assert_eq!(a.nn, 3);
    }
}
