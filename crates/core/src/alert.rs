//! Typed routing-anomaly alerts — the output surface of every detector
//! in this crate.
//!
//! The paper's §7 closes with "predicting anomalous communities"; the
//! CommunityWatch line of related work generalizes that signal into a
//! standing anomaly service for hijacks, leaks, outages and blackholing.
//! [`Alert`] is the one shape both produce: the batch
//! [`CommunityProfiler::detect`](crate::anomaly::CommunityProfiler::detect)
//! and the online [`WatchSink`](crate::watch::WatchSink) emit the same
//! typed alerts, with
//!
//! * a **deterministic total order** ([`Alert::sort_key`]): serial,
//!   sharded and corpus runs report byte-identical lists for any shard
//!   count or collector order,
//! * **severity and evidence fields** per kind, and
//! * a **stable line serialization** ([`Alert::to_line`]) whose format
//!   is pinned by tests — safe to diff, archive, and parse downstream.

use std::fmt;

use kcc_bgp_types::{Asn, Community, Prefix};
use kcc_collector::SessionKey;

/// How urgent an alert is. Severity is a function of the alert kind
/// ([`AlertKind::severity`]), stored on the alert so serialized streams
/// carry it explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth logging; expected under normal churn.
    Info,
    /// Deviates from baseline; worth an operator's look.
    Warning,
    /// Traffic is (or is about to be) affected.
    Critical,
}

impl Severity {
    /// The stable lowercase label used in rendering and serialization.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which baseline a [`AlertKind::BaselineShift`] deviated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftMetric {
    /// Distinct community attributes on one stream (the batch detector's
    /// exploration-burst signal).
    DistinctAttrs,
    /// Announcements carrying one community per window.
    AnnounceRate,
    /// Distinct sessions carrying one community per window.
    SessionFanout,
}

impl ShiftMetric {
    /// The stable kebab-case label used in rendering and serialization.
    pub fn label(self) -> &'static str {
        match self {
            ShiftMetric::DistinctAttrs => "distinct-attrs",
            ShiftMetric::AnnounceRate => "announce-rate",
            ShiftMetric::SessionFanout => "session-fanout",
        }
    }
}

/// What was detected, with per-kind evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertKind {
    /// A community value outside its namespace's learned value set
    /// (fat-fingered or injected tags; the attack vector of Streibelt
    /// et al.). The batch detector's *novel value* signal.
    NovelCommunity {
        /// The offending community.
        community: Community,
    },
    /// A well-known action community (BLACKHOLE, GRACEFUL_SHUTDOWN, …)
    /// on a stream that never carried one in training — the injected
    /// remote-triggered-blackhole signature. The batch detector's
    /// *action signal*.
    BlackholeInjection {
        /// The action community.
        community: Community,
        /// Its IANA name.
        name: &'static str,
    },
    /// A windowed rate far above its learned baseline. With
    /// [`ShiftMetric::DistinctAttrs`] this is the batch detector's
    /// *exploration burst*.
    BaselineShift {
        /// Which baseline shifted.
        metric: ShiftMetric,
        /// The community whose baseline shifted (`None` for per-stream
        /// metrics).
        community: Option<Community>,
        /// Observed value in the detection window.
        observed: u64,
        /// Learned baseline.
        baseline: u64,
    },
    /// A prefix announced by an origin AS outside its learned origin set.
    PrefixHijack {
        /// The unexpected origin.
        origin: Asn,
        /// The learned origin set (ascending).
        expected: Vec<Asn>,
    },
    /// A new transit AS on the path of a prefix whose origin is
    /// unchanged — the route-leak signature.
    RouteLeak {
        /// The AS newly on the path.
        via: Asn,
        /// The (learned, unchanged) origin.
        origin: Asn,
    },
    /// A collector that had been feeding went silent for consecutive
    /// windows while other collectors stayed active.
    CollectorOutage {
        /// The silent collector.
        collector: String,
        /// Consecutive silent windows observed.
        silent_windows: u64,
    },
}

impl AlertKind {
    /// The severity this kind of alert carries.
    pub fn severity(&self) -> Severity {
        match self {
            AlertKind::NovelCommunity { .. } => Severity::Info,
            AlertKind::BaselineShift { .. } => Severity::Warning,
            AlertKind::RouteLeak { .. } => Severity::Warning,
            AlertKind::CollectorOutage { .. } => Severity::Warning,
            AlertKind::BlackholeInjection { .. } => Severity::Critical,
            AlertKind::PrefixHijack { .. } => Severity::Critical,
        }
    }

    /// The stable kebab-case kind label.
    pub fn label(&self) -> &'static str {
        match self {
            AlertKind::NovelCommunity { .. } => "novel-community",
            AlertKind::BlackholeInjection { .. } => "blackhole-injection",
            AlertKind::BaselineShift { .. } => "baseline-shift",
            AlertKind::PrefixHijack { .. } => "prefix-hijack",
            AlertKind::RouteLeak { .. } => "route-leak",
            AlertKind::CollectorOutage { .. } => "collector-outage",
        }
    }

    /// Rank in the canonical order. The first three mirror the
    /// pre-`Alert` anomaly ranks (novel value 0, action signal 1,
    /// exploration burst 2), so sorted batch output is unchanged by the
    /// migration.
    fn rank(&self) -> u8 {
        match self {
            AlertKind::NovelCommunity { .. } => 0,
            AlertKind::BlackholeInjection { .. } => 1,
            AlertKind::BaselineShift { .. } => 2,
            AlertKind::PrefixHijack { .. } => 3,
            AlertKind::RouteLeak { .. } => 4,
            AlertKind::CollectorOutage { .. } => 5,
        }
    }

    /// Kind-specific tiebreak details for the canonical order.
    fn detail(&self) -> (u64, u64, &str) {
        match self {
            AlertKind::NovelCommunity { community } => (community.0 as u64, 0, ""),
            AlertKind::BlackholeInjection { community, .. } => (community.0 as u64, 0, ""),
            AlertKind::BaselineShift { observed, community, .. } => {
                (*observed, community.map(|c| c.0 as u64).unwrap_or(0), "")
            }
            AlertKind::PrefixHijack { origin, .. } => (origin.value() as u64, 0, ""),
            AlertKind::RouteLeak { via, origin } => (via.value() as u64, origin.value() as u64, ""),
            AlertKind::CollectorOutage { collector, silent_windows } => {
                (*silent_windows, 0, collector.as_str())
            }
        }
    }

    /// The evidence part of the rendered line (everything after the kind
    /// label).
    fn render_evidence(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertKind::NovelCommunity { community } => write!(f, "{community}"),
            AlertKind::BlackholeInjection { community, name } => {
                write!(f, "{community} ({name})")
            }
            AlertKind::BaselineShift { metric, community, observed, baseline } => match community {
                Some(c) => {
                    write!(f, "{} {c} {observed} vs baseline {baseline}", metric.label())
                }
                None => write!(f, "{} {observed} vs baseline {baseline}", metric.label()),
            },
            AlertKind::PrefixHijack { origin, expected } => {
                write!(f, "origin AS{origin} (expected ")?;
                for (i, asn) in expected.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "AS{asn}")?;
                }
                f.write_str(")")
            }
            AlertKind::RouteLeak { via, origin } => {
                write!(f, "via AS{via} (origin AS{origin})")
            }
            AlertKind::CollectorOutage { collector, silent_windows } => {
                write!(f, "{collector} silent for {silent_windows} window(s)")
            }
        }
    }
}

/// One detected routing anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Event time (µs since the day's epoch). For windowed detections
    /// this is the start of the offending window or the first offending
    /// sighting in it.
    pub time_us: u64,
    /// The session the evidence arrived on (`None` for collector-scoped
    /// alerts such as outages).
    pub session: Option<SessionKey>,
    /// The affected prefix (`None` for community- or collector-scoped
    /// alerts).
    pub prefix: Option<Prefix>,
    /// Derived from the kind at construction; carried explicitly so
    /// serialized alerts are self-describing.
    pub severity: Severity,
    /// What was detected, with evidence.
    pub kind: AlertKind,
}

impl Alert {
    /// An alert for `kind`; severity is derived from the kind.
    pub fn new(
        time_us: u64,
        session: Option<SessionKey>,
        prefix: Option<Prefix>,
        kind: AlertKind,
    ) -> Self {
        let severity = kind.severity();
        Alert { time_us, session, prefix, severity, kind }
    }

    /// The collector this alert concerns, when one is identifiable.
    pub fn collector(&self) -> Option<&str> {
        match &self.kind {
            AlertKind::CollectorOutage { collector, .. } => Some(collector),
            _ => self.session.as_ref().map(|s| s.collector.as_str()),
        }
    }

    /// A deterministic total order: by time, then stream, then kind rank,
    /// then per-kind evidence — so serial, sharded and corpus runs report
    /// identical lists even when several alerts share a timestamp.
    pub fn sort_key(&self) -> (u64, Option<SessionKey>, Option<Prefix>, u8, u64, u64, String) {
        let (d1, d2, ds) = self.kind.detail();
        (self.time_us, self.session.clone(), self.prefix, self.kind.rank(), d1, d2, ds.to_owned())
    }

    /// The stable one-line serialization:
    /// `time_us=… severity=… kind=… [session=…] [prefix=…] detail`.
    /// The format is pinned by tests; fields never reorder.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "time_us={} severity={} kind={}",
            self.time_us,
            self.severity.label(),
            self.kind.label()
        );
        if let Some(session) = &self.session {
            line.push_str(&format!(" session={session}"));
        }
        if let Some(prefix) = &self.prefix {
            line.push_str(&format!(" prefix={prefix}"));
        }
        line.push_str(&format!(" {self:#}"));
        line
    }
}

/// Renders `[severity] t=…µs kind evidence on prefix (session)`.
/// The alternate form (`{:#}`) renders only the kind + evidence (the
/// tail of [`Alert::to_line`]).
impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            f.write_str(self.kind.label())?;
            f.write_str(" ")?;
            return self.kind.render_evidence(f);
        }
        write!(f, "[{}] t={}µs {} ", self.severity.label(), self.time_us, self.kind.label())?;
        self.kind.render_evidence(f)?;
        if let Some(prefix) = &self.prefix {
            write!(f, " on {prefix}")?;
        }
        if let Some(session) = &self.session {
            write!(f, " ({session})")?;
        }
        Ok(())
    }
}

/// Sorts alerts into the canonical order ([`Alert::sort_key`]).
pub fn sort_alerts(alerts: &mut [Alert]) {
    alerts.sort_by_cached_key(Alert::sort_key);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SessionKey {
        SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap())
    }

    fn prefix() -> Prefix {
        "84.205.64.0/24".parse().unwrap()
    }

    #[test]
    fn severity_is_derived_from_kind() {
        let a = Alert::new(
            1,
            Some(session()),
            Some(prefix()),
            AlertKind::PrefixHijack { origin: Asn(666), expected: vec![Asn(100)] },
        );
        assert_eq!(a.severity, Severity::Critical);
        assert_eq!(
            Alert::new(
                1,
                None,
                None,
                AlertKind::NovelCommunity { community: Community::from_parts(200, 1) }
            )
            .severity,
            Severity::Info
        );
    }

    #[test]
    fn display_format_is_pinned() {
        let a = Alert::new(
            101,
            Some(session()),
            Some(prefix()),
            AlertKind::NovelCommunity { community: Community::from_parts(200, 7777) },
        );
        assert_eq!(
            a.to_string(),
            "[info] t=101µs novel-community 200:7777 on 84.205.64.0/24 (rrc00:AS100@10.0.0.1)"
        );
        let h = Alert::new(
            5,
            Some(session()),
            Some(prefix()),
            AlertKind::PrefixHijack { origin: Asn(666), expected: vec![Asn(100), Asn(200)] },
        );
        assert_eq!(
            h.to_string(),
            "[critical] t=5µs prefix-hijack origin AS666 (expected AS100,AS200) \
             on 84.205.64.0/24 (rrc00:AS100@10.0.0.1)"
        );
        let o = Alert::new(
            900,
            None,
            None,
            AlertKind::CollectorOutage { collector: "rrc01".into(), silent_windows: 3 },
        );
        assert_eq!(
            o.to_string(),
            "[warning] t=900µs collector-outage rrc01 silent for 3 window(s)"
        );
    }

    #[test]
    fn line_serialization_is_pinned() {
        let a = Alert::new(
            42,
            Some(session()),
            Some(prefix()),
            AlertKind::BlackholeInjection {
                community: Community::from_parts(65_535, 666),
                name: "BLACKHOLE",
            },
        );
        assert_eq!(
            a.to_line(),
            "time_us=42 severity=critical kind=blackhole-injection \
             session=rrc00:AS100@10.0.0.1 prefix=84.205.64.0/24 \
             blackhole-injection 65535:666 (BLACKHOLE)"
        );
    }

    #[test]
    fn canonical_order_is_total_and_deterministic() {
        let mk = |t, kind| Alert::new(t, Some(session()), Some(prefix()), kind);
        let mut alerts = vec![
            mk(
                5,
                AlertKind::BaselineShift {
                    metric: ShiftMetric::DistinctAttrs,
                    community: None,
                    observed: 30,
                    baseline: 6,
                },
            ),
            mk(5, AlertKind::NovelCommunity { community: Community::from_parts(200, 1) }),
            Alert::new(
                1,
                None,
                None,
                AlertKind::CollectorOutage { collector: "rrc09".into(), silent_windows: 2 },
            ),
            mk(
                5,
                AlertKind::BlackholeInjection {
                    community: Community::from_parts(65_535, 666),
                    name: "BLACKHOLE",
                },
            ),
        ];
        sort_alerts(&mut alerts);
        // Time first; within one (time, stream): novel < blackhole < shift.
        assert!(matches!(alerts[0].kind, AlertKind::CollectorOutage { .. }));
        assert!(matches!(alerts[1].kind, AlertKind::NovelCommunity { .. }));
        assert!(matches!(alerts[2].kind, AlertKind::BlackholeInjection { .. }));
        assert!(matches!(alerts[3].kind, AlertKind::BaselineShift { .. }));
        let again = {
            let mut a = alerts.clone();
            sort_alerts(&mut a);
            a
        };
        assert_eq!(alerts, again);
    }
}
