//! Longitudinal aggregation (paper Figs. 2 and 6).
//!
//! Fig. 2 plots daily announcement counts per type across the ten-year
//! archive (quarterly sample days); Fig. 6 plots the number of unique
//! community attributes revealed during withdrawal phases, the total, and
//! their ratio over the same period.

use kcc_bgp_types::{Prefix, RouteUpdate};
use kcc_collector::{BeaconSchedule, SessionKey};

use crate::classify::{AnnouncementType, TypeCounts};
use crate::pipeline::{AnalysisSink, Merge};
use crate::report::{render_csv, render_table};
use crate::revealed::{RevealedSink, RevealedStats};
use crate::stream::{ClassifiedEvent, CountsSink};

/// One sampled day in a longitudinal series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Day label, e.g. `2019-03-15`.
    pub label: String,
    /// Type counts of the day.
    pub counts: TypeCounts,
    /// Revealed-attribute statistics of the day, when computed.
    pub revealed: Option<RevealedStats>,
}

/// A longitudinal series of sampled days.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LongitudinalSeries {
    /// Points in chronological order.
    pub points: Vec<SeriesPoint>,
}

/// Builds one longitudinal [`SeriesPoint`] (a sampled day's type counts
/// plus revealed-attribute statistics) in one streaming pass — the
/// Figs. 2/6 consumer as an [`AnalysisSink`].
#[derive(Debug, Clone)]
pub struct DayPointSink {
    label: String,
    counts: CountsSink,
    revealed: RevealedSink,
}

impl DayPointSink {
    /// A sink for the day labeled `label`, computing revealed stats over
    /// `schedule` restricted to `beacon_prefixes` when non-empty.
    pub fn new(
        label: impl Into<String>,
        schedule: BeaconSchedule,
        beacon_prefixes: &[Prefix],
    ) -> Self {
        DayPointSink {
            label: label.into(),
            counts: CountsSink::default(),
            revealed: RevealedSink::new(schedule, beacon_prefixes),
        }
    }

    /// The finished day point.
    pub fn finish(self) -> SeriesPoint {
        SeriesPoint {
            label: self.label,
            counts: self.counts.finish(),
            revealed: Some(self.revealed.finish()),
        }
    }
}

impl AnalysisSink for DayPointSink {
    fn on_update(&mut self, session: &SessionKey, update: &RouteUpdate) {
        self.revealed.on_update(session, update);
    }

    fn on_event(&mut self, session: &SessionKey, event: &ClassifiedEvent) {
        self.counts.on_event(session, event);
    }
}

impl Merge for DayPointSink {
    fn merge(&mut self, other: Self) {
        self.counts.merge(other.counts);
        self.revealed.merge(other.revealed);
    }
}

impl LongitudinalSeries {
    /// Appends a day.
    pub fn push(&mut self, label: impl Into<String>, counts: TypeCounts) {
        self.points.push(SeriesPoint { label: label.into(), counts, revealed: None });
    }

    /// Appends a finished [`DayPointSink`] day.
    pub fn push_point(&mut self, point: SeriesPoint) {
        self.points.push(point);
    }

    /// Appends a day with revealed stats.
    pub fn push_with_revealed(
        &mut self,
        label: impl Into<String>,
        counts: TypeCounts,
        revealed: RevealedStats,
    ) {
        self.points.push(SeriesPoint { label: label.into(), counts, revealed: Some(revealed) });
    }

    /// Fig. 2 data: CSV with one row per day, one column per type.
    pub fn fig2_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                let mut row = vec![p.label.clone()];
                for t in AnnouncementType::ALL {
                    row.push(p.counts.get(t).to_string());
                }
                row.push(p.counts.withdrawals.to_string());
                row
            })
            .collect();
        render_csv(&["day", "pc", "pn", "nc", "nn", "xc", "xn", "withdrawals"], &rows)
    }

    /// Fig. 2 as an aligned text table.
    pub fn fig2_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                let mut row = vec![p.label.clone()];
                for t in AnnouncementType::ALL {
                    row.push(p.counts.get(t).to_string());
                }
                row
            })
            .collect();
        render_table(&["day", "pc", "pn", "nc", "nn", "xc", "xn"], &rows)
    }

    /// Fig. 6 data: per-day totals, withdrawal-exclusive counts, ratio.
    pub fn fig6_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .filter_map(|p| {
                p.revealed.map(|r| {
                    vec![
                        p.label.clone(),
                        r.total.to_string(),
                        r.withdrawal_only.to_string(),
                        format!("{:.3}", r.withdrawal_ratio()),
                    ]
                })
            })
            .collect();
        render_csv(&["day", "total", "during_withdrawal", "ratio"], &rows)
    }

    /// Mean withdrawal-exclusive ratio across days with revealed stats —
    /// the paper's "stable ratio of about 60%".
    pub fn mean_withdrawal_ratio(&self) -> f64 {
        let ratios: Vec<f64> =
            self.points.iter().filter_map(|p| p.revealed.map(|r| r.withdrawal_ratio())).collect();
        if ratios.is_empty() {
            return 0.0;
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }

    /// Whether a per-type share stayed within `tolerance` (in percentage
    /// points) of its series mean — the paper's "the share of all types is
    /// relatively stable" observation.
    pub fn share_is_stable(&self, t: AnnouncementType, tolerance: f64) -> bool {
        let shares: Vec<f64> = self.points.iter().map(|p| p.counts.share(t)).collect();
        if shares.is_empty() {
            return true;
        }
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        shares.iter().all(|s| (s - mean).abs() <= tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pc: u64, nn: u64) -> TypeCounts {
        TypeCounts { pc, nn, ..Default::default() }
    }

    #[test]
    fn fig2_csv_shape() {
        let mut s = LongitudinalSeries::default();
        s.push("2019-03-15", counts(10, 5));
        s.push("2019-06-15", counts(12, 6));
        let csv = s.fig2_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("day,pc,pn"));
        assert!(lines[1].starts_with("2019-03-15,10,"));
    }

    #[test]
    fn fig6_ratio_mean() {
        let mut s = LongitudinalSeries::default();
        s.push_with_revealed(
            "2019",
            counts(1, 1),
            RevealedStats { total: 100, withdrawal_only: 60, ..Default::default() },
        );
        s.push_with_revealed(
            "2020",
            counts(1, 1),
            RevealedStats { total: 200, withdrawal_only: 124, ..Default::default() },
        );
        assert!((s.mean_withdrawal_ratio() - 0.61).abs() < 1e-9);
        let csv = s.fig6_csv();
        assert!(csv.contains("0.600"));
        assert!(csv.contains("0.620"));
    }

    #[test]
    fn stability_check() {
        let mut s = LongitudinalSeries::default();
        for _ in 0..5 {
            s.push("d", counts(50, 50));
        }
        assert!(s.share_is_stable(AnnouncementType::Pc, 1.0));
        s.push("e", counts(100, 0));
        assert!(!s.share_is_stable(AnnouncementType::Pc, 5.0));
    }

    #[test]
    fn empty_series_defaults() {
        let s = LongitudinalSeries::default();
        assert_eq!(s.mean_withdrawal_ratio(), 0.0);
        assert!(s.share_is_stable(AnnouncementType::Nc, 0.0));
    }
}
