//! Revealed information (paper §6, Fig. 6).
//!
//! "In March 15, 2020, we identify a total of 21,398 unique community
//! attributes. 62% of all community attributes are revealed exclusively
//! during the withdrawal phases. Only 17% are revealed during the
//! announcement phases and <1% outside both phases. The remaining
//! attributes show up ambiguously."
//!
//! A *community attribute* is the full community set of one announcement;
//! uniqueness is set-level (the canonical key), and an attribute is
//! attributed to the phase category in which it appears.

use std::collections::HashMap;

use kcc_bgp_types::{MessageKind, Prefix, RouteUpdate};
use kcc_collector::{ArchiveSource, BeaconPhase, BeaconSchedule, SessionKey, UpdateArchive};

use crate::beacon_phase::DAY_US;
use crate::pipeline::{run_pipeline, AnalysisSink, Merge};

/// Phase-category bit flags an attribute was seen in.
mod seen {
    /// Seen during a withdrawal phase.
    pub const WITHDRAWAL: u8 = 1;
    /// Seen during an announcement phase.
    pub const ANNOUNCEMENT: u8 = 2;
    /// Seen outside both.
    pub const OUTSIDE: u8 = 4;
}

/// Fig. 6 statistics for one archive (typically one day).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RevealedStats {
    /// Unique non-empty community attributes.
    pub total: u64,
    /// Revealed exclusively during withdrawal phases.
    pub withdrawal_only: u64,
    /// Revealed exclusively during announcement phases.
    pub announcement_only: u64,
    /// Revealed exclusively outside both.
    pub outside_only: u64,
    /// Seen in more than one category.
    pub ambiguous: u64,
}

impl RevealedStats {
    /// The paper's headline ratio: withdrawal-exclusive / total.
    pub fn withdrawal_ratio(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.withdrawal_only as f64 / self.total as f64
    }
}

/// Tracks which phase categories every unique community attribute was
/// seen in — Fig. 6 as a streaming sink. State is one byte of flags per
/// *unique attribute*, independent of update volume.
#[derive(Debug, Clone)]
pub struct RevealedSink {
    schedule: BeaconSchedule,
    beacon_prefixes: Vec<Prefix>,
    attrs_seen: HashMap<String, u8>,
}

impl RevealedSink {
    /// A sink over `schedule`, restricted to `beacon_prefixes` when
    /// non-empty (the paper's d_beacon view).
    pub fn new(schedule: BeaconSchedule, beacon_prefixes: &[Prefix]) -> Self {
        RevealedSink {
            schedule,
            beacon_prefixes: beacon_prefixes.to_vec(),
            attrs_seen: HashMap::new(),
        }
    }

    /// The accumulated statistics.
    pub fn finish(&self) -> RevealedStats {
        let mut stats = RevealedStats { total: self.attrs_seen.len() as u64, ..Default::default() };
        for flags in self.attrs_seen.values() {
            match *flags {
                f if f == seen::WITHDRAWAL => stats.withdrawal_only += 1,
                f if f == seen::ANNOUNCEMENT => stats.announcement_only += 1,
                f if f == seen::OUTSIDE => stats.outside_only += 1,
                _ => stats.ambiguous += 1,
            }
        }
        stats
    }
}

impl AnalysisSink for RevealedSink {
    fn on_update(&mut self, _session: &SessionKey, u: &RouteUpdate) {
        if !self.beacon_prefixes.is_empty() && !self.beacon_prefixes.contains(&u.prefix) {
            return;
        }
        let MessageKind::Announcement(attrs) = &u.kind else {
            return;
        };
        if attrs.communities.is_empty() {
            return; // an empty attribute reveals nothing
        }
        let flag = match self.schedule.phase_of(u.time_us % DAY_US) {
            BeaconPhase::Withdrawal(_) => seen::WITHDRAWAL,
            BeaconPhase::Announcement(_) => seen::ANNOUNCEMENT,
            BeaconPhase::Outside => seen::OUTSIDE,
        };
        *self.attrs_seen.entry(attrs.communities.canonical_key()).or_insert(0) |= flag;
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for RevealedSink {
    fn merge(&mut self, other: Self) {
        for (key, flags) in other.attrs_seen {
            *self.attrs_seen.entry(key).or_insert(0) |= flags;
        }
    }
}

/// Computes revealed-attribute statistics over the archive — the batch
/// wrapper over [`RevealedSink`].
pub fn revealed_attributes(
    archive: &UpdateArchive,
    schedule: &BeaconSchedule,
    beacon_prefixes: &[Prefix],
) -> RevealedStats {
    run_pipeline(ArchiveSource::new(archive), (), RevealedSink::new(*schedule, beacon_prefixes))
        .expect("archive sources cannot fail")
        .sink
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, Community, CommunitySet, PathAttributes, RouteUpdate};
    use kcc_collector::SessionKey;

    const HOUR_US: u64 = 3600 * 1_000_000;

    fn attrs(comms: &[(u16, u16)]) -> PathAttributes {
        PathAttributes {
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        }
    }

    fn build() -> (UpdateArchive, Prefix) {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let k = SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap());
        let mut a = UpdateArchive::new(0);
        // Withdrawal phase (02:05): two unique attrs.
        a.record(
            &k,
            RouteUpdate::announce(2 * HOUR_US + 300_000_000, prefix, attrs(&[(3356, 2501)])),
        );
        a.record(
            &k,
            RouteUpdate::announce(2 * HOUR_US + 360_000_000, prefix, attrs(&[(3356, 2502)])),
        );
        // Announcement phase (00:01): one unique attr.
        a.record(&k, RouteUpdate::announce(60_000_000, prefix, attrs(&[(6939, 2600)])));
        // Outside (03:00): one unique attr.
        a.record(&k, RouteUpdate::announce(3 * HOUR_US, prefix, attrs(&[(174, 2700)])));
        // Ambiguous: appears in both withdrawal (06:05) and announcement
        // (04:02) phases.
        a.record(
            &k,
            RouteUpdate::announce(4 * HOUR_US + 120_000_000, prefix, attrs(&[(1299, 2800)])),
        );
        a.record(
            &k,
            RouteUpdate::announce(6 * HOUR_US + 300_000_000, prefix, attrs(&[(1299, 2800)])),
        );
        // Empty attribute: not counted.
        a.record(&k, RouteUpdate::announce(1, prefix, attrs(&[])));
        (a, prefix)
    }

    #[test]
    fn categorizes_attributes() {
        let (a, prefix) = build();
        let s = revealed_attributes(&a, &BeaconSchedule::default(), &[prefix]);
        assert_eq!(s.total, 5);
        assert_eq!(s.withdrawal_only, 2);
        assert_eq!(s.announcement_only, 1);
        assert_eq!(s.outside_only, 1);
        assert_eq!(s.ambiguous, 1);
        assert!((s.withdrawal_ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_archive_ratio_zero() {
        let a = UpdateArchive::new(0);
        let s = revealed_attributes(&a, &BeaconSchedule::default(), &[]);
        assert_eq!(s.total, 0);
        assert_eq!(s.withdrawal_ratio(), 0.0);
    }

    #[test]
    fn no_filter_means_all_prefixes() {
        let (a, _) = build();
        // Empty filter list: every prefix counts.
        let s = revealed_attributes(&a, &BeaconSchedule::default(), &[]);
        assert_eq!(s.total, 5);
    }

    #[test]
    fn same_set_spelled_differently_is_one_attribute() {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let k = SessionKey::new("rrc00", Asn(1), "10.0.0.1".parse().unwrap());
        let mut a = UpdateArchive::new(0);
        a.record(&k, RouteUpdate::announce(2 * HOUR_US + 1, prefix, attrs(&[(1, 1), (2, 2)])));
        a.record(
            &k,
            RouteUpdate::announce(
                2 * HOUR_US + 2,
                prefix,
                attrs(&[(2, 2), (1, 1)]), // same set, different insertion order
            ),
        );
        let s = revealed_attributes(&a, &BeaconSchedule::default(), &[prefix]);
        assert_eq!(s.total, 1);
        assert_eq!(s.withdrawal_only, 1);
    }
}
