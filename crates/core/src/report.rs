//! Plain-text and CSV rendering helpers for tables and figure data.

/// Formats a count the way the paper's tables do: large values in
/// millions (`1,008M`), mid-range with thousands separators.
pub fn fmt_count(n: u64) -> String {
    if n >= 100_000_000 {
        format!("{}M", group_thousands(n / 1_000_000))
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1_000_000.0)
    } else {
        group_thousands(n)
    }
}

/// Inserts `,` thousands separators.
pub fn group_thousands(n: u64) -> String {
    let s = n.to_string();
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Renders an aligned fixed-width text table. Empty header strings are
/// allowed (unlabeled columns).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len().max(rows.iter().map(|r| r.len()).max().unwrap_or(0));
    let mut widths = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = widths[i].max(h.len());
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    if headers.iter().any(|h| !h.is_empty()) {
        out.push_str(&fmt_row(headers.to_vec(), &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
    }
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Renders CSV (no quoting needed for our numeric/label content; commas
/// in cells are replaced with `;`).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.replace(',', ";")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(581), "581");
        assert_eq!(fmt_count(68_911), "68,911");
        assert_eq!(fmt_count(1_071_150), "1.1M");
        assert_eq!(fmt_count(737_000_000), "737M");
        assert_eq!(fmt_count(1_008_000_000), "1,008M");
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1_000), "1,000");
        assert_eq!(group_thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["type", "share"],
            &[vec!["pc".into(), "33.7%".into()], vec!["nn".into(), "25.7%".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].starts_with("type"));
        assert!(lines[2].starts_with("pc"));
    }

    #[test]
    fn headerless_table_has_no_rule() {
        let t = render_table(&["", ""], &[vec!["a".into(), "b".into()]]);
        assert_eq!(t.lines().count(), 1);
    }

    #[test]
    fn csv_replaces_commas() {
        let c = render_csv(&["a", "b"], &[vec!["1,5".into(), "x".into()]]);
        assert_eq!(c, "a,b\n1;5,x\n");
    }
}
