//! Per-session type distributions (paper §6, Fig. 3).
//!
//! Fig. 3 shows, for a single beacon prefix at one collector, how many
//! announcements of each type every BGP session observed — demonstrating
//! that "each session shows a diverse distribution of announcement
//! types, despite looking only at a single beacon prefix".

use std::collections::BTreeMap;

use kcc_bgp_types::Prefix;
use kcc_collector::SessionKey;

use crate::classify::{AnnouncementType, TypeCounts};
use crate::pipeline::{feed_classified, AnalysisSink, Merge};
use crate::report::render_table;
use crate::stream::{ClassifiedArchive, ClassifiedEvent, EventKind};

/// Accumulates per-session type counts for one prefix — Fig. 3 as a
/// streaming sink. State is one [`TypeCounts`] per session that touched
/// the prefix.
#[derive(Debug, Clone)]
pub struct SessionDistributionSink {
    prefix: Prefix,
    collector: Option<String>,
    per_session: BTreeMap<SessionKey, TypeCounts>,
}

impl SessionDistributionSink {
    /// A sink for `prefix`, optionally restricted to one collector.
    pub fn new(prefix: Prefix, collector: Option<&str>) -> Self {
        SessionDistributionSink {
            prefix,
            collector: collector.map(str::to_owned),
            per_session: BTreeMap::new(),
        }
    }

    /// The rows with announcements, sorted by announcement volume
    /// (descending) — the Fig. 3 x-axis order.
    pub fn finish(self) -> Vec<(SessionKey, TypeCounts)> {
        let mut rows: Vec<(SessionKey, TypeCounts)> =
            self.per_session.into_iter().filter(|(_, c)| c.announcement_total() > 0).collect();
        rows.sort_by(|a, b| {
            b.1.announcement_total().cmp(&a.1.announcement_total()).then_with(|| a.0.cmp(&b.0))
        });
        rows
    }
}

impl AnalysisSink for SessionDistributionSink {
    fn on_event(&mut self, key: &SessionKey, e: &ClassifiedEvent) {
        if e.prefix != self.prefix {
            return;
        }
        if let Some(c) = &self.collector {
            if key.collector != *c {
                return;
            }
        }
        let counts = self.per_session.entry(key.clone()).or_default();
        match &e.kind {
            EventKind::Classified { atype, .. } => counts.add(*atype),
            EventKind::Initial => counts.initial += 1,
            EventKind::Withdrawal => counts.withdrawals += 1,
        }
    }
}

impl Merge for SessionDistributionSink {
    fn merge(&mut self, other: Self) {
        // Sessions are disjoint across shards.
        self.per_session.extend(other.per_session);
    }
}

/// Per-session counts for one prefix, sorted by announcement volume
/// (descending) — the batch wrapper over [`SessionDistributionSink`].
pub fn session_type_distribution(
    classified: &ClassifiedArchive,
    prefix: &Prefix,
    collector: Option<&str>,
) -> Vec<(SessionKey, TypeCounts)> {
    let mut sink = SessionDistributionSink::new(*prefix, collector);
    feed_classified(classified, &mut sink);
    sink.finish()
}

/// Renders the distribution as a text table (one row per session).
pub fn render_distribution(rows: &[(SessionKey, TypeCounts)]) -> String {
    let headers = ["session", "total", "pc", "pn", "nc", "nn", "xc", "xn"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(key, c)| {
            vec![
                key.to_string(),
                c.announcement_total().to_string(),
                c.pc.to_string(),
                c.pn.to_string(),
                c.nc.to_string(),
                c.nn.to_string(),
                c.xc.to_string(),
                c.xn.to_string(),
            ]
        })
        .collect();
    render_table(&headers, &body)
}

/// Renders a Fig. 3-style stacked bar chart in ASCII: one column per
/// session, stack segments proportional to type counts.
pub fn render_stacked_bars(rows: &[(SessionKey, TypeCounts)], height: usize) -> String {
    if rows.is_empty() {
        return String::from("(no sessions)\n");
    }
    let max_total = rows.iter().map(|(_, c)| c.announcement_total()).max().unwrap_or(1).max(1);
    let glyph = |t: AnnouncementType| match t {
        AnnouncementType::Pc => 'P',
        AnnouncementType::Pn => 'p',
        AnnouncementType::Nc => 'C',
        AnnouncementType::Nn => 'n',
        AnnouncementType::Xc => 'X',
        AnnouncementType::Xn => 'x',
    };
    // Build each column bottom-up as a stack of glyphs.
    let mut columns: Vec<Vec<char>> = Vec::with_capacity(rows.len());
    for (_, c) in rows {
        let mut col = Vec::new();
        for t in AnnouncementType::ALL {
            let cells = (c.get(t) as usize * height).div_ceil(max_total as usize);
            for _ in 0..cells.min(height - col.len().min(height)) {
                col.push(glyph(t));
            }
        }
        col.truncate(height);
        columns.push(col);
    }
    let mut out = String::new();
    for level in (0..height).rev() {
        for col in &columns {
            out.push(col.get(level).copied().unwrap_or(' '));
        }
        out.push('\n');
    }
    out.push_str(&"-".repeat(columns.len()));
    out.push_str("\nlegend: P=pc p=pn C=nc n=nn X=xc x=xn; one column per session\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::classify_session;
    use kcc_bgp_types::{Asn, Community, CommunitySet, PathAttributes, RouteUpdate};

    fn attrs(path: &str, c: u16) -> PathAttributes {
        PathAttributes {
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic([Community::from_parts(3356, c)]),
            ..Default::default()
        }
    }

    fn build() -> (ClassifiedArchive, Prefix) {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let mut classified = ClassifiedArchive::default();
        // Session 1: 3 announcements (initial, nc, pc).
        let k1 = SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap());
        let updates1 = vec![
            RouteUpdate::announce(1, prefix, attrs("1 2", 2501)),
            RouteUpdate::announce(2, prefix, attrs("1 2", 2502)),
            RouteUpdate::announce(3, prefix, attrs("1 3", 2503)),
        ];
        classified.per_session.insert(k1.clone(), classify_session(&updates1));
        // Session 2: 1 announcement.
        let k2 = SessionKey::new("rrc00", Asn(20_811), "10.0.0.2".parse().unwrap());
        let updates2 = vec![RouteUpdate::announce(1, prefix, attrs("9 2", 2501))];
        classified.per_session.insert(k2.clone(), classify_session(&updates2));
        // Session at another collector.
        let k3 = SessionKey::new("rrc01", Asn(20_205), "10.0.0.3".parse().unwrap());
        let updates3 = vec![RouteUpdate::announce(1, prefix, attrs("5 2", 2501))];
        classified.per_session.insert(k3, classify_session(&updates3));
        (classified, prefix)
    }

    #[test]
    fn sorted_by_volume_and_filtered_by_collector() {
        let (classified, prefix) = build();
        let rows = session_type_distribution(&classified, &prefix, Some("rrc00"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0.peer_asn, Asn(20_205)); // busier session first
        assert_eq!(rows[0].1.announcement_total(), 3);
        assert_eq!(rows[0].1.nc, 1);
        assert_eq!(rows[0].1.pc, 1);
        assert_eq!(rows[1].1.announcement_total(), 1);
    }

    #[test]
    fn no_collector_filter_includes_all() {
        let (classified, prefix) = build();
        let rows = session_type_distribution(&classified, &prefix, None);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn other_prefixes_excluded() {
        let (classified, _) = build();
        let other: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(session_type_distribution(&classified, &other, None).is_empty());
    }

    #[test]
    fn table_renders() {
        let (classified, prefix) = build();
        let rows = session_type_distribution(&classified, &prefix, Some("rrc00"));
        let text = render_distribution(&rows);
        assert!(text.contains("rrc00:AS20205"));
        assert!(text.contains("nc"));
    }

    #[test]
    fn bars_render_with_fixed_height() {
        let (classified, prefix) = build();
        let rows = session_type_distribution(&classified, &prefix, None);
        let text = render_stacked_bars(&rows, 10);
        assert!(text.lines().count() >= 11);
        assert!(text.contains("legend"));
        assert_eq!(render_stacked_bars(&[], 5), "(no sessions)\n");
    }
}
