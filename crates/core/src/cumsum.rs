//! Cumulative update timelines (paper Figs. 4 and 5).
//!
//! Figures 4/5 plot the cumulative count of announcements over one day
//! for a single `(session, prefix)` stream, *restricted to one AS path*,
//! with vertical markers at withdrawal arrivals. Classification still
//! happens on the full stream (a `pc` label means "changed relative to
//! whatever was announced before", including other paths); the timeline
//! then keeps only announcements whose path matches the target.

use kcc_bgp_types::{AsPath, Prefix};
use kcc_collector::SessionKey;

use crate::classify::AnnouncementType;
use crate::pipeline::{feed_classified, AnalysisSink, Merge};
use crate::report::render_csv;
use crate::stream::{ClassifiedArchive, ClassifiedEvent, EventKind};

/// One plotted point.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Arrival time (µs).
    pub time_us: u64,
    /// Type label (`None` for the stream-initial announcement).
    pub atype: Option<AnnouncementType>,
    /// Cumulative announcement count including this point.
    pub cumulative: u64,
}

/// The Fig. 4/5 data series for one stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Announcements (filtered by path if requested), in order.
    pub points: Vec<TimelinePoint>,
    /// Withdrawal arrival times (the yellow vertical lines).
    pub withdrawals: Vec<u64>,
}

impl Timeline {
    /// Count of points with a given type.
    pub fn count_of(&self, t: AnnouncementType) -> u64 {
        self.points.iter().filter(|p| p.atype == Some(t)).count() as u64
    }

    /// Total announcements plotted.
    pub fn total(&self) -> u64 {
        self.points.len() as u64
    }

    /// Renders as CSV (`time_us,type,cumulative` plus withdrawal rows).
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<(u64, Vec<String>)> = Vec::new();
        for p in &self.points {
            rows.push((
                p.time_us,
                vec![
                    p.time_us.to_string(),
                    p.atype.map(|t| t.label().to_string()).unwrap_or_else(|| "init".into()),
                    p.cumulative.to_string(),
                ],
            ));
        }
        for &w in &self.withdrawals {
            rows.push((w, vec![w.to_string(), "W".into(), String::new()]));
        }
        rows.sort_by_key(|(t, _)| *t);
        let body: Vec<Vec<String>> = rows.into_iter().map(|(_, r)| r).collect();
        render_csv(&["time_us", "event", "cumsum"], &body)
    }
}

/// Builds the Fig. 4/5 timeline of one `(session, prefix)` stream
/// incrementally. Constant state beyond the retained plot points.
#[derive(Debug, Clone)]
pub struct TimelineSink {
    session: SessionKey,
    prefix: Prefix,
    path_filter: Option<AsPath>,
    timeline: Timeline,
}

impl TimelineSink {
    /// A sink for one stream, keeping only announcements whose AS path
    /// equals `path_filter` when given.
    pub fn new(session: SessionKey, prefix: Prefix, path_filter: Option<&AsPath>) -> Self {
        TimelineSink {
            session,
            prefix,
            path_filter: path_filter.cloned(),
            timeline: Timeline::default(),
        }
    }

    /// The accumulated timeline.
    pub fn finish(self) -> Timeline {
        self.timeline
    }
}

impl AnalysisSink for TimelineSink {
    fn on_event(&mut self, key: &SessionKey, e: &ClassifiedEvent) {
        if *key != self.session || e.prefix != self.prefix {
            return;
        }
        match &e.kind {
            EventKind::Withdrawal => self.timeline.withdrawals.push(e.time_us),
            EventKind::Classified { .. } | EventKind::Initial => {
                let attrs = e.attrs.as_ref().expect("announcement events carry attrs");
                if self.path_filter.as_ref().map(|p| attrs.as_path == *p).unwrap_or(true) {
                    self.timeline.points.push(TimelinePoint {
                        time_us: e.time_us,
                        atype: e.atype(),
                        cumulative: self.timeline.points.len() as u64 + 1,
                    });
                }
            }
        }
    }
}

impl Merge for TimelineSink {
    fn merge(&mut self, other: Self) {
        // The one watched stream lives on exactly one shard; every other
        // shard's sink stays empty.
        if self.timeline.points.is_empty() && self.timeline.withdrawals.is_empty() {
            self.timeline = other.timeline;
        }
    }
}

/// Extracts the timeline of one `(session, prefix)` stream — the batch
/// wrapper over [`TimelineSink`].
pub fn path_timeline(
    classified: &ClassifiedArchive,
    session: &SessionKey,
    prefix: &Prefix,
    path_filter: Option<&AsPath>,
) -> Timeline {
    let mut sink = TimelineSink::new(session.clone(), *prefix, path_filter);
    feed_classified(classified, &mut sink);
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::classify_session;
    use kcc_bgp_types::{Asn, Community, CommunitySet, PathAttributes, RouteUpdate};

    fn attrs(path: &str, c: u16) -> PathAttributes {
        PathAttributes {
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic([Community::from_parts(3356, c)]),
            ..Default::default()
        }
    }

    fn build() -> (ClassifiedArchive, SessionKey, Prefix) {
        let prefix: Prefix = "84.205.64.0/24".parse().unwrap();
        let key = SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap());
        let target = "20205 3356 174 12654";
        let best = "20205 6939 50304 12654";
        let updates = vec![
            RouteUpdate::announce(10, prefix, attrs(best, 1)), // initial (best path)
            RouteUpdate::announce(20, prefix, attrs(target, 2501)), // pc (to target)
            RouteUpdate::announce(30, prefix, attrs(target, 2502)), // nc
            RouteUpdate::announce(40, prefix, attrs(target, 2503)), // nc
            RouteUpdate::withdraw(50, prefix),
            RouteUpdate::announce(60, prefix, attrs(best, 1)), // pc (back to best)
        ];
        let mut classified = ClassifiedArchive::default();
        classified.per_session.insert(key.clone(), classify_session(&updates));
        (classified, key, prefix)
    }

    #[test]
    fn filtered_timeline_keeps_target_path_only() {
        let (classified, key, prefix) = build();
        let target: AsPath = "20205 3356 174 12654".parse().unwrap();
        let tl = path_timeline(&classified, &key, &prefix, Some(&target));
        assert_eq!(tl.total(), 3);
        assert_eq!(tl.count_of(AnnouncementType::Pc), 1);
        assert_eq!(tl.count_of(AnnouncementType::Nc), 2);
        assert_eq!(tl.withdrawals, vec![50]);
        // Cumulative counts rise 1..=3.
        let cums: Vec<u64> = tl.points.iter().map(|p| p.cumulative).collect();
        assert_eq!(cums, vec![1, 2, 3]);
    }

    #[test]
    fn unfiltered_timeline_has_everything() {
        let (classified, key, prefix) = build();
        let tl = path_timeline(&classified, &key, &prefix, None);
        assert_eq!(tl.total(), 5); // all announcements
        assert_eq!(tl.points[0].atype, None); // initial
    }

    #[test]
    fn missing_session_is_empty() {
        let (classified, _, prefix) = build();
        let other = SessionKey::new("rrc99", Asn(1), "10.0.0.9".parse().unwrap());
        let tl = path_timeline(&classified, &other, &prefix, None);
        assert_eq!(tl.total(), 0);
        assert!(tl.withdrawals.is_empty());
    }

    #[test]
    fn csv_interleaves_withdrawals() {
        let (classified, key, prefix) = build();
        let tl = path_timeline(&classified, &key, &prefix, None);
        let csv = tl.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_us,event,cumsum");
        assert!(lines.iter().any(|l| l.contains(",W,")));
        // The withdrawal at t=50 appears between t=40 and t=60.
        let w_pos = lines.iter().position(|l| l.starts_with("50,")).unwrap();
        let before = lines.iter().position(|l| l.starts_with("40,")).unwrap();
        let after = lines.iter().position(|l| l.starts_with("60,")).unwrap();
        assert!(before < w_pos && w_pos < after);
    }
}
