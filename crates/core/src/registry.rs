//! Synthetic RIR allocation registry.
//!
//! The paper's cleaning step uses "current and historical allocation
//! information from the regional registries" to drop messages carrying
//! ASNs or prefixes that were unallocated *at the time of the message*.
//! Real delegation files are not redistributable at repo scale, so this
//! registry reproduces their semantics: time-stamped ASN and prefix-block
//! allocations, plus the structural reservations (private/documentation/
//! reserved ranges) that are never allocatable.

use kcc_bgp_types::{Asn, FastHashMap, Prefix, PrefixMap};

/// A registry of allocations with epochs (µs since archive time zero, the
/// same clock updates use; historical allocations are simply epoch 0).
///
/// Blocks live in a [`PrefixMap`] keyed by the block prefix with the
/// earliest allocation epoch as the value, so the per-update
/// `prefix_allocated` probe is one covering-chain walk instead of a
/// linear scan over every registered block.
#[derive(Debug, Clone, Default)]
pub struct AllocationRegistry {
    asns: FastHashMap<Asn, u64>,
    blocks: PrefixMap<u64>,
}

impl AllocationRegistry {
    /// An empty registry (everything unallocated).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an ASN as allocated from `from_us` on. Structurally
    /// reserved ASNs are refused (returns false).
    pub fn register_asn(&mut self, asn: Asn, from_us: u64) -> bool {
        if !asn.is_allocatable() {
            return false;
        }
        let entry = self.asns.entry(asn).or_insert(from_us);
        *entry = (*entry).min(from_us);
        true
    }

    /// Registers a prefix block as allocated from `from_us`; any prefix
    /// contained in the block counts as allocated. Re-registering a
    /// block keeps its earliest epoch.
    pub fn register_block(&mut self, block: Prefix, from_us: u64) {
        match self.blocks.get_mut(&block) {
            Some(epoch) => *epoch = (*epoch).min(from_us),
            None => {
                self.blocks.insert(block, from_us);
            }
        }
    }

    /// True if `asn` was allocated at time `at_us`.
    pub fn asn_allocated(&self, asn: Asn, at_us: u64) -> bool {
        self.asns.get(&asn).map(|&from| from <= at_us).unwrap_or(false)
    }

    /// True if `prefix` falls inside a block allocated at time `at_us`.
    /// Walks only the stored blocks covering `prefix` — a root-to-leaf
    /// trie descent, independent of how many blocks are registered.
    pub fn prefix_allocated(&self, prefix: &Prefix, at_us: u64) -> bool {
        self.blocks.covering(prefix).any(|&from| from <= at_us)
    }

    /// Number of registered ASNs.
    pub fn asn_count(&self) -> usize {
        self.asns.len()
    }

    /// Number of distinct registered blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Builds a registry covering an entire topology: every AS and every
    /// originated prefix is allocated from time 0 — plus the beacon /
    /// collector infrastructure ASNs.
    pub fn for_topology(topo: &kcc_topology::Topology) -> Self {
        let mut r = Self::new();
        for node in topo.nodes() {
            r.register_asn(node.asn, 0);
            for p in &node.prefixes {
                r.register_block(*p, 0);
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn asn_allocation_with_epoch() {
        let mut r = AllocationRegistry::new();
        assert!(r.register_asn(Asn(3356), 1_000));
        assert!(!r.asn_allocated(Asn(3356), 999));
        assert!(r.asn_allocated(Asn(3356), 1_000));
        assert!(r.asn_allocated(Asn(3356), 5_000));
        assert!(!r.asn_allocated(Asn(174), 5_000));
    }

    #[test]
    fn reserved_asns_refused() {
        let mut r = AllocationRegistry::new();
        assert!(!r.register_asn(Asn(0), 0));
        assert!(!r.register_asn(Asn(23_456), 0)); // AS_TRANS
        assert!(!r.register_asn(Asn(64_512), 0)); // private
        assert!(!r.register_asn(Asn(64_500), 0)); // documentation
        assert_eq!(r.asn_count(), 0);
    }

    #[test]
    fn earliest_epoch_wins() {
        let mut r = AllocationRegistry::new();
        r.register_asn(Asn(3356), 5_000);
        r.register_asn(Asn(3356), 1_000);
        assert!(r.asn_allocated(Asn(3356), 2_000));
        assert_eq!(r.asn_count(), 1);
    }

    #[test]
    fn prefix_containment() {
        let mut r = AllocationRegistry::new();
        r.register_block(p("84.205.0.0/16"), 100);
        assert!(r.prefix_allocated(&p("84.205.64.0/24"), 100));
        assert!(!r.prefix_allocated(&p("84.205.64.0/24"), 99));
        assert!(!r.prefix_allocated(&p("84.206.0.0/24"), 100));
        assert!(r.prefix_allocated(&p("84.205.0.0/16"), 100)); // block itself
    }

    #[test]
    fn nested_blocks_with_different_epochs() {
        // A /16 allocated early and a nested /24 allocated later: the
        // /24's prefixes must count as allocated from the *earlier* /16
        // epoch, because any covering block suffices.
        let mut r = AllocationRegistry::new();
        r.register_block(p("84.205.0.0/16"), 100);
        r.register_block(p("84.205.64.0/24"), 500);
        assert!(r.prefix_allocated(&p("84.205.64.0/24"), 100));
        assert!(r.prefix_allocated(&p("84.205.64.0/25"), 100));
        assert!(!r.prefix_allocated(&p("84.205.64.0/24"), 99));
        assert_eq!(r.block_count(), 2);
        // Re-registering the same block keeps the earliest epoch.
        r.register_block(p("84.205.0.0/16"), 900);
        assert!(r.prefix_allocated(&p("84.205.1.0/24"), 100));
        assert_eq!(r.block_count(), 2);
    }

    #[test]
    fn v6_blocks() {
        let mut r = AllocationRegistry::new();
        r.register_block(p("2001:db8::/32"), 0);
        assert!(r.prefix_allocated(&p("2001:db8:42::/48"), 0));
        assert!(!r.prefix_allocated(&p("2001:db9::/48"), 0));
    }

    #[test]
    fn topology_registry_covers_everything() {
        let topo = kcc_topology::generate(&kcc_topology::TopologyConfig {
            n_tier1: 2,
            n_transit: 3,
            n_stub: 4,
            ..Default::default()
        });
        let r = AllocationRegistry::for_topology(&topo);
        for node in topo.nodes() {
            assert!(r.asn_allocated(node.asn, 0), "AS {} missing", node.asn);
            for prefix in &node.prefixes {
                assert!(r.prefix_allocated(prefix, 0), "prefix {prefix} missing");
            }
        }
    }
}
