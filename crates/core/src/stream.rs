//! Stream grouping and whole-archive classification.
//!
//! Paper §5: "we first group them by the prefix and the BGP session of a
//! peer AS / next-hop, in arriving order. Then, we look for changes in the
//! AS path, AS path prepending, and the community attribute from one
//! announcement to the next." Withdrawals do not reset the comparison —
//! the paper's Fig. 4 labels the first re-announcement after a withdrawal
//! against the last announcement before it.

use std::collections::{BTreeMap, HashSet};
use std::mem::size_of;
use std::sync::Arc;

use kcc_bgp_types::{AttrStore, MessageKind, PathAttributes, Prefix, PrefixMap, RouteUpdate};
use kcc_collector::{ArchiveSource, PeerMeta, SessionKey, UpdateArchive};

use crate::classify::{classify_pair, AnnouncementType, TypeCounts};
use crate::pipeline::{run_pipeline, AnalysisSink, Merge};

/// What one stream event was classified as.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A classified announcement.
    Classified {
        /// The announcement type.
        atype: AnnouncementType,
        /// True when the only wire-level difference was the MED.
        med_only: bool,
    },
    /// First announcement of its `(prefix, session)` stream.
    Initial,
    /// A withdrawal.
    Withdrawal,
}

/// One classified event in a session's stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedEvent {
    /// Arrival time (µs).
    pub time_us: u64,
    /// The prefix.
    pub prefix: Prefix,
    /// Classification.
    pub kind: EventKind,
    /// The announcement's attributes (withdrawals: `None`), shared with
    /// the classifier's interned state — retaining an event costs a
    /// pointer, not a deep copy.
    pub attrs: Option<Arc<PathAttributes>>,
}

impl ClassifiedEvent {
    /// The announcement type, if classified.
    pub fn atype(&self) -> Option<AnnouncementType> {
        match &self.kind {
            EventKind::Classified { atype, .. } => Some(*atype),
            _ => None,
        }
    }
}

/// The result of classifying a whole archive.
#[derive(Debug, Clone, Default)]
pub struct ClassifiedArchive {
    /// Per-session event streams, in arrival order.
    pub per_session: BTreeMap<SessionKey, Vec<ClassifiedEvent>>,
    /// Aggregate counts.
    pub counts: TypeCounts,
}

impl ClassifiedArchive {
    /// Aggregate counts for one session.
    pub fn session_counts(&self, key: &SessionKey) -> TypeCounts {
        let mut c = TypeCounts::default();
        if let Some(events) = self.per_session.get(key) {
            accumulate(&mut c, events);
        }
        c
    }

    /// Aggregate counts for one `(session, prefix)` stream.
    pub fn stream_counts(&self, key: &SessionKey, prefix: &Prefix) -> TypeCounts {
        let mut c = TypeCounts::default();
        if let Some(events) = self.per_session.get(key) {
            accumulate(&mut c, events.iter().filter(|e| e.prefix == *prefix));
        }
        c
    }

    /// Aggregate counts over all sessions, restricted to events whose
    /// prefix satisfies the predicate (e.g. excluding beacon prefixes).
    pub fn counts_filtered<F: Fn(&Prefix) -> bool>(&self, keep: F) -> TypeCounts {
        let mut c = TypeCounts::default();
        for events in self.per_session.values() {
            accumulate(&mut c, events.iter().filter(|e| keep(&e.prefix)));
        }
        c
    }
}

fn accumulate<'a, I: IntoIterator<Item = &'a ClassifiedEvent>>(c: &mut TypeCounts, events: I) {
    for e in events {
        match &e.kind {
            EventKind::Classified { atype, med_only } => {
                c.add(*atype);
                if *atype == AnnouncementType::Nn && *med_only {
                    c.nn_med_only += 1;
                }
            }
            EventKind::Initial => c.initial += 1,
            EventKind::Withdrawal => c.withdrawals += 1,
        }
    }
}

/// Fixed per-stream cost beyond the (shared) attributes: the trie slot's
/// key and its `Arc` handle.
const PER_STREAM_OVERHEAD: usize = size_of::<Prefix>() + size_of::<Arc<PathAttributes>>();

/// The incremental §5 classifier for one session: retains exactly one
/// (interned, shared) [`PathAttributes`] per `(prefix)` stream — constant
/// memory per stream no matter how long the day — and labels each update
/// against it. The stream table is a prefix trie, so lookups walk bits
/// instead of hashing a 20-byte key and iteration is in canonical prefix
/// order for free.
#[derive(Debug, Default)]
pub struct StreamClassifier {
    last: PrefixMap<Arc<PathAttributes>>,
    store: AttrStore,
}

impl StreamClassifier {
    /// A fresh classifier with no stream state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of streams with retained state.
    pub fn stream_count(&self) -> usize {
        self.last.len()
    }

    /// Exact bytes of retained state: the deep footprint of each
    /// *distinct* attribute set (struct + AS-path segments + all three
    /// community families, at allocated capacity) counted once, plus a
    /// fixed per-stream slot overhead.
    pub fn state_bytes(&self) -> usize {
        self.store.bytes() + self.last.len() * PER_STREAM_OVERHEAD
    }

    /// Recomputes [`state_bytes`](Self::state_bytes) from scratch by
    /// walking every stream slot and deduplicating shared attribute sets
    /// by pointer. The incremental account must always equal this — the
    /// invariant the property tests pin.
    pub fn audit_state_bytes(&self) -> usize {
        let mut seen: HashSet<*const PathAttributes> = HashSet::new();
        let mut bytes = 0;
        for a in self.last.values() {
            if seen.insert(Arc::as_ptr(a)) {
                bytes += a.deep_footprint();
            }
        }
        bytes + self.last.len() * PER_STREAM_OVERHEAD
    }

    /// Classifies one update against its stream predecessor and retains
    /// the new state.
    pub fn classify(&mut self, u: &RouteUpdate) -> ClassifiedEvent {
        match &u.kind {
            MessageKind::Announcement(attrs) => {
                let (kind, retained) = match self.last.get_mut(&u.prefix) {
                    Some(prev) if Arc::ptr_eq(prev, attrs) => {
                        // Same shared allocation — byte-identical attrs,
                        // so this is `nn` with no MED change, and the
                        // retained state doesn't move.
                        let kind =
                            EventKind::Classified { atype: AnnouncementType::Nn, med_only: false };
                        (kind, Arc::clone(prev))
                    }
                    Some(prev) if **prev == **attrs => {
                        // Value-equal but a different allocation (e.g. a
                        // re-decoded duplicate): keep the interned copy —
                        // the store never sees the new handle, so no
                        // hash traffic and no refcount churn.
                        let kind =
                            EventKind::Classified { atype: AnnouncementType::Nn, med_only: false };
                        (kind, Arc::clone(prev))
                    }
                    Some(prev) => {
                        let kind = EventKind::Classified {
                            atype: classify_pair(prev, attrs),
                            med_only: prev.differs_only_in_med(attrs),
                        };
                        let shared = self.store.acquire(attrs);
                        let old = std::mem::replace(prev, Arc::clone(&shared));
                        self.store.release(&old);
                        (kind, shared)
                    }
                    None => {
                        let shared = self.store.acquire(attrs);
                        self.last.insert(u.prefix, Arc::clone(&shared));
                        (EventKind::Initial, shared)
                    }
                };
                ClassifiedEvent {
                    time_us: u.time_us,
                    prefix: u.prefix,
                    kind,
                    attrs: Some(retained),
                }
            }
            MessageKind::Withdrawal => {
                // Withdrawals are recorded but do NOT reset the state: the
                // next announcement is compared against the pre-withdrawal
                // attributes, as in the paper's Fig. 4 (each phase "starts
                // with a pc update").
                ClassifiedEvent {
                    time_us: u.time_us,
                    prefix: u.prefix,
                    kind: EventKind::Withdrawal,
                    attrs: None,
                }
            }
        }
    }
}

/// Classifies one session's update stream — a fold over
/// [`StreamClassifier`].
pub fn classify_session(updates: &[RouteUpdate]) -> Vec<ClassifiedEvent> {
    let mut classifier = StreamClassifier::new();
    updates.iter().map(|u| classifier.classify(u)).collect()
}

/// Collects the full per-session classification — what
/// [`classify_archive`] returns, as a streaming sink. Prefer aggregate
/// sinks ([`CountsSink`] and friends) at scale: this one materializes
/// every event.
#[derive(Debug, Clone, Default)]
pub struct ClassifiedArchiveSink {
    result: ClassifiedArchive,
}

impl ClassifiedArchiveSink {
    /// The collected classification.
    pub fn finish(self) -> ClassifiedArchive {
        self.result
    }
}

impl AnalysisSink for ClassifiedArchiveSink {
    fn on_session(&mut self, meta: &PeerMeta) {
        self.result.per_session.entry(meta.key.clone()).or_default();
    }

    fn on_event(&mut self, session: &SessionKey, event: &ClassifiedEvent) {
        accumulate(&mut self.result.counts, std::iter::once(event));
        self.result.per_session.entry(session.clone()).or_default().push(event.clone());
    }
}

impl Merge for ClassifiedArchiveSink {
    fn merge(&mut self, other: Self) {
        // Sessions are disjoint across shards; counts add.
        self.result.counts.merge(&other.result.counts);
        for (key, mut events) in other.result.per_session {
            self.result.per_session.entry(key).or_default().append(&mut events);
        }
    }
}

/// Aggregate [`TypeCounts`] over every classified event — the Table 2
/// numbers as a constant-size sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountsSink {
    counts: TypeCounts,
}

impl CountsSink {
    /// The accumulated counts.
    pub fn finish(self) -> TypeCounts {
        self.counts
    }
}

impl AnalysisSink for CountsSink {
    fn on_event(&mut self, _session: &SessionKey, event: &ClassifiedEvent) {
        accumulate(&mut self.counts, std::iter::once(event));
    }
}

impl Merge for CountsSink {
    fn merge(&mut self, other: Self) {
        self.counts.merge(&other.counts);
    }
}

/// Classifies a whole archive — the batch wrapper over the streaming
/// pipeline ([`ArchiveSource`] → [`ClassifiedArchiveSink`]).
pub fn classify_archive(archive: &UpdateArchive) -> ClassifiedArchive {
    run_pipeline(ArchiveSource::new(archive), (), ClassifiedArchiveSink::default())
        .expect("archive sources cannot fail")
        .sink
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, Community, CommunitySet};

    fn attrs(path: &str, comms: &[(u16, u16)]) -> PathAttributes {
        PathAttributes {
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        }
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn initial_then_types() {
        let prefix = p("84.205.64.0/24");
        let updates = vec![
            RouteUpdate::announce(1, prefix, attrs("1 2", &[(1, 1)])),
            RouteUpdate::announce(2, prefix, attrs("1 2", &[(1, 2)])), // nc
            RouteUpdate::announce(3, prefix, attrs("1 3", &[(1, 2)])), // pn
            RouteUpdate::announce(4, prefix, attrs("1 3", &[(1, 2)])), // nn
        ];
        let events = classify_session(&updates);
        assert_eq!(events[0].kind, EventKind::Initial);
        assert_eq!(events[1].atype(), Some(AnnouncementType::Nc));
        assert_eq!(events[2].atype(), Some(AnnouncementType::Pn));
        assert_eq!(events[3].atype(), Some(AnnouncementType::Nn));
    }

    #[test]
    fn withdrawal_does_not_reset_comparison() {
        let prefix = p("84.205.64.0/24");
        let updates = vec![
            RouteUpdate::announce(1, prefix, attrs("1 2", &[(1, 1)])),
            RouteUpdate::withdraw(2, prefix),
            // Re-announcement with the same attrs: nn, not initial.
            RouteUpdate::announce(3, prefix, attrs("1 2", &[(1, 1)])),
            // And with a different path: pn.
            RouteUpdate::withdraw(4, prefix),
            RouteUpdate::announce(5, prefix, attrs("1 3", &[(1, 1)])),
        ];
        let events = classify_session(&updates);
        assert_eq!(events[2].atype(), Some(AnnouncementType::Nn));
        assert_eq!(events[4].atype(), Some(AnnouncementType::Pn));
    }

    #[test]
    fn prefixes_tracked_independently() {
        let p1 = p("84.205.64.0/24");
        let p2 = p("84.205.65.0/24");
        let updates = vec![
            RouteUpdate::announce(1, p1, attrs("1 2", &[])),
            RouteUpdate::announce(2, p2, attrs("9 8", &[])),
            RouteUpdate::announce(3, p1, attrs("1 2", &[])), // nn on p1
            RouteUpdate::announce(4, p2, attrs("9 7", &[])), // pn on p2
        ];
        let events = classify_session(&updates);
        assert_eq!(events[0].kind, EventKind::Initial);
        assert_eq!(events[1].kind, EventKind::Initial);
        assert_eq!(events[2].atype(), Some(AnnouncementType::Nn));
        assert_eq!(events[3].atype(), Some(AnnouncementType::Pn));
    }

    #[test]
    fn med_only_flag_set() {
        let prefix = p("84.205.64.0/24");
        let a1 = attrs("1 2", &[]);
        let mut a2 = a1.clone();
        a2.med = Some(7);
        let updates =
            vec![RouteUpdate::announce(1, prefix, a1), RouteUpdate::announce(2, prefix, a2)];
        let events = classify_session(&updates);
        assert_eq!(
            events[1].kind,
            EventKind::Classified { atype: AnnouncementType::Nn, med_only: true }
        );
    }

    #[test]
    fn archive_classification_aggregates() {
        let mut archive = UpdateArchive::new(0);
        let k1 = SessionKey::new("rrc00", Asn(20_205), "10.0.0.1".parse().unwrap());
        let k2 = SessionKey::new("rrc00", Asn(20_811), "10.0.0.2".parse().unwrap());
        let prefix = p("84.205.64.0/24");
        archive.record(&k1, RouteUpdate::announce(1, prefix, attrs("1 2", &[(1, 1)])));
        archive.record(&k1, RouteUpdate::announce(2, prefix, attrs("1 2", &[(1, 2)])));
        archive.record(&k2, RouteUpdate::announce(1, prefix, attrs("5 2", &[])));
        archive.record(&k2, RouteUpdate::withdraw(2, prefix));

        let c = classify_archive(&archive);
        assert_eq!(c.counts.initial, 2);
        assert_eq!(c.counts.nc, 1);
        assert_eq!(c.counts.withdrawals, 1);
        assert_eq!(c.session_counts(&k1).nc, 1);
        assert_eq!(c.session_counts(&k2).withdrawals, 1);
        assert_eq!(c.stream_counts(&k1, &prefix).nc, 1);
    }
}
