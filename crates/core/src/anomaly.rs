//! Anomalous-community detection (the paper's §7 closing direction).
//!
//! "We believe that communities can enrich our understanding of anomalous
//! behavior in the routing system beyond existing approaches. By
//! characterizing the way individual ASes observe and process
//! communities, our work provides a first step toward predicting
//! anomalous communities."
//!
//! The detector learns a per-AS *community profile* from a training
//! window — which values each 16-bit namespace uses, how many distinct
//! attributes a stream shows — then flags deviations in a detection
//! window as typed [`Alert`]s:
//!
//! * [`AlertKind::NovelCommunity`]: a community value never seen in a
//!   namespace that was otherwise stable (fat-fingered or injected tags;
//!   the attack vector of Streibelt et al.),
//! * [`AlertKind::BlackholeInjection`]: a well-known action community
//!   (BLACKHOLE, GRACEFUL_SHUTDOWN …) appearing on a stream that never
//!   carried one,
//! * [`AlertKind::BaselineShift`] over
//!   [`ShiftMetric::DistinctAttrs`](crate::alert::ShiftMetric::DistinctAttrs):
//!   a stream revealing many more distinct community attributes per phase
//!   than its training baseline (an exploration burst).
//!
//! The online service in [`watch`](crate::watch) runs the same checks
//! over sliding windows; with a whole-day window its output is
//! byte-equal to [`CommunityProfiler::detect`].

use std::collections::{BTreeMap, HashMap, HashSet};

#[cfg(test)]
use kcc_bgp_types::Asn;
use kcc_bgp_types::{MessageKind, Prefix, RouteUpdate};
use kcc_collector::{ArchiveSource, SessionKey, UpdateArchive};

use crate::alert::{sort_alerts, Alert, AlertKind, ShiftMetric};
use crate::pipeline::{run_pipeline, AnalysisSink, Merge};

/// Learned profiles.
#[derive(Debug, Clone, Default)]
pub struct CommunityProfiler {
    /// Per 16-bit namespace: the set of values seen in training.
    namespace_values: BTreeMap<u16, HashSet<u16>>,
    /// Per stream: whether any well-known action community was seen.
    stream_has_action: HashMap<(SessionKey, Prefix), bool>,
    /// Per stream: distinct community attributes seen in training.
    stream_attr_count: HashMap<(SessionKey, Prefix), usize>,
    trained: bool,
}

/// Detection tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Only flag novel values in namespaces with at least this many
    /// trained values (tiny namespaces produce false alarms).
    pub min_namespace_size: usize,
    /// Exploration burst factor: observed > factor × baseline.
    pub burst_factor: usize,
    /// Minimum observed distinct attributes before a burst can fire.
    pub burst_min_observed: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig { min_namespace_size: 4, burst_factor: 4, burst_min_observed: 8 }
    }
}

impl CommunityProfiler {
    /// A fresh, untrained profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once `train` has run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Number of learned namespaces.
    pub fn namespace_count(&self) -> usize {
        self.namespace_values.len()
    }

    /// The trained value set for a 16-bit namespace, if any.
    pub(crate) fn namespace(&self, asn_part: u16) -> Option<&HashSet<u16>> {
        self.namespace_values.get(&asn_part)
    }

    /// Whether a stream carried a well-known action community in training.
    pub(crate) fn stream_trained_action(&self, stream: &(SessionKey, Prefix)) -> bool {
        self.stream_has_action.get(stream).copied().unwrap_or(false)
    }

    /// A stream's distinct-attribute training baseline (≥ 1: unseen
    /// streams get the most conservative baseline).
    pub(crate) fn stream_baseline(&self, stream: &(SessionKey, Prefix)) -> usize {
        self.stream_attr_count.get(stream).copied().unwrap_or(1).max(1)
    }

    /// Learns profiles from a training archive (e.g. yesterday's data).
    pub fn train(&mut self, archive: &UpdateArchive) {
        for (key, rec) in archive.sessions() {
            let mut per_stream_attrs: HashMap<Prefix, HashSet<String>> = HashMap::new();
            for u in &rec.updates {
                let MessageKind::Announcement(attrs) = &u.kind else { continue };
                let stream = (key.clone(), u.prefix);
                for c in attrs.communities.iter_classic() {
                    self.namespace_values.entry(c.asn_part()).or_default().insert(c.value_part());
                    if c.well_known_name().is_some() {
                        self.stream_has_action.insert(stream.clone(), true);
                    }
                }
                self.stream_has_action.entry(stream).or_insert(false);
                per_stream_attrs
                    .entry(u.prefix)
                    .or_default()
                    .insert(attrs.communities.canonical_key());
            }
            for (prefix, attrs) in per_stream_attrs {
                let e = self.stream_attr_count.entry((key.clone(), prefix)).or_insert(0);
                *e = (*e).max(attrs.len());
            }
        }
        self.trained = true;
    }

    /// Flags anomalies in a detection archive against the trained
    /// profiles — the batch wrapper over [`AnomalySink`].
    pub fn detect(&self, archive: &UpdateArchive, cfg: &AnomalyConfig) -> Vec<Alert> {
        run_pipeline(ArchiveSource::new(archive), (), AnomalySink::new(self, *cfg))
            .expect("archive sources cannot fail")
            .sink
            .finish()
    }
}

/// The point checks shared by the batch sink and the online watch
/// service: novel namespace values and injected action communities on
/// one announcement. Appends any alerts to `out`.
pub(crate) fn point_checks(
    profiler: &CommunityProfiler,
    cfg: &AnomalyConfig,
    key: &SessionKey,
    u: &RouteUpdate,
    out: &mut Vec<Alert>,
) {
    let MessageKind::Announcement(attrs) = &u.kind else { return };
    let stream = (key.clone(), u.prefix);
    for c in attrs.communities.iter_classic() {
        if let Some(name) = c.well_known_name() {
            if !profiler.stream_trained_action(&stream) {
                out.push(Alert::new(
                    u.time_us,
                    Some(key.clone()),
                    Some(u.prefix),
                    AlertKind::BlackholeInjection { community: *c, name },
                ));
            }
            continue;
        }
        if let Some(values) = profiler.namespace(c.asn_part()) {
            if values.len() >= cfg.min_namespace_size && !values.contains(&c.value_part()) {
                out.push(Alert::new(
                    u.time_us,
                    Some(key.clone()),
                    Some(u.prefix),
                    AlertKind::NovelCommunity { community: *c },
                ));
            }
        }
    }
}

/// The exploration-burst check shared by the batch sink and the online
/// watch service: a stream's distinct-attribute count against its
/// training baseline. Returns the alert if the burst fires.
pub(crate) fn burst_check(
    profiler: &CommunityProfiler,
    cfg: &AnomalyConfig,
    stream: &(SessionKey, Prefix),
    observed: usize,
    first_seen_us: u64,
) -> Option<Alert> {
    let baseline = profiler.stream_baseline(stream);
    if observed >= cfg.burst_min_observed && observed > cfg.burst_factor * baseline {
        Some(Alert::new(
            first_seen_us,
            Some(stream.0.clone()),
            Some(stream.1),
            AlertKind::BaselineShift {
                metric: ShiftMetric::DistinctAttrs,
                community: None,
                observed: observed as u64,
                baseline: baseline as u64,
            },
        ))
    } else {
        None
    }
}

/// Streaming anomaly detection against a trained profiler. Per-stream
/// state is the set of distinct community attributes seen (for the burst
/// check) — bounded by attribute diversity, not update volume.
#[derive(Debug)]
pub struct AnomalySink<'a> {
    profiler: &'a CommunityProfiler,
    cfg: AnomalyConfig,
    alerts: Vec<Alert>,
    per_stream_attrs: HashMap<(SessionKey, Prefix), HashSet<String>>,
    first_seen: HashMap<(SessionKey, Prefix), u64>,
}

impl<'a> AnomalySink<'a> {
    /// A detection sink over a trained profiler.
    ///
    /// # Panics
    /// If the profiler was never trained.
    pub fn new(profiler: &'a CommunityProfiler, cfg: AnomalyConfig) -> Self {
        assert!(profiler.trained, "profiler must be trained before detection");
        AnomalySink {
            profiler,
            cfg,
            alerts: Vec::new(),
            per_stream_attrs: HashMap::new(),
            first_seen: HashMap::new(),
        }
    }

    /// All alerts (point anomalies plus exploration bursts), in the
    /// canonical order.
    pub fn finish(self) -> Vec<Alert> {
        let mut alerts = self.alerts;
        for (stream, attrs) in &self.per_stream_attrs {
            let first = self.first_seen.get(stream).copied().unwrap_or(0);
            alerts.extend(burst_check(self.profiler, &self.cfg, stream, attrs.len(), first));
        }
        sort_alerts(&mut alerts);
        alerts
    }
}

impl AnalysisSink for AnomalySink<'_> {
    fn on_update(&mut self, key: &SessionKey, u: &RouteUpdate) {
        let MessageKind::Announcement(attrs) = &u.kind else { return };
        point_checks(self.profiler, &self.cfg, key, u, &mut self.alerts);
        let stream = (key.clone(), u.prefix);
        self.per_stream_attrs
            .entry(stream.clone())
            .or_default()
            .insert(attrs.communities.canonical_key());
        self.first_seen.entry(stream).or_insert(u.time_us);
    }

    fn wants_events(&self) -> bool {
        false
    }
}

impl Merge for AnomalySink<'_> {
    fn merge(&mut self, mut other: Self) {
        self.alerts.append(&mut other.alerts);
        // Streams are keyed by session: disjoint across shards.
        self.per_stream_attrs.extend(other.per_stream_attrs);
        self.first_seen.extend(other.first_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::community::well_known::BLACKHOLE;
    use kcc_bgp_types::{Community, CommunitySet, PathAttributes};

    fn key() -> SessionKey {
        SessionKey::new("rrc00", Asn(100), "10.0.0.1".parse().unwrap())
    }

    fn prefix() -> Prefix {
        "84.205.64.0/24".parse().unwrap()
    }

    fn announce(t: u64, comms: &[(u16, u16)]) -> kcc_bgp_types::RouteUpdate {
        let attrs = PathAttributes {
            as_path: "100 200 900".parse().unwrap(),
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        };
        kcc_bgp_types::RouteUpdate::announce(t, prefix(), attrs)
    }

    fn training_archive() -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        for v in 0..6u16 {
            a.record(&key(), announce(v as u64, &[(200, 2500 + v)]));
        }
        a
    }

    #[test]
    fn novel_value_flagged() {
        let mut p = CommunityProfiler::new();
        p.train(&training_archive());
        let mut test = UpdateArchive::new(0);
        test.record(&key(), announce(100, &[(200, 2505)])); // trained value
        test.record(&key(), announce(101, &[(200, 7777)])); // novel
        let found = p.detect(&test, &AnomalyConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].kind,
            AlertKind::NovelCommunity { community: Community::from_parts(200, 7777) }
        );
        assert_eq!(found[0].session.as_ref(), Some(&key()));
        assert_eq!(found[0].prefix, Some(prefix()));
    }

    #[test]
    fn small_namespaces_not_flagged() {
        // Namespace 300 has only 1 trained value: too small to judge.
        let mut a = training_archive();
        a.record(&key(), announce(50, &[(300, 1)]));
        let mut p = CommunityProfiler::new();
        p.train(&a);
        let mut test = UpdateArchive::new(0);
        test.record(&key(), announce(100, &[(300, 99)]));
        assert!(p.detect(&test, &AnomalyConfig::default()).is_empty());
    }

    #[test]
    fn blackhole_on_clean_stream_flagged() {
        let mut p = CommunityProfiler::new();
        p.train(&training_archive());
        let mut test = UpdateArchive::new(0);
        test.record(&key(), announce(100, &[(BLACKHOLE.asn_part(), BLACKHOLE.value_part())]));
        let found = p.detect(&test, &AnomalyConfig::default());
        assert_eq!(found.len(), 1);
        assert!(matches!(found[0].kind, AlertKind::BlackholeInjection { name: "BLACKHOLE", .. }));
        assert_eq!(found[0].severity, crate::alert::Severity::Critical);
    }

    #[test]
    fn trained_action_stream_not_flagged() {
        // A stream that already used blackholing in training is normal.
        let mut a = training_archive();
        a.record(&key(), announce(10, &[(BLACKHOLE.asn_part(), BLACKHOLE.value_part())]));
        let mut p = CommunityProfiler::new();
        p.train(&a);
        let mut test = UpdateArchive::new(0);
        test.record(&key(), announce(100, &[(BLACKHOLE.asn_part(), BLACKHOLE.value_part())]));
        assert!(p.detect(&test, &AnomalyConfig::default()).is_empty());
    }

    #[test]
    fn exploration_burst_flagged() {
        let mut p = CommunityProfiler::new();
        p.train(&training_archive()); // baseline: 6 distinct attrs
        let mut test = UpdateArchive::new(0);
        for v in 0..30u16 {
            test.record(&key(), announce(v as u64, &[(200, 2500 + v)]));
        }
        let cfg = AnomalyConfig { burst_factor: 4, burst_min_observed: 8, ..Default::default() };
        let found = p.detect(&test, &cfg);
        // 24 of the 30 values are novel + one burst alert.
        let bursts: Vec<_> =
            found.iter().filter(|a| matches!(a.kind, AlertKind::BaselineShift { .. })).collect();
        assert_eq!(bursts.len(), 1);
        if let AlertKind::BaselineShift { metric, observed, baseline, community } = &bursts[0].kind
        {
            assert_eq!(*metric, ShiftMetric::DistinctAttrs);
            assert_eq!(*observed, 30);
            assert_eq!(*baseline, 6);
            assert_eq!(*community, None);
        }
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn detect_before_train_panics() {
        let p = CommunityProfiler::new();
        p.detect(&UpdateArchive::new(0), &AnomalyConfig::default());
    }

    #[test]
    fn quiet_day_produces_no_anomalies() {
        let mut p = CommunityProfiler::new();
        p.train(&training_archive());
        let found = p.detect(&training_archive(), &AnomalyConfig::default());
        assert!(found.is_empty(), "training data itself must be clean: {found:?}");
    }
}
