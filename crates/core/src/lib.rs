//! # kcc-core — the community-impact analysis pipeline
//!
//! The paper's primary contribution, as a library: given per-session BGP
//! update streams (from MRT archives, the simulator, or the trace
//! generator), quantify how BGP communities inflate routing message
//! traffic.
//!
//! Pipeline stages, in the order the paper applies them:
//!
//! 1. **Cleaning** ([`clean`], [`registry`]): drop messages with
//!    unallocated ASNs/prefixes at message time, insert route-server ASNs
//!    into AS paths, normalize second-granularity timestamps (§4).
//! 2. **Stream grouping + classification** ([`classify`], [`stream`]):
//!    group by `(prefix, session)` in arrival order and label each
//!    announcement `pc`/`pn`/`nc`/`nn`/`xc`/`xn` by what changed relative
//!    to its predecessor (§5, Table 2), with MED-change attribution for
//!    `nn`.
//! 3. **Overview statistics** ([`table`]): the Table 1 dataset summary and
//!    the Table 2 type-share breakdown.
//! 4. **Beacon phase labeling** ([`beacon_phase`]): attribute updates to
//!    announcement/withdrawal phases with the paper's 15-minute windows.
//! 5. **Community exploration** ([`exploration`]): detect `nc` bursts
//!    during withdrawal phases and decode the geo locations they reveal
//!    (§6, Fig. 4).
//! 6. **Revealed information** ([`revealed`]): count unique community
//!    attributes revealed exclusively during withdrawal phases (§6,
//!    Fig. 6).
//! 7. **Per-session distributions** ([`sessions`], Fig. 3) and
//!    **cumulative timelines** ([`cumsum`], Figs. 4–5).
//! 8. **Longitudinal aggregation** ([`longitudinal`], Figs. 2 and 6) and
//!    **text/CSV rendering** ([`report`]).
//!
//! The paper's §7 future-work directions are implemented as well:
//! per-AS behavior inference ([`tomography`]: tag / filter / ignore),
//! interconnection-count inference from geo tags ([`interconnect`]), and
//! anomalous-community detection ([`anomaly`]).
//!
//! ## Streaming vs. batch
//!
//! Every analysis exists in two forms. The **streaming** form is an
//! [`AnalysisSink`] driven by [`pipeline::Pipeline`] over any
//! [`UpdateSource`] — one pass, constant memory per `(prefix, session)`
//! stream, optionally sharded across threads with
//! [`pipeline::run_sharded`]. The **batch** functions
//! ([`classify_archive`], [`clean_archive`], [`table::overview`], …) are
//! thin wrappers over that path, so their results — and the paper's
//! golden outputs — are unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod anomaly;
pub mod beacon_phase;
pub mod classify;
pub mod clean;
pub mod corpus;
pub mod cumsum;
pub mod exploration;
pub mod interconnect;
pub mod longitudinal;
pub mod pipeline;
pub mod registry;
pub mod report;
pub mod revealed;
pub mod sessions;
pub mod stream;
pub mod table;
pub mod tomography;
pub mod watch;

pub use alert::{sort_alerts, Alert, AlertKind, Severity, ShiftMetric};
pub use anomaly::{AnomalyConfig, AnomalySink, CommunityProfiler};
pub use classify::{classify_pair, AnnouncementType, TypeCounts};
pub use clean::{clean_archive, CleaningConfig, CleaningReport, CleaningStage};
pub use corpus::{
    corpus_sink, run_corpus_report, run_corpus_watch, AgreementMatrix, CollectorColumn,
    CommunitySetSink, CorpusReport, CorpusSink,
};
pub use kcc_collector::{
    ArchiveSource, Corpus, LiveSource, MrtDirSource, MrtFileOptions, MrtSource, NamedSource,
    ShutdownFlag, SourceError, SourceItem, UpdateSource,
};
pub use pipeline::{
    feed_classified, run_corpus, run_live, run_pipeline, run_sharded, AnalysisSink, CorpusBuilder,
    CorpusOutput, Merge, NoSink, Pipeline, PipelineBuilder, PipelineOutput, PipelineProfile,
    PipelineStats, ShardedPipelineBuilder, Stage,
};
pub use registry::AllocationRegistry;
pub use stream::{
    classify_archive, ClassifiedArchive, ClassifiedArchiveSink, ClassifiedEvent, CountsSink,
    EventKind, StreamClassifier,
};
pub use table::{OverviewSink, OverviewStats, TypeShares};
pub use watch::{WatchConfig, WatchReport, WatchSink};
