//! Decode/encode errors with RFC 7606 severity classification.

use std::fmt;

/// How a decoder error should be handled by a live speaker (RFC 7606).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorSeverity {
    /// The session must be reset (header/framing damage).
    SessionReset,
    /// The affected routes are treated as withdrawn; session survives.
    TreatAsWithdraw,
    /// The attribute is discarded; route and session survive.
    AttributeDiscard,
}

/// Errors produced by the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete item was read.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// The 16-byte marker was not all-ones.
    BadMarker,
    /// Header length field out of the legal 19..=4096 range or inconsistent.
    BadLength(u16),
    /// Unknown message type code.
    UnknownMessageType(u8),
    /// Unsupported BGP version in OPEN.
    BadVersion(u8),
    /// A path attribute was malformed.
    MalformedAttribute {
        /// Attribute type code.
        code: u8,
        /// Human-readable detail.
        detail: &'static str,
    },
    /// A well-known mandatory attribute is missing from an UPDATE with NLRI.
    MissingMandatoryAttribute(&'static str),
    /// A prefix had an impossible mask length for its family.
    BadPrefixLength(u8),
    /// An unknown well-known (non-optional) attribute was seen.
    UnrecognizedWellKnown(u8),
    /// Value failed a semantic check (e.g. ORIGIN code 9).
    BadValue {
        /// Attribute or field name.
        what: &'static str,
        /// The offending value widened to u32.
        value: u32,
    },
}

impl WireError {
    /// The RFC 7606 severity of this error.
    pub fn severity(&self) -> ErrorSeverity {
        match self {
            WireError::Truncated { .. }
            | WireError::BadMarker
            | WireError::BadLength(_)
            | WireError::UnknownMessageType(_)
            | WireError::BadVersion(_) => ErrorSeverity::SessionReset,
            WireError::MalformedAttribute { .. }
            | WireError::MissingMandatoryAttribute(_)
            | WireError::BadPrefixLength(_)
            | WireError::BadValue { .. } => ErrorSeverity::TreatAsWithdraw,
            WireError::UnrecognizedWellKnown(_) => ErrorSeverity::AttributeDiscard,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated input while reading {what}"),
            WireError::BadMarker => write!(f, "header marker is not all-ones"),
            WireError::BadLength(l) => write!(f, "illegal message length {l}"),
            WireError::UnknownMessageType(t) => write!(f, "unknown message type {t}"),
            WireError::BadVersion(v) => write!(f, "unsupported BGP version {v}"),
            WireError::MalformedAttribute { code, detail } => {
                write!(f, "malformed path attribute {code}: {detail}")
            }
            WireError::MissingMandatoryAttribute(name) => {
                write!(f, "missing mandatory attribute {name}")
            }
            WireError::BadPrefixLength(l) => write!(f, "impossible prefix length {l}"),
            WireError::UnrecognizedWellKnown(c) => {
                write!(f, "unrecognized well-known attribute {c}")
            }
            WireError::BadValue { what, value } => write!(f, "bad {what} value {value}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_follow_rfc7606() {
        assert_eq!(WireError::BadMarker.severity(), ErrorSeverity::SessionReset);
        assert_eq!(WireError::Truncated { what: "x" }.severity(), ErrorSeverity::SessionReset);
        assert_eq!(
            WireError::MalformedAttribute { code: 8, detail: "d" }.severity(),
            ErrorSeverity::TreatAsWithdraw
        );
        assert_eq!(
            WireError::UnrecognizedWellKnown(99).severity(),
            ErrorSeverity::AttributeDiscard
        );
    }

    #[test]
    fn display_is_informative() {
        let e = WireError::MalformedAttribute { code: 2, detail: "bad segment" };
        assert!(e.to_string().contains("2"));
        assert!(e.to_string().contains("bad segment"));
    }
}
