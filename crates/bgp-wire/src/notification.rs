//! NOTIFICATION messages (RFC 4271 §4.5).

use bytes::{Buf, BufMut, BytesMut};

use crate::error::WireError;

/// Top-level NOTIFICATION error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotificationCode {
    /// Message header error.
    MessageHeader,
    /// OPEN message error.
    OpenMessage,
    /// UPDATE message error.
    UpdateMessage,
    /// Hold timer expired.
    HoldTimerExpired,
    /// Finite state machine error.
    FsmError,
    /// Administrative cease (RFC 4486 subcodes).
    Cease,
    /// Anything else (future codes).
    Other(u8),
}

impl NotificationCode {
    /// Wire value.
    pub fn code(self) -> u8 {
        match self {
            NotificationCode::MessageHeader => 1,
            NotificationCode::OpenMessage => 2,
            NotificationCode::UpdateMessage => 3,
            NotificationCode::HoldTimerExpired => 4,
            NotificationCode::FsmError => 5,
            NotificationCode::Cease => 6,
            NotificationCode::Other(c) => c,
        }
    }

    /// From wire value.
    pub fn from_code(c: u8) -> Self {
        match c {
            1 => NotificationCode::MessageHeader,
            2 => NotificationCode::OpenMessage,
            3 => NotificationCode::UpdateMessage,
            4 => NotificationCode::HoldTimerExpired,
            5 => NotificationCode::FsmError,
            6 => NotificationCode::Cease,
            other => NotificationCode::Other(other),
        }
    }
}

/// OPEN message error subcodes (RFC 4271 §6.2) — the precise diagnoses a
/// session FSM sends back before tearing a half-open session down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenErrorSubcode {
    /// Unsupported version number (1); data carries the largest supported
    /// version as a 2-octet integer.
    UnsupportedVersionNumber,
    /// Bad peer AS (2): the OPEN's AS does not match the configured peer.
    BadPeerAs,
    /// Bad BGP identifier (3).
    BadBgpIdentifier,
    /// Unsupported optional parameter (4).
    UnsupportedOptionalParameter,
    /// Unacceptable hold time (6): proposed value was 1 or 2 seconds.
    UnacceptableHoldTime,
}

impl OpenErrorSubcode {
    /// Wire value.
    pub fn code(self) -> u8 {
        match self {
            OpenErrorSubcode::UnsupportedVersionNumber => 1,
            OpenErrorSubcode::BadPeerAs => 2,
            OpenErrorSubcode::BadBgpIdentifier => 3,
            OpenErrorSubcode::UnsupportedOptionalParameter => 4,
            OpenErrorSubcode::UnacceptableHoldTime => 6,
        }
    }
}

/// A NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Error code.
    pub code: NotificationCode,
    /// Error subcode (registry depends on `code`).
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl Notification {
    /// An administrative-shutdown cease notification.
    pub fn cease_admin_shutdown() -> Self {
        Notification { code: NotificationCode::Cease, subcode: 2, data: Vec::new() }
    }

    /// An OPEN error with a precise subcode.
    pub fn open_error(subcode: OpenErrorSubcode, data: Vec<u8>) -> Self {
        Notification { code: NotificationCode::OpenMessage, subcode: subcode.code(), data }
    }

    /// Unsupported Version Number; data is the largest version we speak
    /// (RFC 4271 §6.2).
    pub fn unsupported_version(supported: u8) -> Self {
        Self::open_error(
            OpenErrorSubcode::UnsupportedVersionNumber,
            (supported as u16).to_be_bytes().to_vec(),
        )
    }

    /// Bad Peer AS: the OPEN announced an AS other than the configured one.
    pub fn bad_peer_as() -> Self {
        Self::open_error(OpenErrorSubcode::BadPeerAs, Vec::new())
    }

    /// Unacceptable Hold Time: the peer proposed 1–2 s (RFC 4271 §4.2).
    pub fn unacceptable_hold_time(proposed: u16) -> Self {
        Self::open_error(OpenErrorSubcode::UnacceptableHoldTime, proposed.to_be_bytes().to_vec())
    }

    /// Hold Timer Expired (code 4).
    pub fn hold_timer_expired() -> Self {
        Notification { code: NotificationCode::HoldTimerExpired, subcode: 0, data: Vec::new() }
    }

    /// Finite State Machine Error (code 5) — a message arrived in a state
    /// where it is not legal (e.g. a second OPEN while Established).
    pub fn fsm_error() -> Self {
        Notification { code: NotificationCode::FsmError, subcode: 0, data: Vec::new() }
    }

    /// Encodes the body (without header).
    pub fn encode_body(&self, buf: &mut BytesMut) {
        buf.put_u8(self.code.code());
        buf.put_u8(self.subcode);
        buf.put_slice(&self.data);
    }

    /// Decodes a body of `len` bytes.
    pub fn decode_body<B: Buf>(buf: &mut B, len: usize) -> Result<Self, WireError> {
        if len < 2 || buf.remaining() < len {
            return Err(WireError::Truncated { what: "NOTIFICATION body" });
        }
        let code = NotificationCode::from_code(buf.get_u8());
        let subcode = buf.get_u8();
        let data = buf.copy_to_bytes(len - 2).to_vec();
        Ok(Notification { code, subcode, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let n = Notification {
            code: NotificationCode::UpdateMessage,
            subcode: 11,
            data: vec![1, 2, 3],
        };
        let mut buf = BytesMut::new();
        n.encode_body(&mut buf);
        let len = buf.len();
        assert_eq!(Notification::decode_body(&mut buf.freeze(), len).unwrap(), n);
    }

    #[test]
    fn code_registry_roundtrips() {
        for c in 1..=10u8 {
            assert_eq!(NotificationCode::from_code(c).code(), c);
        }
    }

    #[test]
    fn cease_constructor() {
        let n = Notification::cease_admin_shutdown();
        assert_eq!(n.code, NotificationCode::Cease);
        assert_eq!(n.subcode, 2);
    }

    #[test]
    fn open_error_subcodes_follow_rfc4271() {
        assert_eq!(OpenErrorSubcode::UnsupportedVersionNumber.code(), 1);
        assert_eq!(OpenErrorSubcode::BadPeerAs.code(), 2);
        assert_eq!(OpenErrorSubcode::BadBgpIdentifier.code(), 3);
        assert_eq!(OpenErrorSubcode::UnsupportedOptionalParameter.code(), 4);
        assert_eq!(OpenErrorSubcode::UnacceptableHoldTime.code(), 6);
    }

    #[test]
    fn open_error_constructors() {
        let v = Notification::unsupported_version(4);
        assert_eq!(v.code, NotificationCode::OpenMessage);
        assert_eq!(v.subcode, 1);
        assert_eq!(v.data, vec![0, 4]);

        let a = Notification::bad_peer_as();
        assert_eq!((a.code, a.subcode), (NotificationCode::OpenMessage, 2));

        let h = Notification::unacceptable_hold_time(2);
        assert_eq!((h.code, h.subcode), (NotificationCode::OpenMessage, 6));
        assert_eq!(h.data, vec![0, 2]);

        let e = Notification::hold_timer_expired();
        assert_eq!((e.code, e.subcode), (NotificationCode::HoldTimerExpired, 0));

        let f = Notification::fsm_error();
        assert_eq!((f.code, f.subcode), (NotificationCode::FsmError, 0));
    }

    #[test]
    fn short_body_rejected() {
        let data: &[u8] = &[1];
        assert!(Notification::decode_body(&mut &data[..], 1).is_err());
    }
}
