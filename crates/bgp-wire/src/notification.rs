//! NOTIFICATION messages (RFC 4271 §4.5).

use bytes::{Buf, BufMut, BytesMut};

use crate::error::WireError;

/// Top-level NOTIFICATION error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotificationCode {
    /// Message header error.
    MessageHeader,
    /// OPEN message error.
    OpenMessage,
    /// UPDATE message error.
    UpdateMessage,
    /// Hold timer expired.
    HoldTimerExpired,
    /// Finite state machine error.
    FsmError,
    /// Administrative cease (RFC 4486 subcodes).
    Cease,
    /// Anything else (future codes).
    Other(u8),
}

impl NotificationCode {
    /// Wire value.
    pub fn code(self) -> u8 {
        match self {
            NotificationCode::MessageHeader => 1,
            NotificationCode::OpenMessage => 2,
            NotificationCode::UpdateMessage => 3,
            NotificationCode::HoldTimerExpired => 4,
            NotificationCode::FsmError => 5,
            NotificationCode::Cease => 6,
            NotificationCode::Other(c) => c,
        }
    }

    /// From wire value.
    pub fn from_code(c: u8) -> Self {
        match c {
            1 => NotificationCode::MessageHeader,
            2 => NotificationCode::OpenMessage,
            3 => NotificationCode::UpdateMessage,
            4 => NotificationCode::HoldTimerExpired,
            5 => NotificationCode::FsmError,
            6 => NotificationCode::Cease,
            other => NotificationCode::Other(other),
        }
    }
}

/// A NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Error code.
    pub code: NotificationCode,
    /// Error subcode (registry depends on `code`).
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl Notification {
    /// An administrative-shutdown cease notification.
    pub fn cease_admin_shutdown() -> Self {
        Notification { code: NotificationCode::Cease, subcode: 2, data: Vec::new() }
    }

    /// Encodes the body (without header).
    pub fn encode_body(&self, buf: &mut BytesMut) {
        buf.put_u8(self.code.code());
        buf.put_u8(self.subcode);
        buf.put_slice(&self.data);
    }

    /// Decodes a body of `len` bytes.
    pub fn decode_body<B: Buf>(buf: &mut B, len: usize) -> Result<Self, WireError> {
        if len < 2 || buf.remaining() < len {
            return Err(WireError::Truncated { what: "NOTIFICATION body" });
        }
        let code = NotificationCode::from_code(buf.get_u8());
        let subcode = buf.get_u8();
        let data = buf.copy_to_bytes(len - 2).to_vec();
        Ok(Notification { code, subcode, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let n = Notification {
            code: NotificationCode::UpdateMessage,
            subcode: 11,
            data: vec![1, 2, 3],
        };
        let mut buf = BytesMut::new();
        n.encode_body(&mut buf);
        let len = buf.len();
        assert_eq!(Notification::decode_body(&mut buf.freeze(), len).unwrap(), n);
    }

    #[test]
    fn code_registry_roundtrips() {
        for c in 1..=10u8 {
            assert_eq!(NotificationCode::from_code(c).code(), c);
        }
    }

    #[test]
    fn cease_constructor() {
        let n = Notification::cease_admin_shutdown();
        assert_eq!(n.code, NotificationCode::Cease);
        assert_eq!(n.subcode, 2);
    }

    #[test]
    fn short_body_rejected() {
        let data: &[u8] = &[1];
        assert!(Notification::decode_body(&mut &data[..], 1).is_err());
    }
}
