//! OPEN message with capability negotiation.

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, BytesMut};
use kcc_bgp_types::Asn;

use crate::error::WireError;
use crate::nlri::Afi;
use crate::BGP_VERSION;

/// A negotiated capability (RFC 5492 subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// Multiprotocol extensions for an AFI/SAFI pair (RFC 4760, code 1).
    Multiprotocol {
        /// Address family.
        afi: Afi,
        /// Subsequent address family (1 = unicast).
        safi: u8,
    },
    /// Route refresh (RFC 2918, code 2).
    RouteRefresh,
    /// 4-octet AS numbers (RFC 6793, code 65) with the speaker's real ASN.
    FourOctetAs(Asn),
    /// Anything else, kept raw.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw capability value.
        value: Vec<u8>,
    },
}

/// A decoded OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMessage {
    /// The sender's ASN (2-octet field; `AS_TRANS` if it does not fit).
    pub asn: Asn,
    /// Proposed hold time in seconds.
    pub hold_time: u16,
    /// The sender's BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Announced capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMessage {
    /// A conventional OPEN for a collector-style session: multiprotocol
    /// v4+v6, route refresh, 4-octet AS.
    pub fn standard(asn: Asn, bgp_id: Ipv4Addr, hold_time: u16) -> Self {
        OpenMessage {
            asn,
            hold_time,
            bgp_id,
            capabilities: vec![
                Capability::Multiprotocol { afi: Afi::Ipv4, safi: 1 },
                Capability::Multiprotocol { afi: Afi::Ipv6, safi: 1 },
                Capability::RouteRefresh,
                Capability::FourOctetAs(asn),
            ],
        }
    }

    /// The real ASN: the 4-octet capability value if present, else the
    /// 2-octet header field.
    pub fn real_asn(&self) -> Asn {
        for c in &self.capabilities {
            if let Capability::FourOctetAs(a) = c {
                return *a;
            }
        }
        self.asn
    }

    /// True if both v4 and the given capability were announced.
    pub fn supports_four_octet(&self) -> bool {
        self.capabilities.iter().any(|c| matches!(c, Capability::FourOctetAs(_)))
    }

    /// Encodes the OPEN body (without the message header).
    pub fn encode_body(&self, buf: &mut BytesMut) {
        buf.put_u8(BGP_VERSION);
        buf.put_u16(self.asn.to_16bit_wire());
        buf.put_u16(self.hold_time);
        buf.put_slice(&self.bgp_id.octets());

        let mut caps = BytesMut::new();
        for c in &self.capabilities {
            match c {
                Capability::Multiprotocol { afi, safi } => {
                    caps.put_u8(1);
                    caps.put_u8(4);
                    caps.put_u16(afi.code());
                    caps.put_u8(0);
                    caps.put_u8(*safi);
                }
                Capability::RouteRefresh => {
                    caps.put_u8(2);
                    caps.put_u8(0);
                }
                Capability::FourOctetAs(asn) => {
                    caps.put_u8(65);
                    caps.put_u8(4);
                    caps.put_u32(asn.value());
                }
                Capability::Unknown { code, value } => {
                    caps.put_u8(*code);
                    caps.put_u8(value.len() as u8);
                    caps.put_slice(value);
                }
            }
        }
        if caps.is_empty() {
            buf.put_u8(0);
        } else {
            // One optional parameter of type 2 (capabilities).
            buf.put_u8((caps.len() + 2) as u8);
            buf.put_u8(2);
            buf.put_u8(caps.len() as u8);
            buf.put_slice(&caps);
        }
    }

    /// Decodes an OPEN body.
    pub fn decode_body<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if buf.remaining() < 10 {
            return Err(WireError::Truncated { what: "OPEN body" });
        }
        let version = buf.get_u8();
        if version != BGP_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let asn = Asn(buf.get_u16() as u32);
        let hold_time = buf.get_u16();
        // RFC 4271 §4.2: the hold time MUST be either zero or at least
        // three seconds; 1–2 s proposals are rejected so a live speaker
        // can answer with an Unacceptable Hold Time NOTIFICATION.
        if hold_time == 1 || hold_time == 2 {
            return Err(WireError::BadValue { what: "hold time", value: hold_time as u32 });
        }
        let mut id = [0u8; 4];
        buf.copy_to_slice(&mut id);
        let bgp_id = Ipv4Addr::from(id);
        let opt_len = buf.get_u8() as usize;
        if buf.remaining() < opt_len {
            return Err(WireError::Truncated { what: "OPEN optional parameters" });
        }
        let mut params = buf.copy_to_bytes(opt_len);
        let mut capabilities = Vec::new();
        while params.has_remaining() {
            if params.remaining() < 2 {
                return Err(WireError::Truncated { what: "optional parameter header" });
            }
            let ptype = params.get_u8();
            let plen = params.get_u8() as usize;
            if params.remaining() < plen {
                return Err(WireError::Truncated { what: "optional parameter body" });
            }
            let mut pbody = params.copy_to_bytes(plen);
            if ptype != 2 {
                continue; // non-capability parameter: ignore
            }
            while pbody.has_remaining() {
                if pbody.remaining() < 2 {
                    return Err(WireError::Truncated { what: "capability header" });
                }
                let code = pbody.get_u8();
                let clen = pbody.get_u8() as usize;
                if pbody.remaining() < clen {
                    return Err(WireError::Truncated { what: "capability body" });
                }
                let mut cbody = pbody.copy_to_bytes(clen);
                capabilities.push(match (code, clen) {
                    (1, 4) => {
                        let afi_code = cbody.get_u16();
                        cbody.advance(1);
                        let safi = cbody.get_u8();
                        match Afi::from_code(afi_code) {
                            Some(afi) => Capability::Multiprotocol { afi, safi },
                            None => Capability::Unknown { code, value: Vec::new() },
                        }
                    }
                    (2, 0) => Capability::RouteRefresh,
                    (65, 4) => Capability::FourOctetAs(Asn(cbody.get_u32())),
                    _ => Capability::Unknown { code, value: cbody.to_vec() },
                });
            }
        }
        Ok(OpenMessage { asn, hold_time, bgp_id, capabilities })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(o: &OpenMessage) -> OpenMessage {
        let mut buf = BytesMut::new();
        o.encode_body(&mut buf);
        OpenMessage::decode_body(&mut buf.freeze()).unwrap()
    }

    #[test]
    fn standard_open_roundtrips() {
        let o = OpenMessage::standard(Asn(20_205), "10.0.0.1".parse().unwrap(), 180);
        assert_eq!(roundtrip(&o), o);
    }

    #[test]
    fn four_octet_asn_via_capability() {
        let o = OpenMessage::standard(Asn(196_615), "10.0.0.1".parse().unwrap(), 90);
        let d = roundtrip(&o);
        assert_eq!(d.asn, Asn(23_456)); // header field collapsed to AS_TRANS
        assert_eq!(d.real_asn(), Asn(196_615));
        assert!(d.supports_four_octet());
    }

    #[test]
    fn open_without_capabilities() {
        let o = OpenMessage {
            asn: Asn(65_000),
            hold_time: 90,
            bgp_id: "192.0.2.1".parse().unwrap(),
            capabilities: vec![],
        };
        let d = roundtrip(&o);
        assert_eq!(d.real_asn(), Asn(65_000));
        assert!(!d.supports_four_octet());
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(3);
        buf.put_slice(&[0; 9]);
        assert_eq!(OpenMessage::decode_body(&mut buf.freeze()), Err(WireError::BadVersion(3)));
    }

    #[test]
    fn unacceptable_hold_time_rejected() {
        // RFC 4271 §4.2: hold time 1–2 s is illegal; 0 and ≥3 are fine.
        for (hold, ok) in [(0u16, true), (1, false), (2, false), (3, true), (65_535, true)] {
            let o = OpenMessage::standard(Asn(65_000), "10.0.0.1".parse().unwrap(), hold);
            let mut buf = BytesMut::new();
            o.encode_body(&mut buf);
            let decoded = OpenMessage::decode_body(&mut buf.freeze());
            if ok {
                assert_eq!(decoded.unwrap().hold_time, hold);
            } else {
                assert_eq!(
                    decoded,
                    Err(WireError::BadValue { what: "hold time", value: hold as u32 })
                );
            }
        }
    }

    #[test]
    fn unknown_capability_preserved() {
        let o = OpenMessage {
            asn: Asn(1),
            hold_time: 0,
            bgp_id: "1.1.1.1".parse().unwrap(),
            capabilities: vec![Capability::Unknown { code: 199, value: vec![9, 9] }],
        };
        assert_eq!(roundtrip(&o), o);
    }
}
