//! NLRI (prefix) wire encoding.
//!
//! A prefix is encoded as one length octet followed by the minimum number
//! of address octets covering the mask (RFC 4271 §4.3). The same shape is
//! used for withdrawn routes, announcement NLRI, and (with the family
//! implied by the enclosing attribute) MP_REACH/MP_UNREACH NLRI.

use std::net::{Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut};
use kcc_bgp_types::Prefix;

use crate::error::WireError;

/// Address family identifiers (RFC 4760).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Afi {
    /// IPv4 (AFI 1).
    Ipv4,
    /// IPv6 (AFI 2).
    Ipv6,
}

impl Afi {
    /// Wire value.
    pub const fn code(self) -> u16 {
        match self {
            Afi::Ipv4 => 1,
            Afi::Ipv6 => 2,
        }
    }

    /// From wire value.
    pub const fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(Afi::Ipv4),
            2 => Some(Afi::Ipv6),
            _ => None,
        }
    }
}

/// Bytes needed to cover `len` mask bits.
pub const fn octets_for(len: u8) -> usize {
    (len as usize).div_ceil(8)
}

/// Encodes one prefix into `buf`.
pub fn encode_prefix<B: BufMut>(prefix: &Prefix, buf: &mut B) {
    match prefix {
        Prefix::V4 { addr, len } => {
            buf.put_u8(*len);
            buf.put_slice(&addr.octets()[..octets_for(*len)]);
        }
        Prefix::V6 { addr, len } => {
            buf.put_u8(*len);
            buf.put_slice(&addr.octets()[..octets_for(*len)]);
        }
    }
}

/// Decodes one prefix of family `afi` from `buf`.
pub fn decode_prefix<B: Buf>(afi: Afi, buf: &mut B) -> Result<Prefix, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated { what: "prefix length" });
    }
    let len = buf.get_u8();
    let max = match afi {
        Afi::Ipv4 => 32,
        Afi::Ipv6 => 128,
    };
    if len > max {
        return Err(WireError::BadPrefixLength(len));
    }
    let n = octets_for(len);
    if buf.remaining() < n {
        return Err(WireError::Truncated { what: "prefix bytes" });
    }
    match afi {
        Afi::Ipv4 => {
            let mut oct = [0u8; 4];
            buf.copy_to_slice(&mut oct[..n]);
            Prefix::v4(Ipv4Addr::from(oct), len).map_err(|_| WireError::BadPrefixLength(len))
        }
        Afi::Ipv6 => {
            let mut oct = [0u8; 16];
            buf.copy_to_slice(&mut oct[..n]);
            Prefix::v6(Ipv6Addr::from(oct), len).map_err(|_| WireError::BadPrefixLength(len))
        }
    }
}

/// A streaming decoder over a run of prefixes: yields one
/// `Result<Prefix, WireError>` per encoded prefix until the buffer is
/// exhausted, without materializing a `Vec`. After the first error the
/// iterator fuses (further calls yield `None`) — a malformed length byte
/// leaves the rest of the run unframeable.
#[derive(Debug)]
pub struct PrefixRun<B> {
    afi: Afi,
    buf: B,
    failed: bool,
}

impl<B: Buf> PrefixRun<B> {
    /// Wraps a buffer holding back-to-back encoded prefixes of one family.
    pub fn new(afi: Afi, buf: B) -> Self {
        PrefixRun { afi, buf, failed: false }
    }
}

impl<B: Buf> Iterator for PrefixRun<B> {
    type Item = Result<Prefix, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || !self.buf.has_remaining() {
            return None;
        }
        let item = decode_prefix(self.afi, &mut self.buf);
        self.failed = item.is_err();
        Some(item)
    }
}

/// Decodes prefixes until `buf` is exhausted, collecting into a `Vec`.
/// Prefer iterating [`PrefixRun`] on hot paths.
pub fn decode_prefix_run<B: Buf>(afi: Afi, buf: &mut B) -> Result<Vec<Prefix>, WireError> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_prefix(afi, buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(p: &str) -> Prefix {
        let prefix: Prefix = p.parse().unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&prefix, &mut buf);
        let afi = if prefix.is_ipv4() { Afi::Ipv4 } else { Afi::Ipv6 };
        decode_prefix(afi, &mut buf.freeze()).unwrap()
    }

    #[test]
    fn v4_roundtrips() {
        for p in ["84.205.64.0/24", "10.0.0.0/8", "0.0.0.0/0", "192.0.2.1/32", "128.0.0.0/1"] {
            assert_eq!(roundtrip(p).to_string(), p);
        }
    }

    #[test]
    fn v6_roundtrips() {
        for p in ["2001:db8::/32", "::/0", "2001:db8:1::/48", "2001:db8::1/128"] {
            assert_eq!(roundtrip(p).to_string(), p);
        }
    }

    #[test]
    fn minimal_octets_used() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&p, &mut buf);
        assert_eq!(buf.len(), 2); // 1 length byte + 1 address byte
        let d: Prefix = "0.0.0.0/0".parse().unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&d, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn bad_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(33);
        buf.put_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(
            decode_prefix(Afi::Ipv4, &mut buf.freeze()),
            Err(WireError::BadPrefixLength(33))
        );
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        buf.put_u8(24);
        buf.put_slice(&[84, 205]); // needs 3 bytes
        assert!(matches!(
            decode_prefix(Afi::Ipv4, &mut buf.freeze()),
            Err(WireError::Truncated { .. })
        ));
        let empty: &[u8] = &[];
        assert!(matches!(
            decode_prefix(Afi::Ipv4, &mut &empty[..]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn run_decodes_many() {
        let ps = ["84.205.64.0/24", "10.0.0.0/8", "192.0.2.0/25"];
        let mut buf = BytesMut::new();
        for p in ps {
            encode_prefix(&p.parse().unwrap(), &mut buf);
        }
        let out = decode_prefix_run(Afi::Ipv4, &mut buf.freeze()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].to_string(), "192.0.2.0/25");
    }

    #[test]
    fn prefix_run_iterator_matches_collecting_decoder() {
        let ps = ["84.205.64.0/24", "10.0.0.0/8", "192.0.2.0/25"];
        let mut buf = BytesMut::new();
        for p in ps {
            encode_prefix(&p.parse().unwrap(), &mut buf);
        }
        let frozen = buf.freeze();
        let collected = decode_prefix_run(Afi::Ipv4, &mut frozen.clone()).unwrap();
        let iterated: Result<Vec<Prefix>, WireError> = PrefixRun::new(Afi::Ipv4, frozen).collect();
        assert_eq!(iterated.unwrap(), collected);
    }

    #[test]
    fn prefix_run_fuses_after_error() {
        let mut buf = BytesMut::new();
        encode_prefix(&"10.0.0.0/8".parse().unwrap(), &mut buf);
        buf.put_u8(33); // invalid v4 length
        buf.put_slice(&[1, 2, 3, 4, 5]);
        let mut run = PrefixRun::new(Afi::Ipv4, buf.freeze());
        assert!(run.next().unwrap().is_ok());
        assert_eq!(run.next().unwrap(), Err(WireError::BadPrefixLength(33)));
        assert!(run.next().is_none(), "iterator fuses after a decode error");
    }

    #[test]
    fn afi_codes() {
        assert_eq!(Afi::from_code(1), Some(Afi::Ipv4));
        assert_eq!(Afi::from_code(2), Some(Afi::Ipv6));
        assert_eq!(Afi::from_code(3), None);
        assert_eq!(Afi::Ipv4.code(), 1);
    }
}
