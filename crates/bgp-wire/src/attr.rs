//! Path attribute encoding and decoding.
//!
//! Attributes are TLVs with a flags octet, a type octet, and a 1- or
//! 2-octet length (extended-length flag). The codec understands every
//! attribute the paper's data analysis touches and preserves unrecognized
//! optional transitive attributes bit-exactly so archives round-trip.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use kcc_bgp_types::attrs::{Aggregator, Origin, PathAttributes};
use kcc_bgp_types::{
    AsPath, Asn, Community, CommunitySet, ExtendedCommunity, LargeCommunity, PathSegment, Prefix,
    SegmentKind,
};

use crate::error::WireError;
use crate::message::SessionConfig;
use crate::nlri::{decode_prefix_run, encode_prefix, Afi};

/// Attribute flag bits.
pub mod flags {
    /// Optional (not well-known).
    pub const OPTIONAL: u8 = 0x80;
    /// Transitive.
    pub const TRANSITIVE: u8 = 0x40;
    /// Partial (set when an unrecognized transitive attribute passed through).
    pub const PARTIAL: u8 = 0x20;
    /// Two-octet length field follows.
    pub const EXTENDED_LENGTH: u8 = 0x10;
}

/// Attribute type codes (IANA registry subset).
pub mod type_codes {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES (RFC 1997).
    pub const COMMUNITIES: u8 = 8;
    /// MP_REACH_NLRI (RFC 4760).
    pub const MP_REACH_NLRI: u8 = 14;
    /// MP_UNREACH_NLRI (RFC 4760).
    pub const MP_UNREACH_NLRI: u8 = 15;
    /// EXTENDED COMMUNITIES (RFC 4360).
    pub const EXTENDED_COMMUNITIES: u8 = 16;
    /// AS4_PATH (RFC 6793).
    pub const AS4_PATH: u8 = 17;
    /// AS4_AGGREGATOR (RFC 6793).
    pub const AS4_AGGREGATOR: u8 = 18;
    /// LARGE COMMUNITIES (RFC 8092).
    pub const LARGE_COMMUNITIES: u8 = 32;
}

/// An attribute the codec does not interpret, preserved bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawAttribute {
    /// Original flag octet.
    pub flags: u8,
    /// Type code.
    pub code: u8,
    /// Raw value bytes.
    pub value: Vec<u8>,
}

/// Everything pulled out of an UPDATE's attribute block.
#[derive(Debug, Clone, Default)]
pub struct DecodedAttrs {
    /// The interpreted attributes (next_hop defaults to 0.0.0.0 when the
    /// update has no NEXT_HOP, e.g. a pure MP-BGP v6 update).
    pub attrs: PathAttributes,
    /// True if a NEXT_HOP attribute was present.
    pub has_next_hop: bool,
    /// True if an ORIGIN attribute was present.
    pub has_origin: bool,
    /// True if an AS_PATH attribute was present.
    pub has_as_path: bool,
    /// NLRI announced via MP_REACH_NLRI (IPv6).
    pub mp_reach: Vec<Prefix>,
    /// IPv6 next hop from MP_REACH_NLRI.
    pub mp_next_hop: Option<Ipv6Addr>,
    /// NLRI withdrawn via MP_UNREACH_NLRI.
    pub mp_unreach: Vec<Prefix>,
    /// Unrecognized attributes, preserved for re-encoding.
    pub unknown: Vec<RawAttribute>,
}

fn put_attr_header<B: BufMut>(buf: &mut B, base_flags: u8, code: u8, len: usize) {
    if len > 255 {
        buf.put_u8(base_flags | flags::EXTENDED_LENGTH);
        buf.put_u8(code);
        buf.put_u16(len as u16);
    } else {
        buf.put_u8(base_flags);
        buf.put_u8(code);
        buf.put_u8(len as u8);
    }
}

fn encode_as_path_body(path: &AsPath, four_octet: bool) -> BytesMut {
    let mut body = BytesMut::new();
    for seg in path.segments() {
        let kind = match seg.kind {
            SegmentKind::Set => 1u8,
            SegmentKind::Sequence => 2,
            SegmentKind::ConfedSequence => 3,
            SegmentKind::ConfedSet => 4,
        };
        // Wire segments hold at most 255 ASNs; split longer ones.
        for chunk in seg.asns.chunks(255) {
            body.put_u8(kind);
            body.put_u8(chunk.len() as u8);
            for a in chunk {
                if four_octet {
                    body.put_u32(a.value());
                } else {
                    body.put_u16(a.to_16bit_wire());
                }
            }
        }
    }
    body
}

fn decode_as_path_body(mut body: Bytes, four_octet: bool) -> Result<AsPath, WireError> {
    let mut segments = Vec::new();
    while body.has_remaining() {
        if body.remaining() < 2 {
            return Err(WireError::MalformedAttribute {
                code: type_codes::AS_PATH,
                detail: "segment header truncated",
            });
        }
        let kind = match body.get_u8() {
            1 => SegmentKind::Set,
            2 => SegmentKind::Sequence,
            3 => SegmentKind::ConfedSequence,
            4 => SegmentKind::ConfedSet,
            _ => {
                return Err(WireError::MalformedAttribute {
                    code: type_codes::AS_PATH,
                    detail: "unknown segment type",
                })
            }
        };
        let count = body.get_u8() as usize;
        let width = if four_octet { 4 } else { 2 };
        if body.remaining() < count * width {
            return Err(WireError::MalformedAttribute {
                code: type_codes::AS_PATH,
                detail: "segment body truncated",
            });
        }
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            asns.push(if four_octet { Asn(body.get_u32()) } else { Asn(body.get_u16() as u32) });
        }
        segments.push(PathSegment { kind, asns });
    }
    Ok(AsPath::from_segments(segments))
}

/// Encodes the attribute block for an UPDATE.
///
/// `v6_nlri`/`v6_withdrawn` trigger MP_REACH/MP_UNREACH generation;
/// `include_next_hop` should be false for updates with no IPv4 NLRI.
pub fn encode_attributes(
    attrs: &PathAttributes,
    v6_nlri: &[Prefix],
    v6_withdrawn: &[Prefix],
    unknown: &[RawAttribute],
    include_next_hop: bool,
    cfg: &SessionConfig,
    buf: &mut BytesMut,
) {
    // ORIGIN
    put_attr_header(buf, flags::TRANSITIVE, type_codes::ORIGIN, 1);
    buf.put_u8(attrs.origin.code());

    // AS_PATH (+ AS4_PATH when the session is 2-octet and the path needs it)
    let body = encode_as_path_body(&attrs.as_path, cfg.four_octet_as);
    put_attr_header(buf, flags::TRANSITIVE, type_codes::AS_PATH, body.len());
    buf.put_slice(&body);
    if !cfg.four_octet_as && attrs.as_path.asns().any(|a| !a.is_16bit()) {
        let body4 = encode_as_path_body(&attrs.as_path, true);
        put_attr_header(
            buf,
            flags::OPTIONAL | flags::TRANSITIVE,
            type_codes::AS4_PATH,
            body4.len(),
        );
        buf.put_slice(&body4);
    }

    // NEXT_HOP (IPv4 only; v6 next hops ride in MP_REACH)
    if include_next_hop {
        if let IpAddr::V4(nh) = attrs.next_hop {
            put_attr_header(buf, flags::TRANSITIVE, type_codes::NEXT_HOP, 4);
            buf.put_slice(&nh.octets());
        }
    }

    if let Some(med) = attrs.med {
        put_attr_header(buf, flags::OPTIONAL, type_codes::MED, 4);
        buf.put_u32(med);
    }

    if let Some(lp) = attrs.local_pref {
        put_attr_header(buf, flags::TRANSITIVE, type_codes::LOCAL_PREF, 4);
        buf.put_u32(lp);
    }

    if attrs.atomic_aggregate {
        put_attr_header(buf, flags::TRANSITIVE, type_codes::ATOMIC_AGGREGATE, 0);
    }

    if let Some(agg) = &attrs.aggregator {
        if cfg.four_octet_as {
            put_attr_header(buf, flags::OPTIONAL | flags::TRANSITIVE, type_codes::AGGREGATOR, 8);
            buf.put_u32(agg.asn.value());
            buf.put_slice(&agg.router_id.octets());
        } else {
            put_attr_header(buf, flags::OPTIONAL | flags::TRANSITIVE, type_codes::AGGREGATOR, 6);
            buf.put_u16(agg.asn.to_16bit_wire());
            buf.put_slice(&agg.router_id.octets());
            // RFC 6793 §4.2.2: a 4-octet aggregator ASN travels a 2-octet
            // session as AS_TRANS plus an AS4_AGGREGATOR carrying the
            // real value (mirrors the AS_PATH / AS4_PATH pair above).
            if !agg.asn.is_16bit() {
                put_attr_header(
                    buf,
                    flags::OPTIONAL | flags::TRANSITIVE,
                    type_codes::AS4_AGGREGATOR,
                    8,
                );
                buf.put_u32(agg.asn.value());
                buf.put_slice(&agg.router_id.octets());
            }
        }
    }

    let classic = attrs.communities.classic();
    if !classic.is_empty() {
        put_attr_header(
            buf,
            flags::OPTIONAL | flags::TRANSITIVE,
            type_codes::COMMUNITIES,
            classic.len() * 4,
        );
        for c in classic {
            buf.put_u32(c.0);
        }
    }

    let extended = attrs.communities.extended();
    if !extended.is_empty() {
        put_attr_header(
            buf,
            flags::OPTIONAL | flags::TRANSITIVE,
            type_codes::EXTENDED_COMMUNITIES,
            extended.len() * 8,
        );
        for e in extended {
            buf.put_slice(&e.to_bytes());
        }
    }

    let large = attrs.communities.large();
    if !large.is_empty() {
        put_attr_header(
            buf,
            flags::OPTIONAL | flags::TRANSITIVE,
            type_codes::LARGE_COMMUNITIES,
            large.len() * 12,
        );
        for l in large {
            buf.put_u32(l.global);
            buf.put_u32(l.data1);
            buf.put_u32(l.data2);
        }
    }

    if !v6_nlri.is_empty() {
        let mut body = BytesMut::new();
        body.put_u16(Afi::Ipv6.code());
        body.put_u8(1); // SAFI unicast
        let nh = match attrs.next_hop {
            IpAddr::V6(v6) => v6,
            IpAddr::V4(v4) => v4.to_ipv6_mapped(),
        };
        body.put_u8(16);
        body.put_slice(&nh.octets());
        body.put_u8(0); // reserved
        for p in v6_nlri {
            encode_prefix(p, &mut body);
        }
        put_attr_header(buf, flags::OPTIONAL, type_codes::MP_REACH_NLRI, body.len());
        buf.put_slice(&body);
    }

    if !v6_withdrawn.is_empty() {
        let mut body = BytesMut::new();
        body.put_u16(Afi::Ipv6.code());
        body.put_u8(1);
        for p in v6_withdrawn {
            encode_prefix(p, &mut body);
        }
        put_attr_header(buf, flags::OPTIONAL, type_codes::MP_UNREACH_NLRI, body.len());
        buf.put_slice(&body);
    }

    for raw in unknown {
        put_attr_header(buf, raw.flags & !flags::EXTENDED_LENGTH, raw.code, raw.value.len());
        buf.put_slice(&raw.value);
    }
}

/// Encodes a next-hop-only MP_REACH_NLRI attribute — the shape RFC 6396
/// §4.3.4 prescribes for IPv6 RIB entries in TABLE_DUMP_V2, where the NLRI
/// is implied by the enclosing record.
pub fn encode_mp_next_hop_only(next_hop: Ipv6Addr, buf: &mut BytesMut) {
    let mut body = BytesMut::new();
    body.put_u16(Afi::Ipv6.code());
    body.put_u8(1); // SAFI unicast
    body.put_u8(16);
    body.put_slice(&next_hop.octets());
    body.put_u8(0); // reserved
    put_attr_header(buf, flags::OPTIONAL, type_codes::MP_REACH_NLRI, body.len());
    buf.put_slice(&body);
}

/// Encodes an attribute block containing only MP_UNREACH_NLRI — the shape
/// of a pure IPv6 withdrawal, which carries no mandatory attributes.
pub fn encode_attributes_withdraw_only(v6_withdrawn: &[Prefix], buf: &mut BytesMut) {
    let mut body = BytesMut::new();
    body.put_u16(Afi::Ipv6.code());
    body.put_u8(1);
    for p in v6_withdrawn {
        encode_prefix(p, &mut body);
    }
    put_attr_header(buf, flags::OPTIONAL, type_codes::MP_UNREACH_NLRI, body.len());
    buf.put_slice(&body);
}

fn expect_len(code: u8, body: &Bytes, want: usize, what: &'static str) -> Result<(), WireError> {
    if body.len() != want {
        Err(WireError::MalformedAttribute { code, detail: what })
    } else {
        Ok(())
    }
}

/// Decodes an attribute block of exactly `total_len` bytes from `buf`.
pub fn decode_attributes<B: Buf>(
    buf: &mut B,
    total_len: usize,
    cfg: &SessionConfig,
) -> Result<DecodedAttrs, WireError> {
    if buf.remaining() < total_len {
        return Err(WireError::Truncated { what: "path attributes" });
    }
    let mut block = buf.copy_to_bytes(total_len);
    let mut out = DecodedAttrs::default();
    let mut as4_path: Option<AsPath> = None;
    let mut as4_aggregator: Option<Aggregator> = None;
    // Communities are collected raw and sorted/deduped once at the end —
    // one bulk build instead of a binary_search + Vec::insert per element.
    let mut classic: Vec<Community> = Vec::new();
    let mut extended: Vec<ExtendedCommunity> = Vec::new();
    let mut large: Vec<LargeCommunity> = Vec::new();

    while block.has_remaining() {
        if block.remaining() < 2 {
            return Err(WireError::Truncated { what: "attribute header" });
        }
        let fl = block.get_u8();
        let code = block.get_u8();
        let len = if fl & flags::EXTENDED_LENGTH != 0 {
            if block.remaining() < 2 {
                return Err(WireError::Truncated { what: "attribute extended length" });
            }
            block.get_u16() as usize
        } else {
            if block.remaining() < 1 {
                return Err(WireError::Truncated { what: "attribute length" });
            }
            block.get_u8() as usize
        };
        if block.remaining() < len {
            return Err(WireError::Truncated { what: "attribute body" });
        }
        let mut body = block.copy_to_bytes(len);

        match code {
            type_codes::ORIGIN => {
                expect_len(code, &body, 1, "ORIGIN length != 1")?;
                let v = body.get_u8();
                out.attrs.origin = Origin::from_code(v)
                    .ok_or(WireError::BadValue { what: "ORIGIN", value: v as u32 })?;
                out.has_origin = true;
            }
            type_codes::AS_PATH => {
                out.attrs.as_path = decode_as_path_body(body, cfg.four_octet_as)?;
                out.has_as_path = true;
            }
            type_codes::AS4_PATH => {
                as4_path = Some(decode_as_path_body(body, true)?);
            }
            type_codes::NEXT_HOP => {
                expect_len(code, &body, 4, "NEXT_HOP length != 4")?;
                let mut oct = [0u8; 4];
                body.copy_to_slice(&mut oct);
                out.attrs.next_hop = IpAddr::V4(Ipv4Addr::from(oct));
                out.has_next_hop = true;
            }
            type_codes::MED => {
                expect_len(code, &body, 4, "MED length != 4")?;
                out.attrs.med = Some(body.get_u32());
            }
            type_codes::LOCAL_PREF => {
                expect_len(code, &body, 4, "LOCAL_PREF length != 4")?;
                out.attrs.local_pref = Some(body.get_u32());
            }
            type_codes::ATOMIC_AGGREGATE => {
                expect_len(code, &body, 0, "ATOMIC_AGGREGATE length != 0")?;
                out.attrs.atomic_aggregate = true;
            }
            type_codes::AGGREGATOR => {
                let (asn, rest) = if cfg.four_octet_as {
                    expect_len(code, &body, 8, "AGGREGATOR length != 8")?;
                    (Asn(body.get_u32()), body)
                } else {
                    expect_len(code, &body, 6, "AGGREGATOR length != 6")?;
                    (Asn(body.get_u16() as u32), body)
                };
                let mut body = rest;
                let mut oct = [0u8; 4];
                body.copy_to_slice(&mut oct);
                out.attrs.aggregator = Some(Aggregator { asn, router_id: Ipv4Addr::from(oct) });
            }
            type_codes::AS4_AGGREGATOR => {
                expect_len(code, &body, 8, "AS4_AGGREGATOR length != 8")?;
                let asn = Asn(body.get_u32());
                let mut oct = [0u8; 4];
                body.copy_to_slice(&mut oct);
                as4_aggregator = Some(Aggregator { asn, router_id: Ipv4Addr::from(oct) });
            }
            type_codes::COMMUNITIES => {
                if body.len() % 4 != 0 {
                    return Err(WireError::MalformedAttribute {
                        code,
                        detail: "COMMUNITIES length not multiple of 4",
                    });
                }
                classic.reserve_exact(body.len() / 4);
                while body.has_remaining() {
                    classic.push(Community(body.get_u32()));
                }
            }
            type_codes::EXTENDED_COMMUNITIES => {
                if body.len() % 8 != 0 {
                    return Err(WireError::MalformedAttribute {
                        code,
                        detail: "EXTENDED COMMUNITIES length not multiple of 8",
                    });
                }
                extended.reserve_exact(body.len() / 8);
                while body.has_remaining() {
                    let mut oct = [0u8; 8];
                    body.copy_to_slice(&mut oct);
                    extended.push(ExtendedCommunity::from_bytes(oct));
                }
            }
            type_codes::LARGE_COMMUNITIES => {
                if body.len() % 12 != 0 {
                    return Err(WireError::MalformedAttribute {
                        code,
                        detail: "LARGE COMMUNITIES length not multiple of 12",
                    });
                }
                large.reserve_exact(body.len() / 12);
                while body.has_remaining() {
                    let g = body.get_u32();
                    let d1 = body.get_u32();
                    let d2 = body.get_u32();
                    large.push(LargeCommunity::new(g, d1, d2));
                }
            }
            type_codes::MP_REACH_NLRI => {
                if body.remaining() < 5 {
                    return Err(WireError::MalformedAttribute {
                        code,
                        detail: "MP_REACH too short",
                    });
                }
                let afi = Afi::from_code(body.get_u16())
                    .ok_or(WireError::MalformedAttribute { code, detail: "unknown AFI" })?;
                let _safi = body.get_u8();
                let nh_len = body.get_u8() as usize;
                if body.remaining() < nh_len + 1 {
                    return Err(WireError::MalformedAttribute {
                        code,
                        detail: "MP_REACH next hop truncated",
                    });
                }
                if afi == Afi::Ipv6 && (nh_len == 16 || nh_len == 32) {
                    let mut oct = [0u8; 16];
                    let nh_bytes = body.copy_to_bytes(nh_len);
                    oct.copy_from_slice(&nh_bytes[..16]);
                    out.mp_next_hop = Some(Ipv6Addr::from(oct));
                } else {
                    body.advance(nh_len);
                }
                body.advance(1); // reserved
                out.mp_reach = decode_prefix_run(afi, &mut body)?;
            }
            type_codes::MP_UNREACH_NLRI => {
                if body.remaining() < 3 {
                    return Err(WireError::MalformedAttribute {
                        code,
                        detail: "MP_UNREACH too short",
                    });
                }
                let afi = Afi::from_code(body.get_u16())
                    .ok_or(WireError::MalformedAttribute { code, detail: "unknown AFI" })?;
                let _safi = body.get_u8();
                out.mp_unreach = decode_prefix_run(afi, &mut body)?;
            }
            _ => {
                if fl & flags::OPTIONAL == 0 {
                    return Err(WireError::UnrecognizedWellKnown(code));
                }
                // Unknown optional: keep transitive ones (with PARTIAL set,
                // as a forwarding router would), drop non-transitive ones.
                if fl & flags::TRANSITIVE != 0 {
                    out.unknown.push(RawAttribute {
                        flags: fl | flags::PARTIAL,
                        code,
                        value: body.to_vec(),
                    });
                }
            }
        }
    }

    if !(classic.is_empty() && extended.is_empty() && large.is_empty()) {
        out.attrs.communities = CommunitySet::from_unsorted(classic, extended, large);
    }

    // RFC 6793 §4.2.3 reconciliation: prefer the 4-octet path when present.
    if let Some(p4) = as4_path {
        if !cfg.four_octet_as {
            out.attrs.as_path = p4;
        }
    }
    if let Some(a4) = as4_aggregator {
        if !cfg.four_octet_as && out.attrs.aggregator.map(|a| a.asn.is_as_trans()).unwrap_or(false)
        {
            out.attrs.aggregator = Some(a4);
        }
    }

    if let Some(v6) = out.mp_next_hop {
        if !out.has_next_hop {
            out.attrs.next_hop = IpAddr::V6(v6);
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> SessionConfig {
        SessionConfig { four_octet_as: true }
    }

    fn cfg2() -> SessionConfig {
        SessionConfig { four_octet_as: false }
    }

    fn attrs() -> PathAttributes {
        let mut a = PathAttributes {
            as_path: "20205 3356 174 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            med: Some(100),
            ..Default::default()
        };
        a.communities.insert(Community::from_parts(3356, 2065));
        a.communities.insert_large(LargeCommunity::new(3356, 7, 9));
        a
    }

    fn roundtrip(a: &PathAttributes, cfg: &SessionConfig) -> DecodedAttrs {
        let mut buf = BytesMut::new();
        encode_attributes(a, &[], &[], &[], true, cfg, &mut buf);
        let len = buf.len();
        decode_attributes(&mut buf.freeze(), len, cfg).unwrap()
    }

    #[test]
    fn full_roundtrip_four_octet() {
        let a = attrs();
        let d = roundtrip(&a, &cfg4());
        assert_eq!(d.attrs, a);
        assert!(d.has_origin && d.has_as_path && d.has_next_hop);
    }

    #[test]
    fn two_octet_session_uses_as_trans_and_as4_path() {
        let mut a = attrs();
        a.as_path = AsPath::from_asns([Asn(20_205), Asn(196_615), Asn(12_654)]);
        let d = roundtrip(&a, &cfg2());
        // Reconstructed from AS4_PATH: the true path survives.
        assert_eq!(d.attrs.as_path, a.as_path);
    }

    #[test]
    fn two_octet_without_big_asns_no_as4_path() {
        let a = attrs();
        let mut buf = BytesMut::new();
        encode_attributes(&a, &[], &[], &[], true, &cfg2(), &mut buf);
        // No AS4_PATH attribute should be present: scan type codes.
        let raw = buf.freeze();
        let mut seen_as4 = false;
        let mut b = raw.clone();
        while b.has_remaining() {
            let fl = b.get_u8();
            let code = b.get_u8();
            let len = if fl & flags::EXTENDED_LENGTH != 0 {
                b.get_u16() as usize
            } else {
                b.get_u8() as usize
            };
            if code == type_codes::AS4_PATH {
                seen_as4 = true;
            }
            b.advance(len);
        }
        assert!(!seen_as4);
    }

    #[test]
    fn four_octet_aggregator_survives_two_octet_session() {
        // RFC 6793 §4.2.2: the 2-octet AGGREGATOR carries AS_TRANS and an
        // AS4_AGGREGATOR restores the real ASN on decode.
        let mut a = attrs();
        a.aggregator =
            Some(Aggregator { asn: Asn(196_615), router_id: "10.0.0.1".parse().unwrap() });
        let d = roundtrip(&a, &cfg2());
        assert_eq!(d.attrs.aggregator, a.aggregator);
        // A 16-bit aggregator must not grow an AS4_AGGREGATOR.
        let mut small = attrs();
        small.aggregator =
            Some(Aggregator { asn: Asn(65_000), router_id: "10.0.0.1".parse().unwrap() });
        let mut buf = BytesMut::new();
        encode_attributes(&small, &[], &[], &[], true, &cfg2(), &mut buf);
        let mut b = buf.freeze();
        let mut seen_as4_agg = false;
        while b.has_remaining() {
            let fl = b.get_u8();
            let code = b.get_u8();
            let len = if fl & flags::EXTENDED_LENGTH != 0 {
                b.get_u16() as usize
            } else {
                b.get_u8() as usize
            };
            if code == type_codes::AS4_AGGREGATOR {
                seen_as4_agg = true;
            }
            b.advance(len);
        }
        assert!(!seen_as4_agg);
    }

    #[test]
    fn med_and_local_pref_roundtrip() {
        let mut a = attrs();
        a.local_pref = Some(200);
        let d = roundtrip(&a, &cfg4());
        assert_eq!(d.attrs.med, Some(100));
        assert_eq!(d.attrs.local_pref, Some(200));
    }

    #[test]
    fn aggregator_roundtrip_both_widths() {
        let mut a = attrs();
        a.atomic_aggregate = true;
        a.aggregator =
            Some(Aggregator { asn: Asn(65_000), router_id: "10.0.0.1".parse().unwrap() });
        for cfg in [cfg4(), cfg2()] {
            let d = roundtrip(&a, &cfg);
            assert_eq!(d.attrs.aggregator, a.aggregator);
            assert!(d.attrs.atomic_aggregate);
        }
    }

    #[test]
    fn v6_nlri_rides_mp_reach() {
        let mut a = attrs();
        a.next_hop = "2001:db8::1".parse().unwrap();
        let v6: Prefix = "2001:db8:beef::/48".parse().unwrap();
        let mut buf = BytesMut::new();
        encode_attributes(&a, &[v6], &[], &[], false, &cfg4(), &mut buf);
        let len = buf.len();
        let d = decode_attributes(&mut buf.freeze(), len, &cfg4()).unwrap();
        assert_eq!(d.mp_reach, vec![v6]);
        assert_eq!(d.attrs.next_hop, a.next_hop);
        assert!(!d.has_next_hop); // no classic NEXT_HOP attribute
    }

    #[test]
    fn v6_withdrawals_ride_mp_unreach() {
        let a = PathAttributes::default();
        let v6: Prefix = "2001:db8::/32".parse().unwrap();
        let mut buf = BytesMut::new();
        encode_attributes(&a, &[], &[v6], &[], false, &cfg4(), &mut buf);
        let len = buf.len();
        let d = decode_attributes(&mut buf.freeze(), len, &cfg4()).unwrap();
        assert_eq!(d.mp_unreach, vec![v6]);
    }

    #[test]
    fn unknown_optional_transitive_preserved_with_partial() {
        let a = attrs();
        let raw = RawAttribute {
            flags: flags::OPTIONAL | flags::TRANSITIVE,
            code: 99,
            value: vec![1, 2, 3],
        };
        let mut buf = BytesMut::new();
        encode_attributes(&a, &[], &[], std::slice::from_ref(&raw), true, &cfg4(), &mut buf);
        let len = buf.len();
        let d = decode_attributes(&mut buf.freeze(), len, &cfg4()).unwrap();
        assert_eq!(d.unknown.len(), 1);
        assert_eq!(d.unknown[0].code, 99);
        assert_eq!(d.unknown[0].value, vec![1, 2, 3]);
        assert_ne!(d.unknown[0].flags & flags::PARTIAL, 0);
    }

    #[test]
    fn unknown_well_known_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(flags::TRANSITIVE); // well-known (not optional)
        buf.put_u8(77);
        buf.put_u8(1);
        buf.put_u8(0);
        let len = buf.len();
        let err = decode_attributes(&mut buf.freeze(), len, &cfg4()).unwrap_err();
        assert_eq!(err, WireError::UnrecognizedWellKnown(77));
    }

    #[test]
    fn bad_origin_value_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(flags::TRANSITIVE);
        buf.put_u8(type_codes::ORIGIN);
        buf.put_u8(1);
        buf.put_u8(9);
        let len = buf.len();
        assert!(matches!(
            decode_attributes(&mut buf.freeze(), len, &cfg4()),
            Err(WireError::BadValue { .. })
        ));
    }

    #[test]
    fn truncated_attribute_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(flags::TRANSITIVE);
        buf.put_u8(type_codes::ORIGIN);
        buf.put_u8(5); // claims 5 bytes, provides 1
        buf.put_u8(0);
        let len = buf.len();
        assert!(matches!(
            decode_attributes(&mut buf.freeze(), len, &cfg4()),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn communities_bad_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(flags::OPTIONAL | flags::TRANSITIVE);
        buf.put_u8(type_codes::COMMUNITIES);
        buf.put_u8(3);
        buf.put_slice(&[0, 1, 2]);
        let len = buf.len();
        assert!(matches!(
            decode_attributes(&mut buf.freeze(), len, &cfg4()),
            Err(WireError::MalformedAttribute { .. })
        ));
    }

    #[test]
    fn long_as_path_splits_segments() {
        // 300 ASNs forces two wire segments of ≤255.
        let path = AsPath::from_asns((1..=300u32).map(Asn));
        let body = encode_as_path_body(&path, true);
        let decoded = decode_as_path_body(body.freeze(), true).unwrap();
        assert_eq!(decoded.asns().count(), 300);
        assert_eq!(decoded.origin(), Some(Asn(300)));
    }

    #[test]
    fn extended_length_attribute_roundtrips() {
        // >255 communities forces the extended-length flag.
        let mut a = PathAttributes {
            as_path: "1 2".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        for i in 0..100u16 {
            a.communities.insert(Community::from_parts(3356, 2500 + i));
        }
        let d = roundtrip(&a, &cfg4());
        assert_eq!(d.attrs.communities, a.communities);
    }
}
