//! # kcc-bgp-wire — RFC 4271 BGP message codec
//!
//! Binary encoder/decoder for the four BGP message types, written against
//! the [`bytes`] crate. The MRT crate layers the RouteViews/RIS archive
//! format on top of this codec, so synthetic archives are bit-compatible
//! with what a real collector would store.
//!
//! ## Implemented
//!
//! * Message header with marker/length/type validation.
//! * OPEN with capabilities: multiprotocol (RFC 4760), 4-octet AS
//!   (RFC 6793), route refresh (RFC 2918).
//! * UPDATE with ORIGIN, AS_PATH (2- and 4-octet encodings), NEXT_HOP,
//!   MULTI_EXIT_DISC, LOCAL_PREF, ATOMIC_AGGREGATE, AGGREGATOR,
//!   COMMUNITIES (RFC 1997), EXTENDED COMMUNITIES (RFC 4360),
//!   LARGE COMMUNITIES (RFC 8092), MP_REACH_NLRI / MP_UNREACH_NLRI
//!   (RFC 4760) for IPv6.
//! * NOTIFICATION with the RFC 4271 code registry.
//! * KEEPALIVE.
//! * ROUTE-REFRESH (RFC 2918) — a speaker that offers the capability
//!   must accept the message.
//! * RFC 7606-style error classification on decode ([`WireError`]
//!   distinguishes session-reset from treat-as-withdraw conditions).
//!
//! ## Omitted
//!
//! * ADD-PATH (RFC 7911) — collector peers in the studied period
//!   overwhelmingly did not negotiate it.
//! * Graceful restart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod error;
pub mod message;
pub mod nlri;
pub mod notification;
pub mod open;
pub mod update;

pub use error::WireError;
pub use message::{
    decode_message, encode_message, encode_update, Message, MessageType, RouteRefresh,
    SessionConfig,
};
pub use notification::{Notification, NotificationCode, OpenErrorSubcode};
pub use open::{Capability, OpenMessage};
pub use update::UpdatePacket;

/// BGP protocol version.
pub const BGP_VERSION: u8 = 4;
/// Size of the fixed message header (marker + length + type).
pub const HEADER_LEN: usize = 19;
/// Maximum BGP message size (RFC 4271).
pub const MAX_MESSAGE_LEN: usize = 4096;
