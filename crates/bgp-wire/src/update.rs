//! UPDATE messages: the wire packet and its per-prefix explosion.

use std::sync::Arc;

use bytes::{Buf, BufMut, BytesMut};
use kcc_bgp_types::{MessageKind, PathAttributes, Prefix, RouteUpdate};

use crate::attr::{decode_attributes, encode_attributes, RawAttribute};
use crate::error::WireError;
use crate::message::SessionConfig;
use crate::nlri::{decode_prefix, encode_prefix, Afi};

/// A wire-level UPDATE: possibly many withdrawn routes and many announced
/// prefixes sharing one attribute set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdatePacket {
    /// Withdrawn prefixes (both families; v6 ones ride MP_UNREACH).
    pub withdrawn: Vec<Prefix>,
    /// Announced prefixes (both families; v6 ones ride MP_REACH).
    pub nlri: Vec<Prefix>,
    /// Attributes for the announced prefixes. `None` for pure withdrawals.
    pub attrs: Option<PathAttributes>,
    /// Unrecognized attributes preserved across hops.
    pub unknown_attrs: Vec<RawAttribute>,
}

impl UpdatePacket {
    /// A packet announcing one prefix.
    pub fn announce(prefix: Prefix, attrs: PathAttributes) -> Self {
        UpdatePacket { nlri: vec![prefix], attrs: Some(attrs), ..Default::default() }
    }

    /// A packet withdrawing one prefix.
    pub fn withdraw(prefix: Prefix) -> Self {
        UpdatePacket { withdrawn: vec![prefix], ..Default::default() }
    }

    /// Streams the packet's per-prefix [`RouteUpdate`]s in wire order
    /// (withdrawals first, then announcements), stamping each with
    /// `time_us`. The attribute set is deep-copied **once** per packet and
    /// shared across every announced prefix behind one `Arc` — the
    /// many-prefixes-one-attribute shape of real UPDATEs becomes pointer
    /// copies downstream.
    pub fn route_updates(&self, time_us: u64) -> impl Iterator<Item = RouteUpdate> + '_ {
        let shared = self.attrs.as_ref().map(|a| Arc::new(a.clone()));
        self.withdrawn.iter().map(move |p| RouteUpdate::withdraw(time_us, *p)).chain(
            self.nlri.iter().filter_map(move |p| {
                shared.as_ref().map(|a| RouteUpdate::announce(time_us, *p, Arc::clone(a)))
            }),
        )
    }

    /// Explodes the packet into a `Vec` of per-prefix updates. Prefer
    /// iterating [`route_updates`](Self::route_updates) on hot paths.
    pub fn explode(&self, time_us: u64) -> Vec<RouteUpdate> {
        self.route_updates(time_us).collect()
    }

    /// Consuming [`route_updates`](Self::route_updates): moves the
    /// decoded attribute set straight into its shared `Arc` — no deep
    /// copy at all. The right call when the packet came off the wire and
    /// is not needed again.
    pub fn into_route_updates(self, time_us: u64) -> impl Iterator<Item = RouteUpdate> {
        let UpdatePacket { withdrawn, nlri, attrs, .. } = self;
        let shared = attrs.map(Arc::new);
        withdrawn.into_iter().map(move |p| RouteUpdate::withdraw(time_us, p)).chain(
            nlri.into_iter().filter_map(move |p| {
                shared.as_ref().map(|a| RouteUpdate::announce(time_us, p, Arc::clone(a)))
            }),
        )
    }

    /// Builds a packet from one logical update.
    pub fn from_route_update(u: &RouteUpdate) -> Self {
        match &u.kind {
            MessageKind::Announcement(attrs) => Self::announce(u.prefix, (**attrs).clone()),
            MessageKind::Withdrawal => Self::withdraw(u.prefix),
        }
    }

    /// Encodes the UPDATE body (without message header).
    pub fn encode_body(&self, cfg: &SessionConfig, buf: &mut BytesMut) {
        let (v4_wd, v6_wd): (Vec<Prefix>, Vec<Prefix>) =
            self.withdrawn.iter().copied().partition(|p| p.is_ipv4());
        let (v4_ann, v6_ann): (Vec<Prefix>, Vec<Prefix>) =
            self.nlri.iter().copied().partition(|p| p.is_ipv4());

        let mut wd = BytesMut::new();
        for p in &v4_wd {
            encode_prefix(p, &mut wd);
        }
        buf.put_u16(wd.len() as u16);
        buf.put_slice(&wd);

        let mut attrs_buf = BytesMut::new();
        let need_attrs = self.attrs.is_some() || !v6_wd.is_empty();
        if need_attrs {
            let default_attrs;
            let attrs = match &self.attrs {
                Some(a) => a,
                None => {
                    default_attrs = PathAttributes::default();
                    &default_attrs
                }
            };
            if self.attrs.is_some() {
                encode_attributes(
                    attrs,
                    &v6_ann,
                    &v6_wd,
                    &self.unknown_attrs,
                    !v4_ann.is_empty(),
                    cfg,
                    &mut attrs_buf,
                );
            } else {
                // Pure v6 withdrawal: only MP_UNREACH, no mandatory attrs.
                crate::attr::encode_attributes_withdraw_only(&v6_wd, &mut attrs_buf);
            }
        }
        buf.put_u16(attrs_buf.len() as u16);
        buf.put_slice(&attrs_buf);

        for p in &v4_ann {
            encode_prefix(p, buf);
        }
    }

    /// Decodes an UPDATE body of exactly `body_len` bytes.
    pub fn decode_body<B: Buf>(
        buf: &mut B,
        body_len: usize,
        cfg: &SessionConfig,
    ) -> Result<Self, WireError> {
        if buf.remaining() < body_len {
            return Err(WireError::Truncated { what: "UPDATE body" });
        }
        let mut body = buf.copy_to_bytes(body_len);

        if body.remaining() < 2 {
            return Err(WireError::Truncated { what: "withdrawn routes length" });
        }
        let wd_len = body.get_u16() as usize;
        if body.remaining() < wd_len {
            return Err(WireError::Truncated { what: "withdrawn routes" });
        }
        let mut wd_buf = body.copy_to_bytes(wd_len);
        let mut withdrawn = Vec::new();
        while wd_buf.has_remaining() {
            withdrawn.push(decode_prefix(Afi::Ipv4, &mut wd_buf)?);
        }

        if body.remaining() < 2 {
            return Err(WireError::Truncated { what: "attributes length" });
        }
        let attr_len = body.get_u16() as usize;
        let decoded = decode_attributes(&mut body, attr_len, cfg)?;

        let mut nlri = Vec::new();
        while body.has_remaining() {
            nlri.push(decode_prefix(Afi::Ipv4, &mut body)?);
        }
        nlri.extend(decoded.mp_reach.iter().copied());
        withdrawn.extend(decoded.mp_unreach.iter().copied());

        let has_announcements = !nlri.is_empty();
        if has_announcements {
            // RFC 4271 §6.3: ORIGIN/AS_PATH/NEXT_HOP mandatory with NLRI.
            if !decoded.has_origin {
                return Err(WireError::MissingMandatoryAttribute("ORIGIN"));
            }
            if !decoded.has_as_path {
                return Err(WireError::MissingMandatoryAttribute("AS_PATH"));
            }
            let v4_announced = nlri.iter().any(|p| p.is_ipv4());
            if v4_announced && !decoded.has_next_hop {
                return Err(WireError::MissingMandatoryAttribute("NEXT_HOP"));
            }
        }

        Ok(UpdatePacket {
            withdrawn,
            nlri,
            attrs: if has_announcements { Some(decoded.attrs) } else { None },
            unknown_attrs: decoded.unknown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::Community;

    fn cfg() -> SessionConfig {
        SessionConfig { four_octet_as: true }
    }

    fn attrs() -> PathAttributes {
        let mut a = PathAttributes {
            as_path: "20205 3356 174 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        a.communities.insert(Community::from_parts(3356, 2501));
        a
    }

    fn roundtrip(p: &UpdatePacket) -> UpdatePacket {
        let mut buf = BytesMut::new();
        p.encode_body(&cfg(), &mut buf);
        let len = buf.len();
        UpdatePacket::decode_body(&mut buf.freeze(), len, &cfg()).unwrap()
    }

    #[test]
    fn announce_roundtrips() {
        let p = UpdatePacket::announce("84.205.64.0/24".parse().unwrap(), attrs());
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn withdraw_roundtrips() {
        let p = UpdatePacket::withdraw("84.205.64.0/24".parse().unwrap());
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn v6_announce_roundtrips() {
        let mut a = attrs();
        a.next_hop = "2001:db8::1".parse().unwrap();
        let p = UpdatePacket::announce("2001:db8:beef::/48".parse().unwrap(), a);
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn v6_withdraw_roundtrips() {
        let p = UpdatePacket::withdraw("2001:db8::/32".parse().unwrap());
        let d = roundtrip(&p);
        assert_eq!(d.withdrawn, p.withdrawn);
        assert!(d.attrs.is_none());
    }

    #[test]
    fn mixed_family_packet() {
        let mut p = UpdatePacket::announce("84.205.64.0/24".parse().unwrap(), attrs());
        p.nlri.push("2001:db8::/32".parse().unwrap());
        p.withdrawn.push("10.9.0.0/16".parse().unwrap());
        p.withdrawn.push("2001:db8:dead::/48".parse().unwrap());
        let d = roundtrip(&p);
        assert_eq!(d.nlri.len(), 2);
        assert_eq!(d.withdrawn.len(), 2);
    }

    #[test]
    fn explode_orders_withdrawals_first() {
        let mut p = UpdatePacket::announce("84.205.64.0/24".parse().unwrap(), attrs());
        p.withdrawn.push("10.9.0.0/16".parse().unwrap());
        let updates = p.explode(42);
        assert_eq!(updates.len(), 2);
        assert!(updates[0].is_withdrawal());
        assert!(updates[1].is_announcement());
        assert!(updates.iter().all(|u| u.time_us == 42));
    }

    #[test]
    fn explode_shares_one_attribute_allocation() {
        let mut p = UpdatePacket::announce("84.205.64.0/24".parse().unwrap(), attrs());
        p.nlri.push("84.205.65.0/24".parse().unwrap());
        p.nlri.push("84.205.66.0/24".parse().unwrap());
        let updates = p.explode(7);
        let handles: Vec<_> = updates.iter().filter_map(|u| u.attributes_shared()).collect();
        assert_eq!(handles.len(), 3);
        assert!(
            handles.windows(2).all(|w| Arc::ptr_eq(w[0], w[1])),
            "all announcements in one packet share a single Arc"
        );
    }

    #[test]
    fn missing_mandatory_attr_detected() {
        // Hand-craft: NLRI present but no attributes at all.
        let mut buf = BytesMut::new();
        buf.put_u16(0); // withdrawn len
        buf.put_u16(0); // attr len
        encode_prefix(&"10.0.0.0/8".parse().unwrap(), &mut buf);
        let len = buf.len();
        let err = UpdatePacket::decode_body(&mut buf.freeze(), len, &cfg()).unwrap_err();
        assert_eq!(err, WireError::MissingMandatoryAttribute("ORIGIN"));
    }

    #[test]
    fn from_route_update_both_kinds() {
        let ru = RouteUpdate::announce(1, "10.0.0.0/8".parse().unwrap(), attrs());
        assert_eq!(UpdatePacket::from_route_update(&ru).nlri.len(), 1);
        let rw = RouteUpdate::withdraw(1, "10.0.0.0/8".parse().unwrap());
        assert_eq!(UpdatePacket::from_route_update(&rw).withdrawn.len(), 1);
    }

    #[test]
    fn empty_update_is_legal() {
        // An UPDATE with nothing in it (used as end-of-RIB marker).
        let p = UpdatePacket::default();
        let d = roundtrip(&p);
        assert!(d.withdrawn.is_empty() && d.nlri.is_empty() && d.attrs.is_none());
    }
}
