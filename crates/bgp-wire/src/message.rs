//! Top-level message framing: header, type dispatch, session configuration.

use bytes::{Buf, BufMut, BytesMut};

use crate::error::WireError;
use crate::notification::Notification;
use crate::open::OpenMessage;
use crate::update::UpdatePacket;
use crate::{HEADER_LEN, MAX_MESSAGE_LEN};

/// Per-session codec configuration, fixed at OPEN negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// True if both speakers announced the 4-octet AS capability
    /// (RFC 6793); controls AS_PATH/AGGREGATOR width.
    pub four_octet_as: bool,
}

impl Default for SessionConfig {
    /// Modern sessions negotiate 4-octet ASNs.
    fn default() -> Self {
        SessionConfig { four_octet_as: true }
    }
}

/// BGP message type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    /// OPEN (1).
    Open,
    /// UPDATE (2).
    Update,
    /// NOTIFICATION (3).
    Notification,
    /// KEEPALIVE (4).
    Keepalive,
    /// ROUTE-REFRESH (5, RFC 2918).
    RouteRefresh,
}

impl MessageType {
    /// Wire value.
    pub const fn code(self) -> u8 {
        match self {
            MessageType::Open => 1,
            MessageType::Update => 2,
            MessageType::Notification => 3,
            MessageType::Keepalive => 4,
            MessageType::RouteRefresh => 5,
        }
    }

    /// From wire value.
    pub const fn from_code(c: u8) -> Option<Self> {
        match c {
            1 => Some(MessageType::Open),
            2 => Some(MessageType::Update),
            3 => Some(MessageType::Notification),
            4 => Some(MessageType::Keepalive),
            5 => Some(MessageType::RouteRefresh),
            _ => None,
        }
    }
}

/// A ROUTE-REFRESH request (RFC 2918 §3): please re-advertise this
/// AFI/SAFI. A speaker that offers the capability (our standard OPEN
/// does) must accept the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRefresh {
    /// Address family (raw code; 1 = IPv4, 2 = IPv6).
    pub afi: u16,
    /// Subsequent address family (1 = unicast).
    pub safi: u8,
}

impl RouteRefresh {
    /// Encodes the 4-byte body.
    pub fn encode_body(&self, buf: &mut BytesMut) {
        buf.put_u16(self.afi);
        buf.put_u8(0); // reserved
        buf.put_u8(self.safi);
    }

    /// Decodes a 4-byte body.
    pub fn decode_body<B: Buf>(buf: &mut B, len: usize) -> Result<Self, WireError> {
        if len != 4 {
            return Err(WireError::BadLength(len as u16));
        }
        let afi = buf.get_u16();
        buf.advance(1); // reserved
        let safi = buf.get_u8();
        Ok(RouteRefresh { afi, safi })
    }
}

/// A decoded BGP message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// OPEN.
    Open(OpenMessage),
    /// UPDATE.
    Update(UpdatePacket),
    /// NOTIFICATION.
    Notification(Notification),
    /// KEEPALIVE.
    Keepalive,
    /// ROUTE-REFRESH.
    RouteRefresh(RouteRefresh),
}

impl Message {
    /// This message's type code.
    pub fn message_type(&self) -> MessageType {
        match self {
            Message::Open(_) => MessageType::Open,
            Message::Update(_) => MessageType::Update,
            Message::Notification(_) => MessageType::Notification,
            Message::Keepalive => MessageType::Keepalive,
            Message::RouteRefresh(_) => MessageType::RouteRefresh,
        }
    }
}

/// Wraps an encoded body in the fixed header (marker, length, type).
fn frame(mtype: MessageType, body: &[u8], buf: &mut BytesMut) {
    buf.put_slice(&[0xFF; 16]);
    buf.put_u16((HEADER_LEN + body.len()) as u16);
    buf.put_u8(mtype.code());
    buf.put_slice(body);
}

/// Encodes a complete message (header + body) into `buf`.
pub fn encode_message(msg: &Message, cfg: &SessionConfig, buf: &mut BytesMut) {
    let mut body = BytesMut::new();
    match msg {
        Message::Open(o) => o.encode_body(&mut body),
        Message::Update(u) => u.encode_body(cfg, &mut body),
        Message::Notification(n) => n.encode_body(&mut body),
        Message::Keepalive => {}
        Message::RouteRefresh(r) => r.encode_body(&mut body),
    }
    frame(msg.message_type(), &body, buf);
}

/// Encodes a complete UPDATE message from a borrowed packet — the
/// hot-path variant that avoids cloning the packet into
/// [`Message::Update`]. Byte-identical to
/// `encode_message(&Message::Update(packet.clone()), …)`.
pub fn encode_update(packet: &UpdatePacket, cfg: &SessionConfig, buf: &mut BytesMut) {
    let mut body = BytesMut::new();
    packet.encode_body(cfg, &mut body);
    frame(MessageType::Update, &body, buf);
}

/// Decodes one complete message from `buf`, consuming exactly its bytes.
pub fn decode_message<B: Buf>(buf: &mut B, cfg: &SessionConfig) -> Result<Message, WireError> {
    if buf.remaining() < HEADER_LEN {
        return Err(WireError::Truncated { what: "message header" });
    }
    let mut marker = [0u8; 16];
    buf.copy_to_slice(&mut marker);
    if marker != [0xFF; 16] {
        return Err(WireError::BadMarker);
    }
    let len = buf.get_u16();
    if (len as usize) < HEADER_LEN || len as usize > MAX_MESSAGE_LEN {
        return Err(WireError::BadLength(len));
    }
    let mtype = buf.get_u8();
    let body_len = len as usize - HEADER_LEN;
    if buf.remaining() < body_len {
        return Err(WireError::Truncated { what: "message body" });
    }
    match MessageType::from_code(mtype).ok_or(WireError::UnknownMessageType(mtype))? {
        MessageType::Open => {
            let mut body = buf.copy_to_bytes(body_len);
            Ok(Message::Open(OpenMessage::decode_body(&mut body)?))
        }
        MessageType::Update => Ok(Message::Update(UpdatePacket::decode_body(buf, body_len, cfg)?)),
        MessageType::Notification => {
            Ok(Message::Notification(Notification::decode_body(buf, body_len)?))
        }
        MessageType::Keepalive => {
            if body_len != 0 {
                return Err(WireError::BadLength(len));
            }
            Ok(Message::Keepalive)
        }
        MessageType::RouteRefresh => {
            Ok(Message::RouteRefresh(RouteRefresh::decode_body(buf, body_len)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, PathAttributes};

    fn cfg() -> SessionConfig {
        SessionConfig::default()
    }

    fn roundtrip(m: &Message) -> Message {
        let mut buf = BytesMut::new();
        encode_message(m, &cfg(), &mut buf);
        decode_message(&mut buf.freeze(), &cfg()).unwrap()
    }

    #[test]
    fn keepalive_is_19_bytes() {
        let mut buf = BytesMut::new();
        encode_message(&Message::Keepalive, &cfg(), &mut buf);
        assert_eq!(buf.len(), 19);
        assert_eq!(roundtrip(&Message::Keepalive), Message::Keepalive);
    }

    #[test]
    fn open_roundtrips_via_framing() {
        let m = Message::Open(OpenMessage::standard(Asn(20_205), "10.0.0.1".parse().unwrap(), 180));
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn update_roundtrips_via_framing() {
        let attrs = PathAttributes {
            as_path: "1 2 3".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let m = Message::Update(UpdatePacket::announce("10.0.0.0/8".parse().unwrap(), attrs));
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn notification_roundtrips_via_framing() {
        let m = Message::Notification(Notification::cease_admin_shutdown());
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn encode_update_matches_encode_message() {
        let attrs = PathAttributes {
            as_path: "1 2 3".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let packet = UpdatePacket::announce("10.0.0.0/8".parse().unwrap(), attrs);
        let mut borrowed = BytesMut::new();
        encode_update(&packet, &cfg(), &mut borrowed);
        let mut owned = BytesMut::new();
        encode_message(&Message::Update(packet), &cfg(), &mut owned);
        assert_eq!(&borrowed[..], &owned[..]);
    }

    #[test]
    fn route_refresh_roundtrips_via_framing() {
        let m = Message::RouteRefresh(RouteRefresh { afi: 1, safi: 1 });
        assert_eq!(roundtrip(&m), m);
        let mut buf = BytesMut::new();
        encode_message(&m, &cfg(), &mut buf);
        assert_eq!(buf.len(), 23, "19-byte header + 4-byte body");
    }

    #[test]
    fn route_refresh_bad_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0xFF; 16]);
        buf.put_u16(21); // 2 bytes of body, must be 4
        buf.put_u8(5);
        buf.put_u16(1);
        assert!(matches!(decode_message(&mut buf.freeze(), &cfg()), Err(WireError::BadLength(_))));
    }

    #[test]
    fn bad_marker_rejected() {
        let mut buf = BytesMut::new();
        encode_message(&Message::Keepalive, &cfg(), &mut buf);
        buf[0] = 0;
        assert_eq!(decode_message(&mut buf.freeze(), &cfg()), Err(WireError::BadMarker));
    }

    #[test]
    fn bad_length_rejected() {
        let mut buf = BytesMut::new();
        encode_message(&Message::Keepalive, &cfg(), &mut buf);
        buf[16] = 0xFF;
        buf[17] = 0xFF; // length 65535 > 4096
        assert!(matches!(decode_message(&mut buf.freeze(), &cfg()), Err(WireError::BadLength(_))));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = BytesMut::new();
        encode_message(&Message::Keepalive, &cfg(), &mut buf);
        buf[18] = 9;
        assert_eq!(
            decode_message(&mut buf.freeze(), &cfg()),
            Err(WireError::UnknownMessageType(9))
        );
    }

    #[test]
    fn keepalive_with_body_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0xFF; 16]);
        buf.put_u16(20); // 1 byte of body
        buf.put_u8(4);
        buf.put_u8(0);
        assert!(matches!(decode_message(&mut buf.freeze(), &cfg()), Err(WireError::BadLength(_))));
    }

    #[test]
    fn truncated_stream_detected() {
        let mut buf = BytesMut::new();
        encode_message(&Message::Keepalive, &cfg(), &mut buf);
        let short = buf.freeze().slice(0..10);
        assert!(matches!(
            decode_message(&mut short.clone(), &cfg()),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn back_to_back_messages_decode_in_order() {
        let mut buf = BytesMut::new();
        encode_message(&Message::Keepalive, &cfg(), &mut buf);
        let m2 = Message::Update(UpdatePacket::withdraw("10.0.0.0/8".parse().unwrap()));
        encode_message(&m2, &cfg(), &mut buf);
        let mut stream = buf.freeze();
        assert_eq!(decode_message(&mut stream, &cfg()).unwrap(), Message::Keepalive);
        assert_eq!(decode_message(&mut stream, &cfg()).unwrap(), m2);
        assert!(!stream.has_remaining());
    }
}
