//! Import and export policy chains.
//!
//! Policies are the paper's experimental variables: where communities are
//! added (geo-tagging on ingress), and where they are removed (ingress vs.
//! egress cleaning — the difference between Exp3 and Exp4).

use kcc_bgp_types::{Community, GeoTag, PathAttributes};
use kcc_topology::RouteSource;

/// Policy applied to routes *received* on a session, before they enter the
/// Adj-RIB-In. Order of operations: clean → strip own stale tags → tag →
/// add → local-pref.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImportPolicy {
    /// Remove all communities on ingress (the paper's Exp4 configuration).
    pub clean_communities: bool,
    /// Add geolocation communities for the ingress router's location,
    /// owned by this 16-bit ASN (strips the ASN's previous geo tags
    /// first). The `GeoTag` is filled in per ingress router.
    pub geo_tag: Option<(u16, GeoTag)>,
    /// Explicitly added communities (the lab's `Y:300` / `Y:400` tags).
    pub add_communities: Vec<Community>,
    /// Local preference to set (Gao–Rexford by neighbor kind).
    pub local_pref: Option<u32>,
}

impl ImportPolicy {
    /// The conventional eBGP import policy for a neighbor of the given
    /// kind: Gao–Rexford local-pref, nothing else.
    pub fn for_neighbor(kind: RouteSource) -> Self {
        ImportPolicy { local_pref: Some(kind.conventional_local_pref()), ..Default::default() }
    }

    /// Applies the policy in place.
    pub fn apply(&self, attrs: &mut PathAttributes) {
        if self.clean_communities {
            attrs.communities.clear();
        }
        if let Some((asn16, tag)) = self.geo_tag {
            // A tagger owns its namespace: refresh rather than accumulate.
            attrs.communities.strip_owned_by(asn16);
            tag.tag(asn16, &mut attrs.communities);
        }
        for c in &self.add_communities {
            attrs.communities.insert(*c);
        }
        if let Some(lp) = self.local_pref {
            attrs.local_pref = Some(lp);
        }
    }
}

/// Policy applied to routes *sent* on a session, after the standard eBGP
/// egress transformations (prepend, next-hop-self, local-pref strip).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExportPolicy {
    /// Remove all communities on egress (the paper's Exp3 configuration).
    pub clean_communities: bool,
    /// Communities added on egress (action signaling to the neighbor).
    pub add_communities: Vec<Community>,
    /// MED to set toward this neighbor.
    pub med: Option<u32>,
    /// Extra prepends of our own ASN (beyond the mandatory one).
    pub extra_prepends: u8,
}

impl ExportPolicy {
    /// Applies the policy in place.
    pub fn apply(&self, attrs: &mut PathAttributes) {
        if self.clean_communities {
            attrs.communities.clear();
        }
        for c in &self.add_communities {
            attrs.communities.insert(*c);
        }
        if let Some(m) = self.med {
            attrs.med = Some(m);
        }
        // extra_prepends is applied by the router (it owns its ASN).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::CommunitySet;

    fn attrs_with(comms: &[(u16, u16)]) -> PathAttributes {
        PathAttributes {
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        }
    }

    #[test]
    fn ingress_cleaning_wipes_everything() {
        let p = ImportPolicy { clean_communities: true, ..Default::default() };
        let mut a = attrs_with(&[(3356, 2501), (174, 100)]);
        p.apply(&mut a);
        assert!(a.communities.is_empty());
    }

    #[test]
    fn geo_tag_refreshes_own_namespace() {
        let tag = GeoTag::new(4, 10, 80);
        let p = ImportPolicy { geo_tag: Some((3356, tag)), ..Default::default() };
        // Route arrives with a stale 3356 city tag and a foreign tag.
        let mut a = attrs_with(&[(174, 2501)]);
        GeoTag::new(5, 20, 160).tag(3356, &mut a.communities);
        p.apply(&mut a);
        // Foreign tag kept, own tags replaced with the new location.
        assert!(a.communities.contains(&Community::from_parts(174, 2501)));
        let own: Vec<_> =
            a.communities.iter_classic().filter(|c| c.asn_part() == 3356).copied().collect();
        assert_eq!(own.len(), 3);
        let expected = tag.to_communities(3356);
        for c in expected {
            assert!(a.communities.contains(&c));
        }
    }

    #[test]
    fn cleaning_then_tagging_composes() {
        // An AS that cleans on ingress AND tags: result is only its tags.
        let tag = GeoTag::new(4, 10, 80);
        let p = ImportPolicy {
            clean_communities: true,
            geo_tag: Some((20_000, tag)),
            ..Default::default()
        };
        let mut a = attrs_with(&[(174, 2501), (3356, 901)]);
        p.apply(&mut a);
        assert_eq!(a.communities.len(), 3);
        assert!(a.communities.iter_classic().all(|c| c.asn_part() == 20_000));
    }

    #[test]
    fn explicit_communities_and_local_pref() {
        let p = ImportPolicy {
            add_communities: vec![Community::from_parts(65_000, 300)],
            local_pref: Some(300),
            ..Default::default()
        };
        let mut a = PathAttributes::default();
        p.apply(&mut a);
        assert!(a.communities.contains(&Community::from_parts(65_000, 300)));
        assert_eq!(a.local_pref, Some(300));
    }

    #[test]
    fn neighbor_policy_sets_gao_rexford_pref() {
        assert_eq!(ImportPolicy::for_neighbor(RouteSource::Customer).local_pref, Some(300));
        assert_eq!(ImportPolicy::for_neighbor(RouteSource::Provider).local_pref, Some(100));
    }

    #[test]
    fn egress_cleaning() {
        let p = ExportPolicy { clean_communities: true, ..Default::default() };
        let mut a = attrs_with(&[(3356, 2501)]);
        p.apply(&mut a);
        assert!(a.communities.is_empty());
    }

    #[test]
    fn egress_add_and_med() {
        let p = ExportPolicy {
            add_communities: vec![Community::from_parts(65_535, 666)],
            med: Some(10),
            ..Default::default()
        };
        let mut a = PathAttributes::default();
        p.apply(&mut a);
        assert_eq!(a.med, Some(10));
        assert_eq!(a.communities.len(), 1);
    }
}
