//! Import and export policy chains.
//!
//! Policies are the paper's experimental variables: where communities are
//! added (geo-tagging on ingress), and where they are removed (ingress vs.
//! egress cleaning — the difference between Exp3 and Exp4).

use std::sync::Arc;

use kcc_bgp_types::{AttrStore, Community, GeoTag, PathAttributes};
use kcc_topology::RouteSource;

/// Policy applied to routes *received* on a session, before they enter the
/// Adj-RIB-In. Order of operations: clean → strip own stale tags → tag →
/// add → local-pref.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImportPolicy {
    /// Remove all communities on ingress (the paper's Exp4 configuration).
    pub clean_communities: bool,
    /// Add geolocation communities for the ingress router's location,
    /// owned by this 16-bit ASN (strips the ASN's previous geo tags
    /// first). The `GeoTag` is filled in per ingress router.
    pub geo_tag: Option<(u16, GeoTag)>,
    /// Explicitly added communities (the lab's `Y:300` / `Y:400` tags).
    pub add_communities: Vec<Community>,
    /// Local preference to set (Gao–Rexford by neighbor kind).
    pub local_pref: Option<u32>,
}

impl ImportPolicy {
    /// The conventional eBGP import policy for a neighbor of the given
    /// kind: Gao–Rexford local-pref, nothing else.
    pub fn for_neighbor(kind: RouteSource) -> Self {
        ImportPolicy { local_pref: Some(kind.conventional_local_pref()), ..Default::default() }
    }

    /// Applies the policy in place.
    pub fn apply(&self, attrs: &mut PathAttributes) {
        if self.clean_communities {
            attrs.communities.clear();
        }
        if let Some((asn16, tag)) = self.geo_tag {
            // A tagger owns its namespace: refresh rather than accumulate.
            attrs.communities.strip_owned_by(asn16);
            tag.tag(asn16, &mut attrs.communities);
        }
        for c in &self.add_communities {
            attrs.communities.insert(*c);
        }
        if let Some(lp) = self.local_pref {
            attrs.local_pref = Some(lp);
        }
    }

    /// True when applying the policy to `attrs` would change nothing —
    /// the no-op probe behind [`apply_interned`](Self::apply_interned).
    fn is_noop_for(&self, attrs: &PathAttributes) -> bool {
        if self.clean_communities && !attrs.communities.is_empty() {
            return false;
        }
        if self.geo_tag.is_some() {
            // Tagging always rewrites the tagger's namespace; treating it
            // as a change unconditionally is cheaper than re-deriving the
            // tag set to compare.
            return false;
        }
        if !self.add_communities.iter().all(|c| attrs.communities.contains(c)) {
            return false;
        }
        self.local_pref.is_none_or(|lp| attrs.local_pref == Some(lp))
    }

    /// Applies the policy on the interned path: when the policy would not
    /// change `attrs` at all, the same `Arc` comes back (identity
    /// preserved, zero allocation); otherwise the result is deep-cloned
    /// once, rewritten, and collapsed onto the store's canonical handle
    /// when a value-equal set is already interned.
    ///
    /// The returned handle carries **no** store refcount of its own —
    /// callers that retain it in a RIB slot must `acquire` it there.
    pub fn apply_interned(
        &self,
        attrs: &Arc<PathAttributes>,
        store: &AttrStore,
    ) -> Arc<PathAttributes> {
        if self.is_noop_for(attrs) {
            return Arc::clone(attrs);
        }
        let mut rewritten = PathAttributes::clone(attrs);
        self.apply(&mut rewritten);
        match store.canonical(&rewritten) {
            Some(shared) => shared,
            None => Arc::new(rewritten),
        }
    }
}

/// Policy applied to routes *sent* on a session, after the standard eBGP
/// egress transformations (prepend, next-hop-self, local-pref strip).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExportPolicy {
    /// Remove all communities on egress (the paper's Exp3 configuration).
    pub clean_communities: bool,
    /// Communities added on egress (action signaling to the neighbor).
    pub add_communities: Vec<Community>,
    /// MED to set toward this neighbor.
    pub med: Option<u32>,
    /// Extra prepends of our own ASN (beyond the mandatory one).
    pub extra_prepends: u8,
    /// Action communities honored on this session: a route carrying any of
    /// these is **not announced** toward this neighbor (the operator's
    /// "do-not-announce toward X" traffic-engineering knob — see
    /// ROADMAP 4b). Checked before all other egress transformations.
    pub deny_communities: Vec<Community>,
}

impl ExportPolicy {
    /// True when `attrs` carries one of this session's deny communities —
    /// the route must be withheld from this neighbor.
    pub fn denies(&self, attrs: &PathAttributes) -> bool {
        self.deny_communities.iter().any(|c| attrs.communities.contains(c))
    }

    /// Applies the policy in place.
    pub fn apply(&self, attrs: &mut PathAttributes) {
        if self.clean_communities {
            attrs.communities.clear();
        }
        for c in &self.add_communities {
            attrs.communities.insert(*c);
        }
        if let Some(m) = self.med {
            attrs.med = Some(m);
        }
        // extra_prepends is applied by the router (it owns its ASN).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::CommunitySet;

    fn attrs_with(comms: &[(u16, u16)]) -> PathAttributes {
        PathAttributes {
            communities: CommunitySet::from_classic(
                comms.iter().map(|&(a, v)| Community::from_parts(a, v)),
            ),
            ..Default::default()
        }
    }

    #[test]
    fn ingress_cleaning_wipes_everything() {
        let p = ImportPolicy { clean_communities: true, ..Default::default() };
        let mut a = attrs_with(&[(3356, 2501), (174, 100)]);
        p.apply(&mut a);
        assert!(a.communities.is_empty());
    }

    #[test]
    fn geo_tag_refreshes_own_namespace() {
        let tag = GeoTag::new(4, 10, 80);
        let p = ImportPolicy { geo_tag: Some((3356, tag)), ..Default::default() };
        // Route arrives with a stale 3356 city tag and a foreign tag.
        let mut a = attrs_with(&[(174, 2501)]);
        GeoTag::new(5, 20, 160).tag(3356, &mut a.communities);
        p.apply(&mut a);
        // Foreign tag kept, own tags replaced with the new location.
        assert!(a.communities.contains(&Community::from_parts(174, 2501)));
        let own: Vec<_> =
            a.communities.iter_classic().filter(|c| c.asn_part() == 3356).copied().collect();
        assert_eq!(own.len(), 3);
        let expected = tag.to_communities(3356);
        for c in expected {
            assert!(a.communities.contains(&c));
        }
    }

    #[test]
    fn cleaning_then_tagging_composes() {
        // An AS that cleans on ingress AND tags: result is only its tags.
        let tag = GeoTag::new(4, 10, 80);
        let p = ImportPolicy {
            clean_communities: true,
            geo_tag: Some((20_000, tag)),
            ..Default::default()
        };
        let mut a = attrs_with(&[(174, 2501), (3356, 901)]);
        p.apply(&mut a);
        assert_eq!(a.communities.len(), 3);
        assert!(a.communities.iter_classic().all(|c| c.asn_part() == 20_000));
    }

    #[test]
    fn explicit_communities_and_local_pref() {
        let p = ImportPolicy {
            add_communities: vec![Community::from_parts(65_000, 300)],
            local_pref: Some(300),
            ..Default::default()
        };
        let mut a = PathAttributes::default();
        p.apply(&mut a);
        assert!(a.communities.contains(&Community::from_parts(65_000, 300)));
        assert_eq!(a.local_pref, Some(300));
    }

    #[test]
    fn neighbor_policy_sets_gao_rexford_pref() {
        assert_eq!(ImportPolicy::for_neighbor(RouteSource::Customer).local_pref, Some(300));
        assert_eq!(ImportPolicy::for_neighbor(RouteSource::Provider).local_pref, Some(100));
    }

    #[test]
    fn egress_cleaning() {
        let p = ExportPolicy { clean_communities: true, ..Default::default() };
        let mut a = attrs_with(&[(3356, 2501)]);
        p.apply(&mut a);
        assert!(a.communities.is_empty());
    }

    #[test]
    fn interned_noop_keeps_arc_identity() {
        // The Gao–Rexford hot path: local-pref already matches, so the
        // import must hand back the *same* allocation, not a value-equal
        // copy — RIB dedup and the store's byte accounting rely on it.
        let p = ImportPolicy { local_pref: Some(300), ..Default::default() };
        let store = AttrStore::new();
        let a = Arc::new(PathAttributes { local_pref: Some(300), ..attrs_with(&[(174, 100)]) });
        let out = p.apply_interned(&a, &store);
        assert!(Arc::ptr_eq(&a, &out));

        // Same for an add_communities policy whose community is already
        // present.
        let p = ImportPolicy {
            add_communities: vec![Community::from_parts(174, 100)],
            ..Default::default()
        };
        let out = p.apply_interned(&a, &store);
        assert!(Arc::ptr_eq(&a, &out));
    }

    #[test]
    fn interned_rewrite_collapses_onto_canonical() {
        // When the rewritten attribute set is already interned, the store's
        // canonical Arc comes back instead of a fresh allocation.
        let mut store = AttrStore::new();
        let target =
            Arc::new(PathAttributes { local_pref: Some(300), ..PathAttributes::default() });
        let canonical = store.acquire(&target);

        let p = ImportPolicy { local_pref: Some(300), ..Default::default() };
        let input = Arc::new(PathAttributes { local_pref: Some(100), ..PathAttributes::default() });
        let out = p.apply_interned(&input, &store);
        assert!(!Arc::ptr_eq(&input, &out));
        assert!(Arc::ptr_eq(&canonical, &out));
        assert_eq!(out.local_pref, Some(300));

        // With an empty store the rewrite still happens, just freshly
        // allocated.
        let empty = AttrStore::new();
        let out = p.apply_interned(&input, &empty);
        assert_eq!(out.local_pref, Some(300));
        assert!(!Arc::ptr_eq(&input, &out));
    }

    #[test]
    fn cleaning_policy_is_noop_on_empty_communities() {
        // Exp4-style ingress cleaning of an already-bare route changes
        // nothing, so identity must be preserved there too.
        let p = ImportPolicy { clean_communities: true, ..Default::default() };
        let store = AttrStore::new();
        let bare = Arc::new(PathAttributes::default());
        assert!(Arc::ptr_eq(&bare, &p.apply_interned(&bare, &store)));

        let tagged = Arc::new(attrs_with(&[(3356, 2501)]));
        let out = p.apply_interned(&tagged, &store);
        assert!(!Arc::ptr_eq(&tagged, &out));
        assert!(out.communities.is_empty());
    }

    #[test]
    fn deny_communities_gate_export() {
        let dna = Community::from_parts(65_001, 111);
        let p = ExportPolicy { deny_communities: vec![dna], ..Default::default() };
        assert!(p.denies(&attrs_with(&[(65_001, 111)])));
        assert!(p.denies(&attrs_with(&[(174, 100), (65_001, 111)])));
        assert!(!p.denies(&attrs_with(&[(65_001, 112)])));
        assert!(!p.denies(&PathAttributes::default()));
        // No deny list: nothing is ever withheld.
        assert!(!ExportPolicy::default().denies(&attrs_with(&[(65_001, 111)])));
    }

    #[test]
    fn egress_add_and_med() {
        let p = ExportPolicy {
            add_communities: vec![Community::from_parts(65_535, 666)],
            med: Some(10),
            ..Default::default()
        };
        let mut a = PathAttributes::default();
        p.apply(&mut a);
        assert_eq!(a.med, Some(10));
        assert_eq!(a.communities.len(), 1);
    }
}
