//! Routes and update messages as they move through the simulator.
//!
//! Both the RIB entry and the in-flight message carry their attributes
//! behind `Arc<PathAttributes>`, interned through the network's
//! [`AttrStore`](kcc_bgp_types::AttrStore): propagating one announcement
//! to 75k neighbors clones a pointer, never the attribute set.

use std::sync::Arc;

use kcc_bgp_types::{PathAttributes, Prefix};
use kcc_topology::{RouteSource, RouterId};

use crate::session::SessionId;

/// The payload of one simulated update message: a single prefix
/// announcement or withdrawal. (Real UPDATEs can pack prefixes; the
/// analysis is per-prefix anyway, and collectors explode packets — see
/// `kcc_bgp_wire::UpdatePacket::explode`.)
#[derive(Debug, Clone, PartialEq)]
pub struct SimUpdate {
    /// The affected prefix.
    pub prefix: Prefix,
    /// Announcement or withdrawal.
    pub body: UpdateBody,
}

/// Announcement attributes or withdrawal marker.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateBody {
    /// Announcement with wire-visible attributes. `source_hint` is
    /// sim-internal metadata carried only on iBGP sessions (real networks
    /// encode the same fact in local-pref policy); eBGP receivers derive
    /// the source from the session relationship instead.
    Announce {
        /// The path attributes (shared, interned).
        attrs: Arc<PathAttributes>,
        /// Gao–Rexford source of the route, forwarded over iBGP.
        source_hint: Option<RouteSource>,
    },
    /// Withdrawal.
    Withdraw,
}

impl SimUpdate {
    /// An announcement without a source hint (eBGP shape).
    pub fn announce(prefix: Prefix, attrs: impl Into<Arc<PathAttributes>>) -> Self {
        SimUpdate { prefix, body: UpdateBody::Announce { attrs: attrs.into(), source_hint: None } }
    }

    /// A withdrawal.
    pub fn withdraw(prefix: Prefix) -> Self {
        SimUpdate { prefix, body: UpdateBody::Withdraw }
    }

    /// True for announcements.
    pub fn is_announcement(&self) -> bool {
        matches!(self.body, UpdateBody::Announce { .. })
    }

    /// The attributes, if an announcement.
    pub fn attrs(&self) -> Option<&PathAttributes> {
        match &self.body {
            UpdateBody::Announce { attrs, .. } => Some(attrs),
            UpdateBody::Withdraw => None,
        }
    }
}

/// One route as stored in a router's Adj-RIB-In (post-import-policy) or
/// Loc-RIB.
#[derive(Debug, Clone, PartialEq)]
pub struct RibEntry {
    /// Attributes after import policy (shared, interned).
    pub attrs: Arc<PathAttributes>,
    /// Gao–Rexford source, for valley-free export decisions.
    pub source: RouteSource,
    /// The session the route was learned on; `None` for originated routes.
    pub from_session: Option<SessionId>,
    /// The border router through which traffic would exit the AS — the
    /// IGP-cost target for hot-potato comparison. For eBGP-learned routes
    /// this is the receiving router itself; for iBGP-learned routes it is
    /// the advertising border router; for originated routes, self.
    pub egress: RouterId,
}

impl RibEntry {
    /// Effective local preference (RFC 4271 default 100 when unset).
    pub fn effective_local_pref(&self) -> u32 {
        // Originated routes win over everything learned.
        if self.source == RouteSource::Originated {
            return u32::MAX;
        }
        self.attrs.local_pref.unwrap_or(100)
    }

    /// Effective MED (missing treated as 0, the common vendor default).
    pub fn effective_med(&self) -> u32 {
        self.attrs.med.unwrap_or(0)
    }

    /// True if learned over eBGP (preferred over iBGP by the decision
    /// process). Originated routes are "internal" but never reach this
    /// comparison stage against themselves.
    pub fn is_ebgp(&self, receiving_router: RouterId) -> bool {
        self.from_session.is_some() && self.egress == receiving_router
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::Asn;

    fn entry(source: RouteSource) -> RibEntry {
        RibEntry {
            attrs: Arc::new(PathAttributes::default()),
            source,
            from_session: Some(SessionId(0)),
            egress: RouterId { asn: Asn(1), index: 0 },
        }
    }

    #[test]
    fn local_pref_defaults_to_100() {
        assert_eq!(entry(RouteSource::Peer).effective_local_pref(), 100);
        let mut e = entry(RouteSource::Peer);
        e.attrs = Arc::new(PathAttributes { local_pref: Some(300), ..Default::default() });
        assert_eq!(e.effective_local_pref(), 300);
    }

    #[test]
    fn originated_beats_any_local_pref() {
        let e = entry(RouteSource::Originated);
        assert_eq!(e.effective_local_pref(), u32::MAX);
    }

    #[test]
    fn med_defaults_to_zero() {
        assert_eq!(entry(RouteSource::Peer).effective_med(), 0);
        let mut e = entry(RouteSource::Peer);
        e.attrs = Arc::new(PathAttributes { med: Some(50), ..Default::default() });
        assert_eq!(e.effective_med(), 50);
    }

    #[test]
    fn ebgp_detection_via_egress() {
        let me = RouterId { asn: Asn(1), index: 0 };
        let other = RouterId { asn: Asn(1), index: 1 };
        let mut e = entry(RouteSource::Customer);
        e.egress = me;
        assert!(e.is_ebgp(me)); // learned here: eBGP
        e.egress = other;
        assert!(!e.is_ebgp(me)); // exit elsewhere: iBGP-learned
    }

    #[test]
    fn update_constructors() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(SimUpdate::announce(p, PathAttributes::default()).is_announcement());
        assert!(!SimUpdate::withdraw(p).is_announcement());
        assert!(SimUpdate::withdraw(p).attrs().is_none());
    }
}
