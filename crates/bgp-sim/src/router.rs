//! The simulated BGP router: RIBs, import/export, MRAI, vendor behavior.
//!
//! ## Memory model
//!
//! Every retained attribute set — Adj-RIB-In entries, the Loc-RIB,
//! Adj-RIB-Out, MRAI-pending queues and originated routes — is an
//! `Arc<PathAttributes>` interned through the network-wide
//! [`AttrStore`]: one attribute set announced to 75k neighbors is one
//! allocation. Each slot that retains a handle holds exactly one store
//! refcount (`acquire` on insert, `release` on remove/replace); in-flight
//! messages and captures carry plain `Arc` clones that the store does not
//! count, so capture retention never distorts the byte accounting.
//!
//! ## Layout
//!
//! The RIBs are keyed for their access patterns: Adj-RIB-In is
//! prefix-first (the decision process reads exactly the candidate set for
//! one prefix), Adj-RIB-Out and the MRAI queue are session-first (route
//! refresh and MRAI expiry replay exactly one session's slice).

use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

use kcc_bgp_types::community::well_known::NO_EXPORT;
use kcc_bgp_types::{AttrStore, FastHashMap, PathAttributes, Prefix};
use kcc_topology::{may_export, IgpMap, RouteSource, RouterId};

use crate::dampening::{DampeningConfig, DampeningState};
use crate::decision;
use crate::route::{RibEntry, SimUpdate, UpdateBody};
use crate::session::{Session, SessionId, SessionKind};
use crate::time::SimTime;
use crate::vendor::VendorProfile;

/// An effect the router wants the network to carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Transmit an update on a session.
    Send {
        /// The session to send on.
        session: SessionId,
        /// The update.
        update: SimUpdate,
    },
    /// Arrange an `MraiExpire` event at `at`.
    ScheduleMrai {
        /// The paced session.
        session: SessionId,
        /// The deadline.
        at: SimTime,
    },
    /// Arrange a dampening reuse check at `at`.
    ScheduleDampReuse {
        /// The dampened session.
        session: SessionId,
        /// The dampened prefix.
        prefix: Prefix,
        /// When the penalty is predicted to cross the reuse threshold.
        at: SimTime,
    },
}

/// Per-router message counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Updates received (announcements + withdrawals).
    pub updates_received: u64,
    /// Updates sent.
    pub updates_sent: u64,
    /// Duplicate advertisements suppressed (Junos-style).
    pub duplicates_suppressed: u64,
    /// Duplicate advertisements transmitted anyway (non-suppressing
    /// vendors) — the paper's unnecessary-update counter.
    pub duplicates_sent: u64,
    /// Updates ignored because the route is dampening-suppressed.
    pub dampened: u64,
}

/// One simulated router.
#[derive(Debug, Clone)]
pub struct Router {
    /// Identity (AS + index).
    pub id: RouterId,
    /// Loopback/session address, used as next-hop-self.
    pub ip: IpAddr,
    /// Implementation profile.
    pub vendor: VendorProfile,
    /// IGP cost map of the owning AS.
    pub igp: IgpMap,
    /// Sessions attached to this router.
    pub sessions: Vec<SessionId>,
    /// True for route collectors: capture only, never export.
    pub is_collector: bool,
    /// Route-flap dampening configuration (None = disabled, the default).
    pub dampening: Option<DampeningConfig>,
    /// Message counters.
    pub counters: RouterCounters,
    /// Prefix-first: the candidate set the decision process reads. Each
    /// slot is kept sorted by `SessionId` so candidate iteration — and
    /// therefore tie-breaking — is independent of arrival order.
    adj_rib_in: FastHashMap<Prefix, Vec<(SessionId, RibEntry)>>,
    damp_states: FastHashMap<(SessionId, Prefix), DampeningState>,
    loc_rib: FastHashMap<Prefix, RibEntry>,
    /// Session-first: route-refresh replay reads one session's slice.
    adj_rib_out: FastHashMap<SessionId, FastHashMap<Prefix, Arc<PathAttributes>>>,
    originated: BTreeMap<Prefix, Arc<PathAttributes>>,
    mrai_deadline: FastHashMap<SessionId, SimTime>,
    mrai_pending: FastHashMap<SessionId, FastHashMap<Prefix, Arc<PathAttributes>>>,
}

impl Router {
    /// Creates a router.
    pub fn new(id: RouterId, ip: IpAddr, vendor: VendorProfile, igp: IgpMap) -> Self {
        Router {
            id,
            ip,
            vendor,
            igp,
            sessions: Vec::new(),
            is_collector: false,
            dampening: None,
            counters: RouterCounters::default(),
            adj_rib_in: FastHashMap::default(),
            damp_states: FastHashMap::default(),
            loc_rib: FastHashMap::default(),
            adj_rib_out: FastHashMap::default(),
            originated: BTreeMap::new(),
            mrai_deadline: FastHashMap::default(),
            mrai_pending: FastHashMap::default(),
        }
    }

    /// The best route currently installed for `prefix`.
    pub fn best_route(&self, prefix: &Prefix) -> Option<&RibEntry> {
        self.loc_rib.get(prefix)
    }

    /// Number of Loc-RIB entries.
    pub fn loc_rib_len(&self) -> usize {
        self.loc_rib.len()
    }

    /// Iterates over the Loc-RIB (unspecified order).
    pub fn loc_rib(&self) -> impl Iterator<Item = (&Prefix, &RibEntry)> {
        self.loc_rib.iter()
    }

    /// What was last transmitted to `session` for `prefix`.
    pub fn last_advertised(
        &self,
        session: SessionId,
        prefix: &Prefix,
    ) -> Option<&Arc<PathAttributes>> {
        self.adj_rib_out.get(&session)?.get(prefix)
    }

    /// Everything last transmitted on `session`, sorted by prefix — the
    /// Adj-RIB-Out slice a route-refresh request replays. O(routes on
    /// this session): the Adj-RIB-Out is maintained per session, so no
    /// other session's state is scanned.
    pub fn advertised_on(&self, session: SessionId) -> Vec<(Prefix, Arc<PathAttributes>)> {
        let mut out: Vec<(Prefix, Arc<PathAttributes>)> = self
            .adj_rib_out
            .get(&session)
            .into_iter()
            .flatten()
            .map(|(p, a)| (*p, Arc::clone(a)))
            .collect();
        out.sort_unstable_by_key(|(p, _)| *p);
        out
    }

    /// Iterates the Adj-RIB-In (post-import-policy routes per session) —
    /// the per-peer state a collector's TABLE_DUMP_V2 snapshot records.
    /// Order is unspecified.
    pub fn adj_rib_in(&self) -> impl Iterator<Item = ((SessionId, Prefix), &RibEntry)> {
        self.adj_rib_in.iter().flat_map(|(p, slot)| slot.iter().map(move |(s, e)| ((*s, *p), e)))
    }

    /// Starts originating `prefix`.
    pub fn originate(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        sessions: &[Session],
        store: &mut AttrStore,
    ) -> Vec<Action> {
        let attrs = store.acquire_owned(Arc::new(PathAttributes::originated(self.ip)));
        if let Some(old) = self.originated.insert(prefix, attrs) {
            store.release(&old);
        }
        self.run_decision(now, prefix, sessions, store)
    }

    /// Stops originating `prefix`.
    pub fn withdraw_origin(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        sessions: &[Session],
        store: &mut AttrStore,
    ) -> Vec<Action> {
        match self.originated.remove(&prefix) {
            None => return Vec::new(),
            Some(old) => store.release(&old),
        }
        self.run_decision(now, prefix, sessions, store)
    }

    /// Processes an update arriving on `session_id`.
    pub fn handle_update(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        sessions: &[Session],
        update: &SimUpdate,
        store: &mut AttrStore,
    ) -> Vec<Action> {
        self.counters.updates_received += 1;
        let session = &sessions[session_id.0];
        match &update.body {
            UpdateBody::Announce { attrs, source_hint } => {
                // eBGP loop prevention (RFC 4271 §9.1.2).
                if session.is_ebgp() && attrs.as_path.contains(self.id.asn) {
                    return Vec::new();
                }
                let (source, egress) = if session.is_ebgp() {
                    let kind = session.neighbor_kind_for(self.id).unwrap_or(RouteSource::Peer);
                    (kind, self.id)
                } else {
                    (source_hint.unwrap_or(RouteSource::Customer), session.other(self.id))
                };
                let post = session.import_for(self.id).apply_interned(attrs, store);
                let entry =
                    RibEntry { attrs: post, source, from_session: Some(session_id), egress };
                let slot = self.adj_rib_in.entry(update.prefix).or_default();
                let replaced = match slot.binary_search_by_key(&session_id, |(s, _)| *s) {
                    Ok(i) => {
                        // Post-policy no-change: the update was received
                        // (and counted) but routing state is untouched —
                        // the Exp4 suppression point.
                        if slot[i].1 == entry {
                            return Vec::new();
                        }
                        let retained = store.acquire(&entry.attrs);
                        let old = std::mem::replace(
                            &mut slot[i].1,
                            RibEntry { attrs: retained, ..entry },
                        );
                        store.release(&old.attrs);
                        true
                    }
                    Err(i) => {
                        let retained = store.acquire(&entry.attrs);
                        slot.insert(i, (session_id, RibEntry { attrs: retained, ..entry }));
                        false
                    }
                };
                // RFC 2439: an attribute change on an existing route is a
                // flap; a fresh announcement after a withdrawal was already
                // penalized by the withdrawal.
                if replaced && session.is_ebgp() {
                    if let Some(mut actions) = self.record_flap(now, session_id, update.prefix) {
                        actions.extend(self.run_decision(now, update.prefix, sessions, store));
                        return actions;
                    }
                }
            }
            UpdateBody::Withdraw => {
                let Some(slot) = self.adj_rib_in.get_mut(&update.prefix) else {
                    return Vec::new();
                };
                let Ok(i) = slot.binary_search_by_key(&session_id, |(s, _)| *s) else {
                    return Vec::new();
                };
                let (_, old) = slot.remove(i);
                if slot.is_empty() {
                    self.adj_rib_in.remove(&update.prefix);
                }
                store.release(&old.attrs);
                if session.is_ebgp() {
                    // Withdrawal of a suppressed route changes nothing
                    // visible, but the penalty still accrues.
                    self.record_flap(now, session_id, update.prefix);
                }
            }
        }
        self.run_decision(now, update.prefix, sessions, store)
    }

    /// Records a dampening flap; returns `Some(actions)` when the route
    /// just became (or remains) suppressed, in which case the caller gets
    /// a reuse-check action and the route is hidden from decisions.
    fn record_flap(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        prefix: Prefix,
    ) -> Option<Vec<Action>> {
        let cfg = self.dampening?;
        let state = self
            .damp_states
            .entry((session_id, prefix))
            .or_insert_with(|| DampeningState::new(now));
        let was_suppressed = state.is_suppressed(now, &cfg);
        let suppressed = state.record_flap(now, &cfg);
        if !suppressed {
            return None;
        }
        self.counters.dampened += 1;
        if was_suppressed {
            // Already suppressed: existing reuse check covers it... but the
            // penalty grew, so push the check out to the new reuse time.
            return Some(vec![Action::ScheduleDampReuse {
                session: session_id,
                prefix,
                at: state.reuse_time(&cfg),
            }]);
        }
        Some(vec![Action::ScheduleDampReuse {
            session: session_id,
            prefix,
            at: state.reuse_time(&cfg),
        }])
    }

    /// Handles a scheduled dampening reuse check.
    pub fn handle_damp_reuse(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        prefix: Prefix,
        sessions: &[Session],
        store: &mut AttrStore,
    ) -> Vec<Action> {
        let Some(cfg) = self.dampening else { return Vec::new() };
        let Some(state) = self.damp_states.get_mut(&(session_id, prefix)) else {
            return Vec::new();
        };
        if state.is_suppressed(now, &cfg) {
            // Penalty grew since this check was scheduled; try again later.
            return vec![Action::ScheduleDampReuse {
                session: session_id,
                prefix,
                at: state.reuse_time(&cfg),
            }];
        }
        // Route is reusable: re-run the decision with it visible again.
        self.run_decision(now, prefix, sessions, store)
    }

    /// True if the route from `session_id` for `prefix` is currently
    /// hidden by dampening.
    fn is_dampened(&self, now: SimTime, session_id: SessionId, prefix: Prefix) -> bool {
        let Some(cfg) = self.dampening else { return false };
        self.damp_states
            .get(&(session_id, prefix))
            .map(|s| {
                let mut s = *s;
                s.is_suppressed(now, &cfg)
            })
            .unwrap_or(false)
    }

    /// Handles loss of a session: flush all state tied to it and re-run
    /// decisions for affected prefixes.
    pub fn handle_session_down(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        sessions: &[Session],
        store: &mut AttrStore,
    ) -> Vec<Action> {
        let mut affected: Vec<Prefix> = Vec::new();
        self.adj_rib_in.retain(|p, slot| {
            if let Ok(i) = slot.binary_search_by_key(&session_id, |(s, _)| *s) {
                let (_, old) = slot.remove(i);
                store.release(&old.attrs);
                affected.push(*p);
            }
            !slot.is_empty()
        });
        if let Some(out) = self.adj_rib_out.remove(&session_id) {
            for attrs in out.values() {
                store.release(attrs);
            }
        }
        self.mrai_deadline.remove(&session_id);
        if let Some(pending) = self.mrai_pending.remove(&session_id) {
            for attrs in pending.values() {
                store.release(attrs);
            }
        }
        self.damp_states.retain(|(s, _), _| *s != session_id);
        affected.sort_unstable();
        let mut actions = Vec::new();
        for p in affected {
            actions.extend(self.run_decision(now, p, sessions, store));
        }
        actions
    }

    /// Handles a session (re-)establishing: advertise the current Loc-RIB.
    pub fn handle_session_up(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        sessions: &[Session],
        store: &mut AttrStore,
    ) -> Vec<Action> {
        let mut prefixes: Vec<Prefix> = self.loc_rib.keys().copied().collect();
        prefixes.sort_unstable();
        let mut actions = Vec::new();
        for p in prefixes {
            actions.extend(self.export_to_session(now, p, session_id, sessions, store));
        }
        actions
    }

    /// MRAI expiry: flush pending advertisements for the session.
    pub fn handle_mrai_expire(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        sessions: &[Session],
        store: &mut AttrStore,
    ) -> Vec<Action> {
        self.mrai_deadline.remove(&session_id);
        let Some(pending) = self.mrai_pending.remove(&session_id) else {
            return Vec::new();
        };
        if pending.is_empty() {
            return Vec::new();
        }
        let session = &sessions[session_id.0];
        let mut batch: Vec<(Prefix, Arc<PathAttributes>)> = pending.into_iter().collect();
        batch.sort_unstable_by_key(|(p, _)| *p);
        let out = self.adj_rib_out.entry(session_id).or_default();
        let mut actions = Vec::new();
        for (prefix, attrs) in batch {
            // The store refcount moves from the pending slot to the
            // Adj-RIB-Out slot; only a replaced entry is released.
            if let Some(old) = out.insert(prefix, Arc::clone(&attrs)) {
                store.release(&old);
            }
            self.counters.updates_sent += 1;
            actions.push(Action::Send {
                session: session_id,
                update: SimUpdate::announce(prefix, attrs),
            });
        }
        // Restart the timer to pace the next batch.
        let mrai = self.vendor.mrai(session.is_ebgp());
        if !mrai.is_zero() {
            let at = now + mrai;
            self.mrai_deadline.insert(session_id, at);
            actions.push(Action::ScheduleMrai { session: session_id, at });
        }
        actions
    }

    /// Re-selects the best route for `prefix` and exports any change.
    fn run_decision(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        sessions: &[Session],
        store: &mut AttrStore,
    ) -> Vec<Action> {
        let originated_entry = self.originated.get(&prefix).map(|attrs| RibEntry {
            attrs: Arc::clone(attrs),
            source: RouteSource::Originated,
            from_session: None,
            egress: self.id,
        });
        let new_best = {
            let candidates = self
                .adj_rib_in
                .get(&prefix)
                .map(|v| v.as_slice())
                .unwrap_or(&[])
                .iter()
                .filter(|(s, _)| !self.is_dampened(now, *s, prefix))
                .map(|(_, e)| e)
                .chain(originated_entry.as_ref());
            decision::best(candidates, self.id, &self.igp).cloned()
        };
        let old_best = self.loc_rib.get(&prefix);
        if old_best == new_best.as_ref() {
            return Vec::new();
        }
        match new_best {
            Some(e) => {
                let retained = store.acquire(&e.attrs);
                if let Some(old) = self.loc_rib.insert(prefix, RibEntry { attrs: retained, ..e }) {
                    store.release(&old.attrs);
                }
            }
            None => {
                if let Some(old) = self.loc_rib.remove(&prefix) {
                    store.release(&old.attrs);
                }
            }
        }
        if self.is_collector {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let my_sessions = self.sessions.clone();
        for sid in my_sessions {
            if sessions[sid.0].up {
                actions.extend(self.export_to_session(now, prefix, sid, sessions, store));
            }
        }
        actions
    }

    /// The announcement we would send for `prefix` on `session`, or `None`
    /// if the route must not (or cannot) be advertised there. When the
    /// egress transformations change nothing (iBGP at the learning
    /// border), the Loc-RIB's `Arc` is reused as-is; otherwise the result
    /// collapses onto the store's canonical allocation when one exists.
    fn desired_advertisement(
        &self,
        prefix: Prefix,
        session: &Session,
        store: &AttrStore,
    ) -> Option<(Arc<PathAttributes>, Option<RouteSource>)> {
        let best = self.loc_rib.get(&prefix)?;
        // Never advertise back onto the session the route came from.
        if best.from_session == Some(session.id) {
            return None;
        }
        match session.kind {
            SessionKind::Ibgp => {
                // Full mesh: iBGP-learned routes are not reflected.
                if best.from_session.is_some() && !best.is_ebgp(self.id) {
                    return None;
                }
                if best.attrs.next_hop == self.ip {
                    // next-hop-self is already true (originated here):
                    // share the installed allocation.
                    return Some((Arc::clone(&best.attrs), Some(best.source)));
                }
                let mut a = PathAttributes::clone(&best.attrs);
                a.next_hop = self.ip; // next-hop-self at the border
                Some((collapse(store, a), Some(best.source)))
            }
            SessionKind::Ebgp => {
                let to_kind = session.neighbor_kind_for(self.id).unwrap_or(RouteSource::Peer);
                if !may_export(best.source, to_kind) {
                    return None;
                }
                if best.attrs.communities.contains(&NO_EXPORT) {
                    return None;
                }
                let export = session.export_for(self.id);
                // Action communities: the neighbor asked us not to hear
                // about routes tagged with its deny set.
                if export.denies(&best.attrs) {
                    return None;
                }
                let mut a = PathAttributes::clone(&best.attrs);
                a.as_path = a.as_path.prepend(self.id.asn, 1 + export.extra_prepends as usize);
                a.next_hop = self.ip;
                a.local_pref = None;
                a.med = None; // MED is not propagated onward by default
                export.apply(&mut a);
                Some((collapse(store, a), None))
            }
        }
    }

    /// Compares the desired advertisement with the Adj-RIB-Out and emits
    /// send/withdraw/pending actions, applying vendor duplicate policy and
    /// MRAI pacing.
    fn export_to_session(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        session_id: SessionId,
        sessions: &[Session],
        store: &mut AttrStore,
    ) -> Vec<Action> {
        if self.is_collector {
            return Vec::new();
        }
        let session = &sessions[session_id.0];
        let desired = self.desired_advertisement(prefix, session, store);

        match desired {
            None => {
                // Withdraw if the peer (or the pending queue) holds state.
                if let Some(pending) = self.mrai_pending.get_mut(&session_id) {
                    if let Some(old) = pending.remove(&prefix) {
                        store.release(&old);
                        // Never transmitted: nothing to withdraw (unless
                        // the peer also holds earlier state, below).
                    }
                }
                if let Some(out) = self.adj_rib_out.get_mut(&session_id) {
                    if let Some(old) = out.remove(&prefix) {
                        store.release(&old);
                        self.counters.updates_sent += 1;
                        // Withdrawals bypass MRAI (RFC 4271 §9.2.1.1).
                        return vec![Action::Send {
                            session: session_id,
                            update: SimUpdate::withdraw(prefix),
                        }];
                    }
                }
                Vec::new()
            }
            Some((attrs, source_hint)) => {
                let last_sent = self.adj_rib_out.get(&session_id).and_then(|m| m.get(&prefix));
                let equal_to_sent = last_sent.is_some_and(|l| **l == *attrs);
                let has_pending =
                    self.mrai_pending.get(&session_id).is_some_and(|m| m.contains_key(&prefix));
                if has_pending {
                    // Replace the queued advertisement with the newest state.
                    // If it now equals what was last sent, drop the queue
                    // entry only when the vendor suppresses duplicates.
                    let pending =
                        self.mrai_pending.get_mut(&session_id).expect("pending map exists");
                    if equal_to_sent && self.vendor.suppresses_duplicates {
                        if let Some(old) = pending.remove(&prefix) {
                            store.release(&old);
                        }
                        self.counters.duplicates_suppressed += 1;
                    } else {
                        let retained = store.acquire(&attrs);
                        if let Some(old) = pending.insert(prefix, retained) {
                            store.release(&old);
                        }
                    }
                    return Vec::new();
                }
                if equal_to_sent {
                    if self.vendor.suppresses_duplicates {
                        self.counters.duplicates_suppressed += 1;
                        return Vec::new();
                    }
                    self.counters.duplicates_sent += 1;
                }
                // MRAI gate (announcements only).
                let mrai = self.vendor.mrai(session.is_ebgp());
                let timer_running =
                    self.mrai_deadline.get(&session_id).map(|&d| d > now).unwrap_or(false);
                if timer_running {
                    let retained = store.acquire(&attrs);
                    if let Some(old) =
                        self.mrai_pending.entry(session_id).or_default().insert(prefix, retained)
                    {
                        store.release(&old);
                    }
                    return Vec::new();
                }
                let retained = store.acquire(&attrs);
                let shared = Arc::clone(&retained);
                if let Some(old) =
                    self.adj_rib_out.entry(session_id).or_default().insert(prefix, retained)
                {
                    store.release(&old);
                }
                self.counters.updates_sent += 1;
                let mut actions = vec![Action::Send {
                    session: session_id,
                    update: SimUpdate {
                        prefix,
                        body: UpdateBody::Announce { attrs: shared, source_hint },
                    },
                }];
                if !mrai.is_zero() {
                    let at = now + mrai;
                    self.mrai_deadline.insert(session_id, at);
                    actions.push(Action::ScheduleMrai { session: session_id, at });
                }
                actions
            }
        }
    }
}

/// The store's canonical allocation for a freshly built attribute set, or
/// a new `Arc` when the value was never seen. No refcount is taken —
/// retention happens where the handle lands in a RIB slot.
fn collapse(store: &AttrStore, attrs: PathAttributes) -> Arc<PathAttributes> {
    match store.canonical(&attrs) {
        Some(shared) => shared,
        None => Arc::new(attrs),
    }
}
