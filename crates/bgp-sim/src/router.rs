//! The simulated BGP router: RIBs, import/export, MRAI, vendor behavior.

use std::collections::{BTreeMap, HashMap};
use std::net::IpAddr;

use kcc_bgp_types::community::well_known::NO_EXPORT;
use kcc_bgp_types::{PathAttributes, Prefix};
use kcc_topology::{may_export, IgpMap, RouteSource, RouterId};

use crate::dampening::{DampeningConfig, DampeningState};
use crate::decision;
use crate::route::{RibEntry, SimUpdate, UpdateBody};
use crate::session::{Session, SessionId, SessionKind};
use crate::time::SimTime;
use crate::vendor::VendorProfile;

/// An effect the router wants the network to carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Transmit an update on a session.
    Send {
        /// The session to send on.
        session: SessionId,
        /// The update.
        update: SimUpdate,
    },
    /// Arrange an `MraiExpire` event at `at`.
    ScheduleMrai {
        /// The paced session.
        session: SessionId,
        /// The deadline.
        at: SimTime,
    },
    /// Arrange a dampening reuse check at `at`.
    ScheduleDampReuse {
        /// The dampened session.
        session: SessionId,
        /// The dampened prefix.
        prefix: Prefix,
        /// When the penalty is predicted to cross the reuse threshold.
        at: SimTime,
    },
}

/// Per-router message counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Updates received (announcements + withdrawals).
    pub updates_received: u64,
    /// Updates sent.
    pub updates_sent: u64,
    /// Duplicate advertisements suppressed (Junos-style).
    pub duplicates_suppressed: u64,
    /// Duplicate advertisements transmitted anyway (non-suppressing
    /// vendors) — the paper's unnecessary-update counter.
    pub duplicates_sent: u64,
    /// Updates ignored because the route is dampening-suppressed.
    pub dampened: u64,
}

/// One simulated router.
#[derive(Debug, Clone)]
pub struct Router {
    /// Identity (AS + index).
    pub id: RouterId,
    /// Loopback/session address, used as next-hop-self.
    pub ip: IpAddr,
    /// Implementation profile.
    pub vendor: VendorProfile,
    /// IGP cost map of the owning AS.
    pub igp: IgpMap,
    /// Sessions attached to this router.
    pub sessions: Vec<SessionId>,
    /// True for route collectors: capture only, never export.
    pub is_collector: bool,
    /// Route-flap dampening configuration (None = disabled, the default).
    pub dampening: Option<DampeningConfig>,
    /// Message counters.
    pub counters: RouterCounters,
    adj_rib_in: HashMap<(SessionId, Prefix), RibEntry>,
    damp_states: HashMap<(SessionId, Prefix), DampeningState>,
    loc_rib: BTreeMap<Prefix, RibEntry>,
    adj_rib_out: HashMap<(SessionId, Prefix), PathAttributes>,
    originated: BTreeMap<Prefix, PathAttributes>,
    mrai_deadline: HashMap<SessionId, SimTime>,
    mrai_pending: HashMap<SessionId, BTreeMap<Prefix, PathAttributes>>,
}

impl Router {
    /// Creates a router.
    pub fn new(id: RouterId, ip: IpAddr, vendor: VendorProfile, igp: IgpMap) -> Self {
        Router {
            id,
            ip,
            vendor,
            igp,
            sessions: Vec::new(),
            is_collector: false,
            dampening: None,
            counters: RouterCounters::default(),
            adj_rib_in: HashMap::new(),
            damp_states: HashMap::new(),
            loc_rib: BTreeMap::new(),
            adj_rib_out: HashMap::new(),
            originated: BTreeMap::new(),
            mrai_deadline: HashMap::new(),
            mrai_pending: HashMap::new(),
        }
    }

    /// The best route currently installed for `prefix`.
    pub fn best_route(&self, prefix: &Prefix) -> Option<&RibEntry> {
        self.loc_rib.get(prefix)
    }

    /// Number of Loc-RIB entries.
    pub fn loc_rib_len(&self) -> usize {
        self.loc_rib.len()
    }

    /// Iterates over the Loc-RIB.
    pub fn loc_rib(&self) -> impl Iterator<Item = (&Prefix, &RibEntry)> {
        self.loc_rib.iter()
    }

    /// What was last transmitted to `session` for `prefix`.
    pub fn last_advertised(&self, session: SessionId, prefix: &Prefix) -> Option<&PathAttributes> {
        self.adj_rib_out.get(&(session, *prefix))
    }

    /// Everything last transmitted on `session`, sorted by prefix — the
    /// Adj-RIB-Out slice a route-refresh request replays.
    pub fn advertised_on(&self, session: SessionId) -> Vec<(Prefix, PathAttributes)> {
        let mut out: Vec<(Prefix, PathAttributes)> = self
            .adj_rib_out
            .iter()
            .filter(|((s, _), _)| *s == session)
            .map(|((_, p), a)| (*p, a.clone()))
            .collect();
        out.sort_unstable_by_key(|(p, _)| *p);
        out
    }

    /// Iterates the Adj-RIB-In (post-import-policy routes per session) —
    /// the per-peer state a collector's TABLE_DUMP_V2 snapshot records.
    pub fn adj_rib_in(&self) -> impl Iterator<Item = (&(SessionId, Prefix), &RibEntry)> {
        self.adj_rib_in.iter()
    }

    /// Starts originating `prefix`.
    pub fn originate(&mut self, now: SimTime, prefix: Prefix, sessions: &[Session]) -> Vec<Action> {
        let attrs = PathAttributes::originated(self.ip);
        self.originated.insert(prefix, attrs);
        self.run_decision(now, prefix, sessions)
    }

    /// Stops originating `prefix`.
    pub fn withdraw_origin(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        sessions: &[Session],
    ) -> Vec<Action> {
        if self.originated.remove(&prefix).is_none() {
            return Vec::new();
        }
        self.run_decision(now, prefix, sessions)
    }

    /// Processes an update arriving on `session_id`.
    pub fn handle_update(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        sessions: &[Session],
        update: &SimUpdate,
    ) -> Vec<Action> {
        self.counters.updates_received += 1;
        let session = &sessions[session_id.0];
        let key = (session_id, update.prefix);
        match &update.body {
            UpdateBody::Announce { attrs, source_hint } => {
                // eBGP loop prevention (RFC 4271 §9.1.2).
                if session.is_ebgp() && attrs.as_path.contains(self.id.asn) {
                    return Vec::new();
                }
                let (source, egress) = if session.is_ebgp() {
                    let kind = session.neighbor_kind_for(self.id).unwrap_or(RouteSource::Peer);
                    (kind, self.id)
                } else {
                    (source_hint.unwrap_or(RouteSource::Customer), session.other(self.id))
                };
                let mut a = attrs.clone();
                session.import_for(self.id).apply(&mut a);
                let entry = RibEntry { attrs: a, source, from_session: Some(session_id), egress };
                // Post-policy no-change: the update was received (and
                // counted) but routing state is untouched — the Exp4
                // suppression point.
                if self.adj_rib_in.get(&key) == Some(&entry) {
                    return Vec::new();
                }
                let replaced = self.adj_rib_in.insert(key, entry).is_some();
                // RFC 2439: an attribute change on an existing route is a
                // flap; a fresh announcement after a withdrawal was already
                // penalized by the withdrawal.
                if replaced && session.is_ebgp() {
                    if let Some(mut actions) = self.record_flap(now, session_id, update.prefix) {
                        actions.extend(self.run_decision(now, update.prefix, sessions));
                        return actions;
                    }
                }
            }
            UpdateBody::Withdraw => {
                if self.adj_rib_in.remove(&key).is_none() {
                    return Vec::new();
                }
                if session.is_ebgp() {
                    // Withdrawal of a suppressed route changes nothing
                    // visible, but the penalty still accrues.
                    self.record_flap(now, session_id, update.prefix);
                }
            }
        }
        self.run_decision(now, update.prefix, sessions)
    }

    /// Records a dampening flap; returns `Some(actions)` when the route
    /// just became (or remains) suppressed, in which case the caller gets
    /// a reuse-check action and the route is hidden from decisions.
    fn record_flap(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        prefix: Prefix,
    ) -> Option<Vec<Action>> {
        let cfg = self.dampening?;
        let state = self
            .damp_states
            .entry((session_id, prefix))
            .or_insert_with(|| DampeningState::new(now));
        let was_suppressed = state.is_suppressed(now, &cfg);
        let suppressed = state.record_flap(now, &cfg);
        if !suppressed {
            return None;
        }
        self.counters.dampened += 1;
        if was_suppressed {
            // Already suppressed: existing reuse check covers it... but the
            // penalty grew, so push the check out to the new reuse time.
            return Some(vec![Action::ScheduleDampReuse {
                session: session_id,
                prefix,
                at: state.reuse_time(&cfg),
            }]);
        }
        Some(vec![Action::ScheduleDampReuse {
            session: session_id,
            prefix,
            at: state.reuse_time(&cfg),
        }])
    }

    /// Handles a scheduled dampening reuse check.
    pub fn handle_damp_reuse(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        prefix: Prefix,
        sessions: &[Session],
    ) -> Vec<Action> {
        let Some(cfg) = self.dampening else { return Vec::new() };
        let Some(state) = self.damp_states.get_mut(&(session_id, prefix)) else {
            return Vec::new();
        };
        if state.is_suppressed(now, &cfg) {
            // Penalty grew since this check was scheduled; try again later.
            return vec![Action::ScheduleDampReuse {
                session: session_id,
                prefix,
                at: state.reuse_time(&cfg),
            }];
        }
        // Route is reusable: re-run the decision with it visible again.
        self.run_decision(now, prefix, sessions)
    }

    /// True if the route from `session_id` for `prefix` is currently
    /// hidden by dampening.
    fn is_dampened(&self, now: SimTime, session_id: SessionId, prefix: Prefix) -> bool {
        let Some(cfg) = self.dampening else { return false };
        self.damp_states
            .get(&(session_id, prefix))
            .map(|s| {
                let mut s = *s;
                s.is_suppressed(now, &cfg)
            })
            .unwrap_or(false)
    }

    /// Handles loss of a session: flush all state tied to it and re-run
    /// decisions for affected prefixes.
    pub fn handle_session_down(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        sessions: &[Session],
    ) -> Vec<Action> {
        let affected: Vec<Prefix> =
            self.adj_rib_in.keys().filter(|(s, _)| *s == session_id).map(|(_, p)| *p).collect();
        for p in &affected {
            self.adj_rib_in.remove(&(session_id, *p));
        }
        self.adj_rib_out.retain(|(s, _), _| *s != session_id);
        self.mrai_deadline.remove(&session_id);
        self.mrai_pending.remove(&session_id);
        self.damp_states.retain(|(s, _), _| *s != session_id);
        let mut sorted = affected;
        sorted.sort_unstable();
        let mut actions = Vec::new();
        for p in sorted {
            actions.extend(self.run_decision(now, p, sessions));
        }
        actions
    }

    /// Handles a session (re-)establishing: advertise the current Loc-RIB.
    pub fn handle_session_up(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        sessions: &[Session],
    ) -> Vec<Action> {
        let prefixes: Vec<Prefix> = self.loc_rib.keys().copied().collect();
        let mut actions = Vec::new();
        for p in prefixes {
            actions.extend(self.export_to_session(now, p, session_id, sessions));
        }
        actions
    }

    /// MRAI expiry: flush pending advertisements for the session.
    pub fn handle_mrai_expire(
        &mut self,
        now: SimTime,
        session_id: SessionId,
        sessions: &[Session],
    ) -> Vec<Action> {
        self.mrai_deadline.remove(&session_id);
        let Some(pending) = self.mrai_pending.remove(&session_id) else {
            return Vec::new();
        };
        if pending.is_empty() {
            return Vec::new();
        }
        let session = &sessions[session_id.0];
        let mut actions = Vec::new();
        for (prefix, attrs) in pending {
            self.adj_rib_out.insert((session_id, prefix), attrs.clone());
            self.counters.updates_sent += 1;
            actions.push(Action::Send {
                session: session_id,
                update: SimUpdate::announce(prefix, attrs),
            });
        }
        // Restart the timer to pace the next batch.
        let mrai = self.vendor.mrai(session.is_ebgp());
        if !mrai.is_zero() {
            let at = now + mrai;
            self.mrai_deadline.insert(session_id, at);
            actions.push(Action::ScheduleMrai { session: session_id, at });
        }
        actions
    }

    /// Re-selects the best route for `prefix` and exports any change.
    fn run_decision(&mut self, now: SimTime, prefix: Prefix, sessions: &[Session]) -> Vec<Action> {
        let originated_entry = self.originated.get(&prefix).map(|attrs| RibEntry {
            attrs: attrs.clone(),
            source: RouteSource::Originated,
            from_session: None,
            egress: self.id,
        });
        let new_best = {
            let candidates = self
                .adj_rib_in
                .iter()
                .filter(|((s, p), _)| *p == prefix && !self.is_dampened(now, *s, prefix))
                .map(|(_, e)| e)
                .chain(originated_entry.as_ref());
            decision::best(candidates, self.id, &self.igp).cloned()
        };
        let old_best = self.loc_rib.get(&prefix);
        if old_best == new_best.as_ref() {
            return Vec::new();
        }
        match new_best {
            Some(e) => {
                self.loc_rib.insert(prefix, e);
            }
            None => {
                self.loc_rib.remove(&prefix);
            }
        }
        if self.is_collector {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let my_sessions = self.sessions.clone();
        for sid in my_sessions {
            if sessions[sid.0].up {
                actions.extend(self.export_to_session(now, prefix, sid, sessions));
            }
        }
        actions
    }

    /// The announcement we would send for `prefix` on `session`, or `None`
    /// if the route must not (or cannot) be advertised there.
    fn desired_advertisement(
        &self,
        prefix: Prefix,
        session: &Session,
    ) -> Option<(PathAttributes, Option<RouteSource>)> {
        let best = self.loc_rib.get(&prefix)?;
        // Never advertise back onto the session the route came from.
        if best.from_session == Some(session.id) {
            return None;
        }
        match session.kind {
            SessionKind::Ibgp => {
                // Full mesh: iBGP-learned routes are not reflected.
                if best.from_session.is_some() && !best.is_ebgp(self.id) {
                    return None;
                }
                let mut a = best.attrs.clone();
                a.next_hop = self.ip; // next-hop-self at the border
                Some((a, Some(best.source)))
            }
            SessionKind::Ebgp => {
                let to_kind = session.neighbor_kind_for(self.id).unwrap_or(RouteSource::Peer);
                if !may_export(best.source, to_kind) {
                    return None;
                }
                if best.attrs.communities.contains(&NO_EXPORT) {
                    return None;
                }
                let mut a = best.attrs.clone();
                let export = session.export_for(self.id);
                a.as_path = a.as_path.prepend(self.id.asn, 1 + export.extra_prepends as usize);
                a.next_hop = self.ip;
                a.local_pref = None;
                a.med = None; // MED is not propagated onward by default
                export.apply(&mut a);
                Some((a, None))
            }
        }
    }

    /// Compares the desired advertisement with the Adj-RIB-Out and emits
    /// send/withdraw/pending actions, applying vendor duplicate policy and
    /// MRAI pacing.
    fn export_to_session(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        session_id: SessionId,
        sessions: &[Session],
    ) -> Vec<Action> {
        if self.is_collector {
            return Vec::new();
        }
        let session = &sessions[session_id.0];
        let desired = self.desired_advertisement(prefix, session);
        let key = (session_id, prefix);
        let last_sent = self.adj_rib_out.get(&key);
        let has_pending =
            self.mrai_pending.get(&session_id).map(|m| m.contains_key(&prefix)).unwrap_or(false);

        match desired {
            None => {
                // Withdraw if the peer (or the pending queue) holds state.
                let had_pending = self
                    .mrai_pending
                    .get_mut(&session_id)
                    .map(|m| m.remove(&prefix).is_some())
                    .unwrap_or(false);
                if self.adj_rib_out.remove(&key).is_some() {
                    self.counters.updates_sent += 1;
                    // Withdrawals bypass MRAI (RFC 4271 §9.2.1.1).
                    return vec![Action::Send {
                        session: session_id,
                        update: SimUpdate::withdraw(prefix),
                    }];
                } else if had_pending {
                    // Never transmitted: nothing to withdraw.
                    return Vec::new();
                }
                Vec::new()
            }
            Some((attrs, source_hint)) => {
                if has_pending {
                    // Replace the queued advertisement with the newest state.
                    // If it now equals what was last sent, drop the queue
                    // entry only when the vendor suppresses duplicates.
                    let equal_to_sent = last_sent == Some(&attrs);
                    let pending = self.mrai_pending.entry(session_id).or_default();
                    if equal_to_sent && self.vendor.suppresses_duplicates {
                        pending.remove(&prefix);
                        self.counters.duplicates_suppressed += 1;
                    } else {
                        pending.insert(prefix, attrs);
                    }
                    return Vec::new();
                }
                let is_duplicate = last_sent == Some(&attrs);
                if is_duplicate {
                    if self.vendor.suppresses_duplicates {
                        self.counters.duplicates_suppressed += 1;
                        return Vec::new();
                    }
                    self.counters.duplicates_sent += 1;
                }
                // MRAI gate (announcements only).
                let mrai = self.vendor.mrai(session.is_ebgp());
                let timer_running =
                    self.mrai_deadline.get(&session_id).map(|&d| d > now).unwrap_or(false);
                if timer_running {
                    self.mrai_pending.entry(session_id).or_default().insert(prefix, attrs);
                    return Vec::new();
                }
                self.adj_rib_out.insert(key, attrs.clone());
                self.counters.updates_sent += 1;
                let mut actions = vec![Action::Send {
                    session: session_id,
                    update: SimUpdate { prefix, body: UpdateBody::Announce { attrs, source_hint } },
                }];
                if !mrai.is_zero() {
                    let at = now + mrai;
                    self.mrai_deadline.insert(session_id, at);
                    actions.push(Action::ScheduleMrai { session: session_id, at });
                }
                actions
            }
        }
    }
}
