//! Simulated time: microseconds since simulation start.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// True for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 / 1_000_000;
        let us = self.0 % 1_000_000;
        write!(f, "{s}.{us:06}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 2_500_000);
        assert_eq!(t.as_secs(), 2);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(1500));
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(SimTime::ZERO - SimTime::from_secs(5), SimDuration::ZERO);
    }

    #[test]
    fn addition_saturates_at_the_end_of_time() {
        // Scenario timelines add offsets to arbitrary phase-start times;
        // overflow must pin at the maximum instead of wrapping (a wrapped
        // event time would fire in the past and corrupt the queue order).
        let eot = SimTime(u64::MAX);
        assert_eq!(eot + SimDuration::from_secs(1), eot);
        assert_eq!(SimTime(u64::MAX - 1) + SimDuration(5), eot);
        let mut t = SimTime(u64::MAX - 2);
        t += SimDuration::from_secs(10);
        assert_eq!(t, eot);
    }

    #[test]
    fn duration_addition_saturates() {
        let huge = SimDuration(u64::MAX);
        assert_eq!(huge + SimDuration::from_secs(1), huge);
        assert_eq!(SimDuration(u64::MAX - 3) + SimDuration(10), huge);
    }

    #[test]
    fn saturated_arithmetic_stays_ordered() {
        // Saturation must not break the ordering invariants the event
        // queue relies on: t + d >= t for every t, d.
        for t in [0u64, 1, 1 << 32, u64::MAX - 1, u64::MAX] {
            for d in [0u64, 1, 1 << 40, u64::MAX] {
                let t = SimTime(t);
                assert!(t + SimDuration(d) >= t, "t={t}, d={d}");
            }
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
