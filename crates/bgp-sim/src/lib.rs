//! # kcc-bgp-sim — discrete-event BGP simulator
//!
//! A deterministic, single-threaded, event-driven BGP simulator in the
//! smoltcp mold: no sockets, no threads, one [`network::Network`] you
//! `poll` until quiescence. It reproduces the routing-message dynamics the
//! paper studies:
//!
//! * per-router **Adj-RIB-In / Loc-RIB / Adj-RIB-Out** with the full
//!   decision process (local-pref → AS-path length → origin → MED →
//!   eBGP-over-iBGP → IGP cost → tie-break) ([`router`], [`decision`]),
//! * **iBGP full mesh / eBGP semantics** including next-hop-self at borders
//!   and no-reflection of iBGP-learned routes ([`router`]),
//! * **import/export policy chains**: Gao–Rexford local-pref, valley-free
//!   export, community tagging (explicit or geo-by-ingress-city), ingress
//!   and egress community cleaning ([`policy`]),
//! * **vendor profiles** encoding the paper's §3 lab findings: Cisco IOS,
//!   IOS-XR and BIRD emit duplicate updates by default, Junos suppresses
//!   them; per-vendor MRAI defaults ([`vendor`]),
//! * **MRAI timers** on eBGP advertisements (withdrawals bypass them, per
//!   RFC 4271 §9.2.1.1),
//! * **link/session events** (flaps) and origin announce/withdraw events,
//! * **fault injection** (message loss, extra delay) with a seeded RNG
//!   ([`fault`]),
//! * **capture** at collector routers and on monitored sessions
//!   ([`capture`]),
//! * a **declarative scenario engine** ([`scenario`]): topology template +
//!   scripted event timeline (announces, withdraws, link faults, community
//!   rewrites) + capture expectations, all as data,
//! * the paper's **Figure 1 lab topology** and Exp1–Exp4, expressed as
//!   four scenario specs ([`lab`]),
//! * a **labeled fault library** ([`faults`]): prefix hijack, route
//!   leak, blackhole injection and collector outage as scenario specs
//!   with ground-truth labels — the CommunityWatch detector's eval set,
//! * a **sim→TCP bridge** ([`bridge`]): every session of a captured (or
//!   any) update archive becomes a real outbound BGP speaker against a
//!   live collector daemon — the end-to-end rig for the live subsystem.
//!
//! Determinism: all event ordering is `(time, sequence)`; all randomness is
//! seeded. The same inputs always produce byte-identical captures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod capture;
pub mod dampening;
pub mod decision;
pub mod event;
pub mod fault;
pub mod faults;
pub mod lab;
pub mod network;
pub mod policy;
pub mod route;
pub mod router;
pub mod scenario;
pub mod session;
pub mod time;
pub mod vendor;

pub use bridge::{replay_archive, BridgeConfig, BridgeReport};
pub use capture::{Capture, CapturedUpdate};
pub use dampening::DampeningConfig;
pub use event::EventKind;
pub use faults::{fault_library, FaultKind, FaultScenario};
pub use network::{Network, SimConfig};
pub use policy::{ExportPolicy, ImportPolicy};
pub use route::{RibEntry, SimUpdate, UpdateBody};
pub use router::Router;
pub use scenario::{
    CountBound, Expectation, Phase, ScenarioAction, ScenarioEvent, ScenarioOutcome, ScenarioSpec,
    TopologyTemplate,
};
pub use session::{Session, SessionId, SessionKind};
pub use time::{SimDuration, SimTime};
pub use vendor::VendorProfile;
