//! The sim→TCP bridge: simulated routers speak real BGP.
//!
//! The simulator produces per-session update streams (captures, or any
//! [`UpdateArchive`] built from them); a live collector daemon consumes
//! real BGP sessions. [`replay_archive`] closes that gap: every session
//! in the archive becomes an outbound BGP speaker
//! ([`kcc_peer::ActiveSpeaker`]) that dials the daemon over a loopback
//! socket, completes the RFC 4271 handshake — announcing the session's
//! peer AS and, as its BGP identifier, the session's peer IP — and then
//! streams the session's updates as real UPDATE messages in arrival
//! order, ending with an administrative Cease.
//!
//! This is the end-to-end test rig the live subsystem is judged by:
//! generated internet → TCP BGP → FSM → pipeline must reproduce the
//! offline `ArchiveSource` analysis of the same update set exactly.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

use kcc_bgp_wire::UpdatePacket;
use kcc_collector::UpdateArchive;
use kcc_peer::{ActiveSpeaker, FsmConfig, PeerError, WallClock};

/// Bridge tuning.
#[derive(Debug, Clone)]
pub struct BridgeConfig {
    /// Hold time each simulated peer proposes (seconds).
    pub hold_time: u16,
    /// Dial + handshake-read timeout per peer.
    pub timeout: Duration,
    /// Cap on concurrently replaying sessions (thread count).
    pub max_concurrency: usize,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig { hold_time: 90, timeout: Duration::from_secs(10), max_concurrency: 32 }
    }
}

/// What a replay did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeReport {
    /// Sessions replayed (one TCP BGP session each).
    pub sessions: u64,
    /// UPDATE messages sent across all sessions.
    pub updates_sent: u64,
}

/// The BGP identifier a session's peer IP maps to: v4 addresses map
/// directly (so the daemon's `SessionIdentity::BgpId` keying reproduces
/// the offline session key); v6 addresses hash into a deterministic v4
/// identifier.
pub fn bgp_id_for(peer_ip: IpAddr) -> Ipv4Addr {
    match peer_ip {
        IpAddr::V4(v4) => v4,
        IpAddr::V6(v6) => {
            let o = v6.octets();
            let h = o.iter().fold(5381u32, |acc, b| acc.wrapping_mul(33).wrapping_add(*b as u32));
            Ipv4Addr::from(h.to_be_bytes())
        }
    }
}

/// Replays every session of `archive` against the collector at `addr`,
/// each as a real TCP BGP session, in parallel (bounded by
/// `cfg.max_concurrency`). Per-session update order is preserved;
/// inter-session interleaving is whatever TCP produces — exactly the
/// promise offline sources make.
pub fn replay_archive(
    addr: SocketAddr,
    archive: &UpdateArchive,
    cfg: &BridgeConfig,
) -> Result<BridgeReport, PeerError> {
    let sessions: Vec<_> = archive.sessions().collect();
    let clock = Arc::new(WallClock::new());
    let mut report = BridgeReport::default();
    let mut first_error = None;

    for chunk in sessions.chunks(cfg.max_concurrency.max(1)) {
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|(key, rec)| {
                    let clock = Arc::clone(&clock);
                    scope.spawn(move || -> Result<u64, PeerError> {
                        let fsm_cfg = FsmConfig::new(key.peer_asn, bgp_id_for(key.peer_ip))
                            .with_hold_time(cfg.hold_time);
                        let mut speaker =
                            ActiveSpeaker::connect(addr, fsm_cfg, clock, cfg.timeout)?;
                        for update in &rec.updates {
                            speaker.send_update(&UpdatePacket::from_route_update(update))?;
                            speaker.tick()?;
                        }
                        let sent = speaker.updates_sent();
                        speaker.close()?;
                        Ok(sent)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bridge session thread panicked"))
                .collect::<Vec<_>>()
        });
        for r in results {
            match r {
                Ok(sent) => {
                    report.sessions += 1;
                    report.updates_sent += sent;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}
