//! Router implementation behavior profiles.
//!
//! The paper's §3 lab experiments use real images of Cisco IOS 12.4(20)T,
//! Cisco IOS-XR 6.0.1, Juniper Junos (Olive 12.1R1.9), BIRD 1.6.6 and
//! BIRD 2.0.7, and find one behavioral split that matters for update
//! volume: **by default, only Junos suppresses duplicate updates** (it
//! compares the fully-built egress announcement against what the peer
//! already has). Everything else — internal next-hop changes, egress
//! community cleaning — leaks an unchanged announcement on the other
//! implementations, violating RFC 4271 §9.2 ("a BGP speaker ... SHALL NOT
//! advertise a route that was not selected" / advertisements must reflect
//! changes).
//!
//! [`VendorProfile`] encodes that split plus per-vendor MRAI defaults.

use std::fmt;

use crate::time::SimDuration;

/// Default behavior profile of one router implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorProfile {
    /// Human-readable name (image/version as used in the paper's lab).
    pub name: &'static str,
    /// True if the implementation compares a candidate egress announcement
    /// against the Adj-RIB-Out entry and stays silent when equal.
    /// Per the paper: Junos yes, Cisco IOS / IOS-XR / BIRD no.
    pub suppresses_duplicates: bool,
    /// Default MRAI (minimum route advertisement interval) on eBGP
    /// sessions. Withdrawals are exempt (RFC 4271 §9.2.1.1).
    pub mrai_ebgp: SimDuration,
    /// Default MRAI on iBGP sessions.
    pub mrai_ibgp: SimDuration,
}

impl VendorProfile {
    /// Cisco IOS 12.4(20)T: duplicates by default, classic 30 s eBGP MRAI.
    pub const CISCO_IOS: VendorProfile = VendorProfile {
        name: "Cisco IOS 12.4(20)T",
        suppresses_duplicates: false,
        mrai_ebgp: SimDuration::from_secs(30),
        mrai_ibgp: SimDuration::ZERO,
    };

    /// Cisco IOS-XR 6.0.1: duplicates by default, no MRAI by default.
    pub const CISCO_IOS_XR: VendorProfile = VendorProfile {
        name: "Cisco IOS XR 6.0.1",
        suppresses_duplicates: false,
        mrai_ebgp: SimDuration::ZERO,
        mrai_ibgp: SimDuration::ZERO,
    };

    /// Junos (Olive 12.1R1.9): the only tested implementation that
    /// prevents duplicates by default.
    pub const JUNOS: VendorProfile = VendorProfile {
        name: "Junos OS Olive 12.1R1.9",
        suppresses_duplicates: true,
        mrai_ebgp: SimDuration::ZERO,
        mrai_ibgp: SimDuration::ZERO,
    };

    /// BIRD 1.6.6: duplicates by default.
    pub const BIRD_1: VendorProfile = VendorProfile {
        name: "BIRD 1.6.6",
        suppresses_duplicates: false,
        mrai_ebgp: SimDuration::ZERO,
        mrai_ibgp: SimDuration::ZERO,
    };

    /// BIRD 2.0.7: duplicates by default.
    pub const BIRD_2: VendorProfile = VendorProfile {
        name: "BIRD 2.0.7",
        suppresses_duplicates: false,
        mrai_ebgp: SimDuration::ZERO,
        mrai_ibgp: SimDuration::ZERO,
    };

    /// All profiles the paper tests, for sweep experiments.
    pub const ALL: [VendorProfile; 5] =
        [Self::CISCO_IOS, Self::CISCO_IOS_XR, Self::JUNOS, Self::BIRD_1, Self::BIRD_2];

    /// The MRAI for a session kind.
    pub fn mrai(&self, ebgp: bool) -> SimDuration {
        if ebgp {
            self.mrai_ebgp
        } else {
            self.mrai_ibgp
        }
    }
}

impl Default for VendorProfile {
    /// BIRD 2 — a common collector-peer daemon with no MRAI, which keeps
    /// default simulations fast and duplicate-visible.
    fn default() -> Self {
        Self::BIRD_2
    }
}

impl fmt::Display for VendorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_junos_suppresses() {
        let suppressing: Vec<&str> =
            VendorProfile::ALL.iter().filter(|v| v.suppresses_duplicates).map(|v| v.name).collect();
        assert_eq!(suppressing, vec!["Junos OS Olive 12.1R1.9"]);
    }

    #[test]
    fn cisco_ios_has_classic_mrai() {
        assert_eq!(VendorProfile::CISCO_IOS.mrai(true), SimDuration::from_secs(30));
        assert_eq!(VendorProfile::CISCO_IOS.mrai(false), SimDuration::ZERO);
    }

    #[test]
    fn all_profiles_distinct_names() {
        let mut names: Vec<&str> = VendorProfile::ALL.iter().map(|v| v.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
