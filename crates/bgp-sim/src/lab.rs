//! The paper's Figure 1 laboratory topology and experiments Exp1–Exp4.
//!
//! Topology (§3): four ASes. `C1` mimics a route collector peering with
//! `X1`. AS `Y` has three routers in an iBGP full mesh; `Y2` and `Y3` both
//! peer with AS `Z`, whose router `Z1` originates prefix `p`. `Y1`'s IGP
//! prefers the exit via `Y2`; disabling the `Y1–Y2` session forces an
//! internal next-hop change to `Y3` and triggers the update behaviors the
//! experiments measure:
//!
//! * **Exp1** (no communities): the internal change leaks a duplicate
//!   update from `Y1` to `X1` on non-suppressing vendors; nothing reaches
//!   the collector.
//! * **Exp2** (geo-style ingress tags `Y:300`/`Y:400`): the community
//!   change alone propagates through `X1` to the collector — an `nc`
//!   update.
//! * **Exp3** (`X1` cleans communities on *egress*): the collector still
//!   receives a message — an `nn` duplicate — unless the vendor is Junos.
//! * **Exp4** (`X1` cleans on *ingress*): the update stops at `X1`; the
//!   collector stays silent. Ingress and egress cleaning are
//!   distinguishable from message traffic.
//!
//! Each experiment is expressed as a declarative [`ScenarioSpec`] (see
//! [`LabExperiment::spec`]) and interpreted by the shared
//! [`crate::scenario`] engine: the Figure 1 wiring is an
//! [`TopologyTemplate::Explicit`] router/session list, the
//! converge-then-perturb protocol is a two-phase timeline, and the
//! paper's published outcomes are [`Expectation`]s carried by the spec
//! itself.

use std::net::IpAddr;

use kcc_bgp_types::{Asn, Community, Prefix};
use kcc_topology::{IgpMap, RouteSource, RouterId};

use crate::capture::CapturedUpdate;
use crate::network::{Network, SimConfig};
use crate::policy::{ExportPolicy, ImportPolicy};
use crate::scenario::{
    self, CountBound, Expectation, Phase, RouterDecl, ScenarioAction, ScenarioEvent, ScenarioSpec,
    SessionDecl, TopologyTemplate,
};
use crate::session::{SessionId, SessionKind};
use crate::time::SimDuration;
use crate::vendor::VendorProfile;

/// AS numbers of the lab topology.
pub mod asns {
    use kcc_bgp_types::Asn;

    /// The collector AS `C`.
    pub const C: Asn = Asn(65_000);
    /// AS `X`.
    pub const X: Asn = Asn(65_001);
    /// AS `Y` (three routers).
    pub const Y: Asn = Asn(65_002);
    /// AS `Z` (originates `p`).
    pub const Z: Asn = Asn(65_003);
}

/// The prefix `p` originated by `Z1` (TEST-NET-3).
pub fn lab_prefix() -> Prefix {
    "203.0.113.0/24".parse().expect("literal prefix")
}

/// The four experiments of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabExperiment {
    /// No communities anywhere.
    Exp1,
    /// `Y2`/`Y3` tag `Y:300`/`Y:400` on ingress from `Z`.
    Exp2,
    /// Exp2 plus `X1` cleans communities on egress toward `C1`.
    Exp3,
    /// Exp3 plus `X1` cleans communities on ingress from `Y1`.
    Exp4,
}

impl LabExperiment {
    /// All four, in order.
    pub const ALL: [LabExperiment; 4] =
        [LabExperiment::Exp1, LabExperiment::Exp2, LabExperiment::Exp3, LabExperiment::Exp4];

    /// Paper-style name.
    pub fn name(&self) -> &'static str {
        match self {
            LabExperiment::Exp1 => "Exp1",
            LabExperiment::Exp2 => "Exp2",
            LabExperiment::Exp3 => "Exp3",
            LabExperiment::Exp4 => "Exp4",
        }
    }

    /// The experiment as a declarative scenario with every router running
    /// `vendor`, including the paper's published outcome as expectations.
    pub fn spec(self, vendor: VendorProfile) -> ScenarioSpec {
        let p = lab_prefix();
        let c1 = rid(asns::C, 0);
        let x1 = rid(asns::X, 0);
        let y1 = rid(asns::Y, 0);
        let y2 = rid(asns::Y, 1);
        let y3 = rid(asns::Y, 2);
        let z1 = rid(asns::Z, 0);

        // Y's IGP prefers Y1→Y2 (cost 5) over Y1→Y3 (cost 10).
        let y_igp = IgpMap::matrix(3, vec![0, 5, 10, 5, 0, 5, 10, 5, 0]);
        let routers = vec![
            RouterDecl { is_collector: true, ..RouterDecl::new(c1, ip(198, 51, 100, 1)) },
            RouterDecl::new(x1, ip(10, 1, 0, 1)),
            RouterDecl { igp: y_igp.clone(), ..RouterDecl::new(y1, ip(10, 2, 0, 1)) },
            RouterDecl { igp: y_igp.clone(), ..RouterDecl::new(y2, ip(10, 2, 0, 2)) },
            RouterDecl { igp: y_igp, ..RouterDecl::new(y3, ip(10, 2, 0, 3)) },
            RouterDecl::new(z1, ip(10, 3, 0, 1)),
        ];

        let plain = |kind: RouteSource| ImportPolicy::for_neighbor(kind);
        // X1–C1: X exports everything to the collector, cleaning on
        // egress in Exp3/Exp4.
        let x1_export_to_c = ExportPolicy {
            clean_communities: matches!(self, LabExperiment::Exp3 | LabExperiment::Exp4),
            ..Default::default()
        };
        // X1–Y1: Y is X's customer; Exp4 adds ingress cleaning.
        let x1_import_from_y = ImportPolicy {
            clean_communities: self == LabExperiment::Exp4,
            ..plain(RouteSource::Customer)
        };
        // Y2–Z1 and Y3–Z1: Z is Y's customer. Exp2+ adds ingress tags.
        let with_tags = !matches!(self, LabExperiment::Exp1);
        let y_asn16 = asns::Y.value() as u16;
        let ingress_tag = |value: u16| ImportPolicy {
            add_communities: if with_tags {
                vec![Community::from_parts(y_asn16, value)]
            } else {
                Vec::new()
            },
            ..plain(RouteSource::Customer)
        };
        let sessions = vec![
            SessionDecl::ibgp(y1, y2),
            SessionDecl::ibgp(y1, y3),
            SessionDecl::ibgp(y2, y3),
            SessionDecl {
                a_export: x1_export_to_c,
                ..SessionDecl::ebgp_customer_with_imports(
                    x1,
                    c1,
                    ImportPolicy::default(),
                    ImportPolicy::default(),
                )
            },
            SessionDecl::ebgp_customer_with_imports(
                x1,
                y1,
                x1_import_from_y,
                plain(RouteSource::Provider),
            ),
            SessionDecl::ebgp_customer_with_imports(
                y2,
                z1,
                ingress_tag(300),
                plain(RouteSource::Provider),
            ),
            SessionDecl::ebgp_customer_with_imports(
                y3,
                z1,
                ingress_tag(400),
                plain(RouteSource::Provider),
            ),
        ];

        ScenarioSpec {
            name: format!("{}/{}", self.name(), vendor.name),
            sim: SimConfig {
                // The lab is fully deterministic: fixed small delays, no
                // faults.
                base_link_delay: SimDuration::from_millis(2),
                delay_spread: SimDuration::ZERO,
                default_vendor: vendor,
                ..Default::default()
            },
            topology: TopologyTemplate::Explicit { routers, sessions },
            monitors: vec![(x1, y1)],
            watch: vec![(x1, p)],
            phases: vec![
                Phase::new(
                    "converge",
                    vec![ScenarioEvent::immediately(ScenarioAction::Announce {
                        router: z1,
                        prefix: p,
                    })],
                ),
                Phase::new(
                    "perturb",
                    vec![ScenarioEvent::after(
                        SimDuration::from_secs(60),
                        ScenarioAction::LinkDown { a: y1, b: y2 },
                    )],
                ),
            ],
            expectations: self.expectations(vendor),
        }
    }

    /// The paper's §3 findings for this experiment under `vendor`,
    /// phrased over the perturbation phase (index 1).
    fn expectations(self, vendor: VendorProfile) -> Vec<Expectation> {
        let p = lab_prefix();
        let c1 = rid(asns::C, 0);
        let x1 = rid(asns::X, 0);
        let y1 = rid(asns::Y, 0);
        let suppresses = vendor.suppresses_duplicates;
        // Messages crossing Y1→X1: suppressed only in Exp1 on Junos (the
        // community change of Exp2+ is a genuine update everywhere).
        let on_wire = if self == LabExperiment::Exp1 && suppresses { 0 } else { 1 };
        // Messages reaching the collector.
        let at_collector = match self {
            LabExperiment::Exp1 | LabExperiment::Exp4 => 0,
            LabExperiment::Exp2 => 1,
            LabExperiment::Exp3 => usize::from(!suppresses),
        };
        // X1's post-policy RIB changes whenever the community change
        // survives X1's ingress policy.
        let rib_changed = matches!(self, LabExperiment::Exp2 | LabExperiment::Exp3);
        let mut expectations = vec![
            Expectation::MonitorTraffic {
                phase: 1,
                a: x1,
                b: y1,
                to: Some(x1),
                bound: CountBound::Exactly(on_wire),
            },
            Expectation::CollectorTraffic {
                phase: 1,
                collector: c1,
                bound: CountBound::Exactly(at_collector),
            },
            Expectation::WatchedRouteChanged {
                phase: 1,
                router: x1,
                prefix: p,
                changed: rib_changed,
            },
        ];
        if suppresses && matches!(self, LabExperiment::Exp1 | LabExperiment::Exp3) {
            expectations.push(Expectation::DuplicatesSuppressed {
                phase: 1,
                bound: CountBound::AtLeast(1),
            });
        }
        if !suppresses && self == LabExperiment::Exp1 {
            expectations
                .push(Expectation::DuplicatesSent { phase: 1, bound: CountBound::AtLeast(1) });
        }
        expectations
    }
}

/// Router handles of the built lab network.
#[derive(Debug, Clone, Copy)]
pub struct LabIds {
    /// Collector router.
    pub c1: RouterId,
    /// AS X border router.
    pub x1: RouterId,
    /// AS Y border router toward X.
    pub y1: RouterId,
    /// AS Y border router toward Z (preferred exit).
    pub y2: RouterId,
    /// AS Y border router toward Z (backup exit).
    pub y3: RouterId,
    /// Origin router in AS Z.
    pub z1: RouterId,
    /// The monitored eBGP session X1–Y1.
    pub x1_y1: SessionId,
    /// The collector session X1–C1.
    pub x1_c1: SessionId,
    /// The iBGP session Y1–Y2 (the one the experiments disable).
    pub y1_y2: SessionId,
}

/// A built lab network plus its handles.
#[derive(Debug)]
pub struct LabNetwork {
    /// The network.
    pub net: Network,
    /// Router/session handles.
    pub ids: LabIds,
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct LabReport {
    /// Which experiment.
    pub experiment: LabExperiment,
    /// The router software under test (all routers run it, as in the
    /// paper's lab).
    pub vendor: VendorProfile,
    /// Messages from `Y1` to `X1` after the perturbation.
    pub y1_to_x1: Vec<CapturedUpdate>,
    /// Messages arriving at the collector after the perturbation.
    pub at_collector: Vec<CapturedUpdate>,
    /// Whether `X1`'s post-policy RIB entry for `p` changed.
    pub x1_rib_changed: bool,
    /// Duplicates suppressed network-wide (Junos behavior).
    pub duplicates_suppressed: u64,
    /// Duplicates transmitted network-wide (non-suppressing behavior).
    pub duplicates_sent: u64,
}

fn rid(asn: Asn, index: u16) -> RouterId {
    RouterId { asn, index }
}

fn ip(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
    IpAddr::V4(std::net::Ipv4Addr::new(a, b, c, d))
}

impl SessionDecl {
    /// An eBGP session where `b` is `a`'s customer, with explicit import
    /// policies per side (the lab's sessions all follow this shape).
    fn ebgp_customer_with_imports(
        a: RouterId,
        b: RouterId,
        a_import: ImportPolicy,
        b_import: ImportPolicy,
    ) -> Self {
        SessionDecl {
            a,
            b,
            kind: SessionKind::Ebgp,
            a_import,
            a_export: ExportPolicy::default(),
            b_import,
            b_export: ExportPolicy::default(),
            a_view_of_b: Some(RouteSource::Customer),
            b_view_of_a: Some(RouteSource::Provider),
            delay: None,
        }
    }
}

/// Builds the Figure 1 network with every router running `vendor` and the
/// community configuration of `experiment`, by compiling the experiment's
/// [`ScenarioSpec`].
pub fn build_lab(experiment: LabExperiment, vendor: VendorProfile) -> LabNetwork {
    let spec = experiment.spec(vendor);
    let built = scenario::build(&spec);
    let net = built.net;
    let c1 = rid(asns::C, 0);
    let x1 = rid(asns::X, 0);
    let y1 = rid(asns::Y, 0);
    let y2 = rid(asns::Y, 1);
    let y3 = rid(asns::Y, 2);
    let z1 = rid(asns::Z, 0);
    let ids = LabIds {
        c1,
        x1,
        y1,
        y2,
        y3,
        z1,
        x1_y1: net.find_session(x1, y1).expect("lab session X1-Y1"),
        x1_c1: net.find_session(x1, c1).expect("lab session X1-C1"),
        y1_y2: net.find_session(y1, y2).expect("lab session Y1-Y2"),
    };
    LabNetwork { net, ids }
}

/// Runs one experiment with one vendor and reports what was observed, by
/// interpreting the experiment's [`ScenarioSpec`] with the scenario
/// engine.
pub fn run_experiment(experiment: LabExperiment, vendor: VendorProfile) -> LabReport {
    let spec = experiment.spec(vendor);
    let outcome = scenario::run(&spec);
    let p = lab_prefix();
    let c1 = rid(asns::C, 0);
    let x1 = rid(asns::X, 0);
    let y1 = rid(asns::Y, 0);

    let y1_to_x1: Vec<CapturedUpdate> =
        outcome.monitored_in_phase(1, x1, y1).iter().filter(|e| e.to == x1).cloned().collect();
    let at_collector = outcome.collected_in_phase(1, c1).to_vec();
    let x1_rib_changed = outcome.watched_attrs(0, x1, p) != outcome.watched_attrs(1, x1, p);
    let perturb = &outcome.phases[1].counters;

    LabReport {
        experiment,
        vendor,
        y1_to_x1,
        at_collector,
        x1_rib_changed,
        duplicates_suppressed: perturb.duplicates_suppressed,
        duplicates_sent: perturb.duplicates_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::UpdateBody;
    use crate::time::SimTime;

    fn community(v: u16) -> Community {
        Community::from_parts(asns::Y.value() as u16, v)
    }

    #[test]
    fn converged_lab_is_quiet_and_prefers_y2() {
        let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp2, VendorProfile::BIRD_2);
        net.schedule_announce(SimTime::ZERO, ids.z1, lab_prefix());
        net.run_until_quiet();
        // Y1's best exits via Y2 (IGP cost 5 < 10).
        let y1_best = net.router(ids.y1).unwrap().best_route(&lab_prefix()).unwrap().clone();
        assert_eq!(y1_best.egress, ids.y2);
        assert!(y1_best.attrs.communities.contains(&community(300)));
        // Collector holds the route with Y:300, path X Y Z.
        let c_best = net.router(ids.c1).unwrap().best_route(&lab_prefix()).unwrap().clone();
        assert!(c_best.attrs.communities.contains(&community(300)));
        assert_eq!(c_best.attrs.as_path.to_string(), "65001 65002 65003");
    }

    #[test]
    fn exp1_duplicate_to_x1_but_not_collector() {
        // Cisco IOS: duplicate reaches X1, nothing reaches the collector.
        let r = run_experiment(LabExperiment::Exp1, VendorProfile::CISCO_IOS);
        assert_eq!(r.y1_to_x1.len(), 1, "Y1 must emit one duplicate update");
        assert!(r.y1_to_x1[0].update.is_announcement());
        assert!(r.at_collector.is_empty(), "collector must stay silent");
        assert!(!r.x1_rib_changed);
        assert!(r.duplicates_sent >= 1);
    }

    #[test]
    fn exp1_junos_suppresses_duplicate() {
        let r = run_experiment(LabExperiment::Exp1, VendorProfile::JUNOS);
        assert!(r.y1_to_x1.is_empty(), "Junos must suppress the duplicate");
        assert!(r.at_collector.is_empty());
        assert!(r.duplicates_suppressed >= 1);
    }

    #[test]
    fn exp2_community_change_propagates_to_collector() {
        for vendor in VendorProfile::ALL {
            let r = run_experiment(LabExperiment::Exp2, vendor);
            assert_eq!(r.y1_to_x1.len(), 1, "{vendor}: Y1 must send the community change");
            let attrs = match &r.y1_to_x1[0].update.body {
                UpdateBody::Announce { attrs, .. } => attrs.clone(),
                UpdateBody::Withdraw => panic!("expected announcement"),
            };
            assert!(attrs.communities.contains(&community(400)), "{vendor}: Y:400 expected");
            assert_eq!(r.at_collector.len(), 1, "{vendor}: collector must see the nc update");
            let cattrs = r.at_collector[0].update.attrs().unwrap();
            assert!(cattrs.communities.contains(&community(400)));
            // Path unchanged: community is the sole trigger.
            assert_eq!(cattrs.as_path.to_string(), "65001 65002 65003");
            assert!(r.x1_rib_changed, "{vendor}: X1's RIB holds the new community");
        }
    }

    #[test]
    fn exp3_egress_cleaning_still_leaks_nn_duplicate() {
        let r = run_experiment(LabExperiment::Exp3, VendorProfile::CISCO_IOS);
        assert_eq!(r.y1_to_x1.len(), 1);
        assert_eq!(r.at_collector.len(), 1, "egress cleaning leaks a duplicate");
        let attrs = r.at_collector[0].update.attrs().unwrap();
        assert!(attrs.communities.is_empty(), "cleaned update carries no communities");
        assert_eq!(attrs.as_path.to_string(), "65001 65002 65003");
    }

    #[test]
    fn exp3_junos_suppresses_the_leak() {
        let r = run_experiment(LabExperiment::Exp3, VendorProfile::JUNOS);
        assert_eq!(r.y1_to_x1.len(), 1, "the community change itself is genuine");
        assert!(r.at_collector.is_empty(), "Junos suppresses the cleaned duplicate");
        assert!(r.duplicates_suppressed >= 1);
    }

    #[test]
    fn exp4_ingress_cleaning_stops_everything() {
        for vendor in VendorProfile::ALL {
            let r = run_experiment(LabExperiment::Exp4, vendor);
            assert_eq!(
                r.y1_to_x1.len(),
                1,
                "{vendor}: the inter-AS message still crosses the Y1–X1 link"
            );
            assert!(r.at_collector.is_empty(), "{vendor}: collector must stay silent");
            assert!(!r.x1_rib_changed, "{vendor}: X1's post-policy RIB is untouched");
        }
    }

    #[test]
    fn all_experiments_all_vendors_run() {
        for exp in LabExperiment::ALL {
            for vendor in VendorProfile::ALL {
                let r = run_experiment(exp, vendor);
                // The Y1→X1 link sees at most one message per run.
                assert!(r.y1_to_x1.len() <= 1, "{exp:?}/{vendor}: unexpected extra messages");
            }
        }
    }

    #[test]
    fn spec_expectations_hold_for_every_cell() {
        // The paper's §3 table, phrased as declarative expectations and
        // checked by the engine — every experiment × vendor cell.
        for exp in LabExperiment::ALL {
            for vendor in VendorProfile::ALL {
                let spec = exp.spec(vendor);
                let outcome = scenario::run(&spec);
                let violations = outcome.check(&spec.expectations);
                assert!(violations.is_empty(), "{violations:#?}");
            }
        }
    }
}
