//! The BGP decision process (RFC 4271 §9.1.2.2, with common vendor
//! defaults).
//!
//! Order: highest local-pref → shortest AS path → lowest origin → lowest
//! MED (compared only between routes from the same neighbor AS; missing
//! MED treated as 0) → eBGP over iBGP → lowest IGP cost to the egress
//! router (hot-potato) → lowest session id (deterministic stand-in for
//! the router-id tie-break).
//!
//! The IGP-cost step is the paper's Exp1 trigger: when the preferred
//! egress disappears, the best route "changes" internally even though its
//! eBGP-visible attributes do not, and non-suppressing implementations
//! emit a duplicate update.

use std::cmp::Ordering;

use kcc_topology::{IgpMap, RouterId};

use crate::route::RibEntry;

/// Compares two candidate routes at router `me`; `Ordering::Greater` means
/// `a` is better.
pub fn compare(a: &RibEntry, b: &RibEntry, me: RouterId, igp: &IgpMap) -> Ordering {
    // 1. Local preference (higher wins).
    let by_pref = a.effective_local_pref().cmp(&b.effective_local_pref());
    if by_pref != Ordering::Equal {
        return by_pref;
    }
    // 2. AS path length (shorter wins).
    let by_len = b.attrs.as_path.decision_length().cmp(&a.attrs.as_path.decision_length());
    if by_len != Ordering::Equal {
        return by_len;
    }
    // 3. Origin (lower code wins: IGP < EGP < INCOMPLETE).
    let by_origin = b.attrs.origin.code().cmp(&a.attrs.origin.code());
    if by_origin != Ordering::Equal {
        return by_origin;
    }
    // 4. MED, only between routes from the same neighbor AS (lower wins).
    if let (Some(na), Some(nb)) = (a.attrs.as_path.first(), b.attrs.as_path.first()) {
        if na == nb {
            let by_med = b.effective_med().cmp(&a.effective_med());
            if by_med != Ordering::Equal {
                return by_med;
            }
        }
    }
    // 5. eBGP-learned over iBGP-learned.
    let by_kind = a.is_ebgp(me).cmp(&b.is_ebgp(me));
    if by_kind != Ordering::Equal {
        return by_kind;
    }
    // 6. Hot potato: lower IGP cost to egress wins.
    let cost_a = igp_cost_to(me, a.egress, igp);
    let cost_b = igp_cost_to(me, b.egress, igp);
    let by_igp = cost_b.cmp(&cost_a);
    if by_igp != Ordering::Equal {
        return by_igp;
    }
    // 7. Deterministic tie-break: lower session id wins (stand-in for the
    // lowest-router-id rule).
    match (a.from_session, b.from_session) {
        (Some(sa), Some(sb)) => sb.cmp(&sa),
        (None, Some(_)) => Ordering::Greater, // originated wins
        (Some(_), None) => Ordering::Less,
        (None, None) => Ordering::Equal,
    }
}

fn igp_cost_to(me: RouterId, egress: RouterId, igp: &IgpMap) -> u32 {
    if me == egress {
        0
    } else if me.asn == egress.asn {
        igp.cost(me.index, egress.index)
    } else {
        // Foreign egress should not occur; treat as unreachable.
        u32::MAX
    }
}

/// Picks the best route among candidates; `None` for an empty set.
pub fn best<'a, I>(candidates: I, me: RouterId, igp: &IgpMap) -> Option<&'a RibEntry>
where
    I: IntoIterator<Item = &'a RibEntry>,
{
    candidates.into_iter().reduce(|acc, e| {
        if compare(e, acc, me, igp) == Ordering::Greater {
            e
        } else {
            acc
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionId;
    use kcc_bgp_types::attrs::Origin;
    use kcc_bgp_types::{Asn, PathAttributes};
    use kcc_topology::RouteSource;
    use std::sync::Arc;

    fn me() -> RouterId {
        RouterId { asn: Asn(100), index: 0 }
    }

    fn entry(path: &str, session: usize) -> RibEntry {
        RibEntry {
            attrs: Arc::new(PathAttributes {
                as_path: path.parse().unwrap(),
                ..Default::default()
            }),
            source: RouteSource::Peer,
            from_session: Some(SessionId(session)),
            egress: me(),
        }
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let mut a = entry("1 2 3 4", 0);
        Arc::make_mut(&mut a.attrs).local_pref = Some(300);
        let b = entry("1 2", 1); // shorter but lower pref (default 100)
        assert_eq!(compare(&a, &b, me(), &IgpMap::ring(1)), Ordering::Greater);
    }

    #[test]
    fn shorter_path_wins() {
        let a = entry("1 2", 0);
        let b = entry("1 2 3", 1);
        assert_eq!(compare(&a, &b, me(), &IgpMap::ring(1)), Ordering::Greater);
        assert_eq!(compare(&b, &a, me(), &IgpMap::ring(1)), Ordering::Less);
    }

    #[test]
    fn origin_breaks_path_tie() {
        let a = entry("1 2", 0);
        let mut b = entry("3 4", 1);
        Arc::make_mut(&mut b.attrs).origin = Origin::Incomplete;
        assert_eq!(compare(&a, &b, me(), &IgpMap::ring(1)), Ordering::Greater);
    }

    #[test]
    fn med_only_compared_same_neighbor() {
        let mut a = entry("7 9", 0);
        Arc::make_mut(&mut a.attrs).med = Some(50);
        let mut b = entry("7 8", 1);
        Arc::make_mut(&mut b.attrs).med = Some(10);
        // Same neighbor AS 7: lower MED (b) wins.
        assert_eq!(compare(&a, &b, me(), &IgpMap::ring(1)), Ordering::Less);

        let mut c = entry("6 9", 0);
        Arc::make_mut(&mut c.attrs).med = Some(50);
        // Different neighbor AS: MED skipped, falls to tie-breaks
        // (equal eBGP, equal IGP) → session id decides.
        assert_eq!(compare(&c, &b, me(), &IgpMap::ring(1)), Ordering::Greater);
    }

    #[test]
    fn missing_med_treated_as_zero() {
        let a = entry("7 9", 0); // no MED = 0
        let mut b = entry("7 8", 1);
        Arc::make_mut(&mut b.attrs).med = Some(10);
        assert_eq!(compare(&a, &b, me(), &IgpMap::ring(1)), Ordering::Greater);
    }

    #[test]
    fn ebgp_beats_ibgp() {
        let a = entry("1 2", 0); // egress == me → eBGP
        let mut b = entry("3 4", 1);
        b.egress = RouterId { asn: Asn(100), index: 1 }; // iBGP-learned
        assert_eq!(compare(&a, &b, me(), &IgpMap::ring(2)), Ordering::Greater);
    }

    #[test]
    fn igp_cost_breaks_ibgp_tie() {
        // Both iBGP-learned, exits at routers 1 and 2; ring(3) costs 5, 5.
        // Use a matrix to make them differ.
        let igp = IgpMap::matrix(3, vec![0, 5, 10, 5, 0, 5, 10, 5, 0]);
        let mut a = entry("1 2", 0);
        a.egress = RouterId { asn: Asn(100), index: 1 }; // cost 5
        let mut b = entry("3 4", 1);
        b.egress = RouterId { asn: Asn(100), index: 2 }; // cost 10
        assert_eq!(compare(&a, &b, me(), &igp), Ordering::Greater);
    }

    #[test]
    fn session_id_final_tiebreak() {
        let a = entry("1 2", 0);
        let b = entry("3 4", 1);
        assert_eq!(compare(&a, &b, me(), &IgpMap::ring(1)), Ordering::Greater);
    }

    #[test]
    fn originated_beats_learned() {
        let mut orig = entry("", 0);
        orig.from_session = None;
        orig.source = RouteSource::Originated;
        let learned = entry("1", 1);
        assert_eq!(compare(&orig, &learned, me(), &IgpMap::ring(1)), Ordering::Greater);
    }

    #[test]
    fn best_of_many() {
        let a = entry("1 2 3", 0);
        let b = entry("1 2", 1);
        let c = entry("1 2 3 4", 2);
        let igp = IgpMap::ring(1);
        let list = [a, b, c];
        let best = best(list.iter(), me(), &igp).unwrap();
        assert_eq!(best.attrs.as_path.to_string(), "1 2");
        assert!(super::best(std::iter::empty(), me(), &igp).is_none());
    }
}
