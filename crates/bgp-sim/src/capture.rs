//! Message capture: what a route collector (or a monitored link) sees.

use kcc_bgp_types::{MessageKind, RouteUpdate};
use kcc_topology::RouterId;

use crate::route::{SimUpdate, UpdateBody};
use crate::session::SessionId;
use crate::time::SimTime;

/// One captured message.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedUpdate {
    /// Arrival time.
    pub at: SimTime,
    /// The session it arrived on.
    pub session: SessionId,
    /// The sending router (the collector's peer).
    pub from: RouterId,
    /// The receiving router (collector or monitored endpoint).
    pub to: RouterId,
    /// The update itself.
    pub update: SimUpdate,
}

impl CapturedUpdate {
    /// Converts to the analysis pipeline's [`RouteUpdate`] shape.
    pub fn to_route_update(&self) -> RouteUpdate {
        let kind = match &self.update.body {
            UpdateBody::Announce { attrs, .. } => {
                // Shares the sim's interned allocation — no deep copy.
                MessageKind::Announcement(std::sync::Arc::clone(attrs))
            }
            UpdateBody::Withdraw => MessageKind::Withdrawal,
        };
        RouteUpdate { time_us: self.at.as_micros(), prefix: self.update.prefix, kind }
    }
}

/// An append-only capture log.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    entries: Vec<CapturedUpdate>,
}

impl Capture {
    /// An empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one message.
    pub fn record(&mut self, entry: CapturedUpdate) {
        self.entries.push(entry);
    }

    /// All captured messages in arrival order.
    pub fn entries(&self) -> &[CapturedUpdate] {
        &self.entries
    }

    /// Number of captured messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards everything (used between experiment phases: converge,
    /// clear, then perturb).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Messages on one session only.
    pub fn on_session(&self, session: SessionId) -> impl Iterator<Item = &CapturedUpdate> {
        self.entries.iter().filter(move |e| e.session == session)
    }

    /// Announcement count.
    pub fn announcement_count(&self) -> usize {
        self.entries.iter().filter(|e| e.update.is_announcement()).count()
    }

    /// Withdrawal count.
    pub fn withdrawal_count(&self) -> usize {
        self.entries.len() - self.announcement_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{Asn, PathAttributes};

    fn rid(asn: u32) -> RouterId {
        RouterId { asn: Asn(asn), index: 0 }
    }

    fn entry(t: u64, session: usize, announce: bool) -> CapturedUpdate {
        let prefix = "84.205.64.0/24".parse().unwrap();
        let update = if announce {
            SimUpdate::announce(prefix, PathAttributes::default())
        } else {
            SimUpdate::withdraw(prefix)
        };
        CapturedUpdate {
            at: SimTime(t),
            session: SessionId(session),
            from: rid(20_205),
            to: rid(12_345),
            update,
        }
    }

    #[test]
    fn counts_and_filtering() {
        let mut c = Capture::new();
        c.record(entry(1, 0, true));
        c.record(entry(2, 1, true));
        c.record(entry(3, 0, false));
        assert_eq!(c.len(), 3);
        assert_eq!(c.announcement_count(), 2);
        assert_eq!(c.withdrawal_count(), 1);
        assert_eq!(c.on_session(SessionId(0)).count(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut c = Capture::new();
        c.record(entry(1, 0, true));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn converts_to_route_update() {
        let e = entry(5, 0, true);
        let ru = e.to_route_update();
        assert_eq!(ru.time_us, 5);
        assert!(ru.is_announcement());
        let w = entry(6, 0, false).to_route_update();
        assert!(w.is_withdrawal());
    }
}
