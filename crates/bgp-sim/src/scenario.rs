//! Declarative scenarios: topologies, timelines and expectations as data.
//!
//! The paper's §3 laboratory is four *configurations* of one experiment
//! shape: build a topology, converge it, perturb it, and compare what a
//! monitored link and a route collector observe. [`ScenarioSpec`] captures
//! that shape as data so new scenarios — different vendor mixes, cleaning
//! placements, fault timelines, community rewrites — are written, not
//! wired:
//!
//! * a **topology template** ([`TopologyTemplate`]): either an explicit
//!   router/session list (the lab's Figure 1) or a seeded generator
//!   configuration from [`kcc_topology::gen`] plus an optional collector,
//! * a scripted **timeline** of phases ([`Phase`]), each a batch of
//!   events — announces, withdraws, link faults, community/policy
//!   rewrites — scheduled relative to the phase start and run to
//!   quiescence,
//! * **observation points**: monitored sessions and watched `(router,
//!   prefix)` RIB entries, snapshotted per phase ([`PhaseObservation`]),
//! * **expectations** ([`Expectation`]): declarative assertions over the
//!   per-phase captures, checked by [`ScenarioOutcome::check`].
//!
//! The engine itself is two functions: [`build`] compiles a spec into a
//! [`Network`], [`run`] executes the timeline and returns a
//! [`ScenarioOutcome`]. Everything stays deterministic: same spec, same
//! observations, byte for byte.
//!
//! ```
//! use kcc_bgp_sim::lab::LabExperiment;
//! use kcc_bgp_sim::{scenario, VendorProfile};
//!
//! // The paper's Exp2 is just a spec now; interpret it with the engine.
//! let spec = LabExperiment::Exp2.spec(VendorProfile::CISCO_IOS);
//! let outcome = scenario::run(&spec);
//! assert!(outcome.check(&spec.expectations).is_empty());
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::net::IpAddr;

use kcc_bgp_types::{Asn, PathAttributes, Prefix};
use kcc_topology::{
    generate, generate_internet, IgpMap, InternetConfig, RouteSource, RouterId, Topology,
    TopologyConfig,
};

use crate::capture::CapturedUpdate;
use crate::network::{Network, SimConfig};
use crate::policy::{ExportPolicy, ImportPolicy};
use crate::router::Router;
use crate::session::{Session, SessionId, SessionKind};
use crate::time::{SimDuration, SimTime};
use crate::vendor::VendorProfile;

/// A complete declarative scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Human-readable name, used in expectation-violation messages.
    pub name: String,
    /// Simulator configuration (seed, default vendor, delays, faults,
    /// dampening).
    pub sim: SimConfig,
    /// What network to build.
    pub topology: TopologyTemplate,
    /// Sessions to packet-capture, named by their two endpoints.
    pub monitors: Vec<(RouterId, RouterId)>,
    /// `(router, prefix)` RIB entries whose post-policy attributes are
    /// recorded at every phase boundary.
    pub watch: Vec<(RouterId, Prefix)>,
    /// The scripted timeline: phases run in order, each to quiescence.
    pub phases: Vec<Phase>,
    /// Declarative assertions over the outcome.
    pub expectations: Vec<Expectation>,
}

/// What network a scenario runs on.
#[derive(Debug, Clone)]
pub enum TopologyTemplate {
    /// An explicit router/session list (the lab's Figure 1 style).
    /// Insertion order is preserved — session ids and event ordering are
    /// deterministic functions of the declaration order.
    Explicit {
        /// The routers.
        routers: Vec<RouterDecl>,
        /// The sessions, in creation order.
        sessions: Vec<SessionDecl>,
    },
    /// A generated AS-level topology, optionally with a route collector
    /// attached (peers export to it like to a customer).
    Generated {
        /// Generator configuration (seeded; deterministic).
        config: TopologyConfig,
        /// Optional collector AS and its peer routers.
        collector: Option<CollectorDecl>,
    },
    /// An internet-scale power-law topology
    /// ([`kcc_topology::generate_internet`]), optionally with a route
    /// collector — the 10k+-AS substrate behind `bench_sim` and the
    /// sweep layer's internet cells.
    GeneratedInternet {
        /// Internet generator configuration (seeded; deterministic).
        config: InternetConfig,
        /// Optional collector AS and its peer routers.
        collector: Option<CollectorDecl>,
    },
}

/// One declared router.
#[derive(Debug, Clone)]
pub struct RouterDecl {
    /// Identity (AS + index).
    pub id: RouterId,
    /// Loopback/session address (next-hop-self source).
    pub ip: IpAddr,
    /// Implementation profile; `None` inherits the sim default vendor.
    pub vendor: Option<VendorProfile>,
    /// IGP cost map of the owning AS.
    pub igp: IgpMap,
    /// True for route collectors (capture only, never export).
    pub is_collector: bool,
}

impl RouterDecl {
    /// A single-router declaration with a trivial IGP, inheriting the
    /// scenario's default vendor.
    pub fn new(id: RouterId, ip: IpAddr) -> Self {
        RouterDecl { id, ip, vendor: None, igp: IgpMap::ring(1), is_collector: false }
    }
}

/// One declared session. Field semantics mirror [`Session`]; `delay:
/// None` inherits the scenario's base link delay.
#[derive(Debug, Clone)]
pub struct SessionDecl {
    /// First endpoint.
    pub a: RouterId,
    /// Second endpoint.
    pub b: RouterId,
    /// eBGP or iBGP.
    pub kind: SessionKind,
    /// Policy `a` applies to routes received from `b`.
    pub a_import: ImportPolicy,
    /// Policy `a` applies to routes sent toward `b`.
    pub a_export: ExportPolicy,
    /// Policy `b` applies to routes received from `a`.
    pub b_import: ImportPolicy,
    /// Policy `b` applies to routes sent toward `a`.
    pub b_export: ExportPolicy,
    /// What `b` is to `a` (None on iBGP).
    pub a_view_of_b: Option<RouteSource>,
    /// What `a` is to `b`.
    pub b_view_of_a: Option<RouteSource>,
    /// One-way delay; `None` inherits [`SimConfig::base_link_delay`].
    pub delay: Option<SimDuration>,
}

impl SessionDecl {
    /// An iBGP session with empty policies.
    pub fn ibgp(a: RouterId, b: RouterId) -> Self {
        SessionDecl {
            a,
            b,
            kind: SessionKind::Ibgp,
            a_import: ImportPolicy::default(),
            a_export: ExportPolicy::default(),
            b_import: ImportPolicy::default(),
            b_export: ExportPolicy::default(),
            a_view_of_b: None,
            b_view_of_a: None,
            delay: None,
        }
    }

    /// An eBGP session where `b` is `a`'s customer, with the conventional
    /// Gao–Rexford import policies on both sides.
    pub fn ebgp_customer(a: RouterId, b: RouterId) -> Self {
        SessionDecl {
            a,
            b,
            kind: SessionKind::Ebgp,
            a_import: ImportPolicy::for_neighbor(RouteSource::Customer),
            a_export: ExportPolicy::default(),
            b_import: ImportPolicy::for_neighbor(RouteSource::Provider),
            b_export: ExportPolicy::default(),
            a_view_of_b: Some(RouteSource::Customer),
            b_view_of_a: Some(RouteSource::Provider),
            delay: None,
        }
    }

    fn to_session(&self, base_delay: SimDuration) -> Session {
        Session {
            id: SessionId(0),
            kind: self.kind,
            a: self.a,
            b: self.b,
            a_import: self.a_import.clone(),
            a_export: self.a_export.clone(),
            b_import: self.b_import.clone(),
            b_export: self.b_export.clone(),
            a_view_of_b: self.a_view_of_b,
            b_view_of_a: self.b_view_of_a,
            delay: self.delay.unwrap_or(base_delay),
            up: true,
        }
    }
}

/// A route collector to attach to a generated topology.
#[derive(Debug, Clone)]
pub struct CollectorDecl {
    /// The collector's AS number (must not collide with generated ASes).
    pub asn: Asn,
    /// The routers that feed it.
    pub peers: Vec<RouterId>,
}

/// One phase of a scenario: a batch of events scheduled relative to the
/// phase start, then run to quiescence. Captures are snapshotted and
/// cleared at every phase boundary, so each phase observes only its own
/// traffic.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name (for reports and violation messages).
    pub name: String,
    /// The events of this phase.
    pub events: Vec<ScenarioEvent>,
}

impl Phase {
    /// A named phase.
    pub fn new(name: &str, events: Vec<ScenarioEvent>) -> Self {
        Phase { name: name.to_string(), events }
    }
}

/// One scheduled event: `action` fires `after` the phase starts.
#[derive(Debug, Clone)]
pub struct ScenarioEvent {
    /// Offset from the phase start.
    pub after: SimDuration,
    /// What happens.
    pub action: ScenarioAction,
}

impl ScenarioEvent {
    /// An event at the phase start.
    pub fn immediately(action: ScenarioAction) -> Self {
        ScenarioEvent { after: SimDuration::ZERO, action }
    }

    /// An event `after` the phase start.
    pub fn after(after: SimDuration, action: ScenarioAction) -> Self {
        ScenarioEvent { after, action }
    }
}

/// The scriptable actions of a scenario timeline.
#[derive(Debug, Clone)]
pub enum ScenarioAction {
    /// An origin router starts announcing a prefix.
    Announce {
        /// The originating router.
        router: RouterId,
        /// The prefix.
        prefix: Prefix,
    },
    /// An origin router withdraws a prefix.
    Withdraw {
        /// The originating router.
        router: RouterId,
        /// The prefix.
        prefix: Prefix,
    },
    /// Every prefix of the generated topology is announced by its origin
    /// (valid only on [`TopologyTemplate::Generated`]).
    AnnounceAllOrigins,
    /// The session between two routers goes down.
    LinkDown {
        /// First endpoint.
        a: RouterId,
        /// Second endpoint.
        b: RouterId,
    },
    /// The session between two routers comes back up.
    LinkUp {
        /// First endpoint.
        a: RouterId,
        /// Second endpoint.
        b: RouterId,
    },
    /// Every eBGP session between two ASes goes down — an inter-AS
    /// adjacency failure, including parallel interconnections (generated
    /// topologies, where router indices are not known in advance).
    InterAsLinkDown {
        /// First AS.
        a: Asn,
        /// Second AS.
        b: Asn,
    },
    /// Every eBGP session between two ASes comes back up.
    InterAsLinkUp {
        /// First AS.
        a: Asn,
        /// Second AS.
        b: Asn,
    },
    /// `router` replaces the import policy it applies to routes from
    /// `peer` — a community rewrite at ingress. On eBGP sessions the peer
    /// replays its Adj-RIB-Out (route refresh) so the rewrite is
    /// immediately observable.
    RewriteImport {
        /// The reconfigured endpoint.
        router: RouterId,
        /// The neighbor.
        peer: RouterId,
        /// The replacement policy.
        policy: ImportPolicy,
    },
    /// `router` replaces the export policy it applies toward `peer` — a
    /// community rewrite at egress — then re-advertises its Loc-RIB there
    /// (soft reset out).
    RewriteExport {
        /// The reconfigured endpoint.
        router: RouterId,
        /// The neighbor.
        peer: RouterId,
        /// The replacement policy.
        policy: ExportPolicy,
    },
}

/// Bound on an observed message count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountBound {
    /// Exactly this many.
    Exactly(usize),
    /// At least this many.
    AtLeast(usize),
    /// At most this many.
    AtMost(usize),
}

impl CountBound {
    /// True if `n` satisfies the bound.
    pub fn ok(self, n: usize) -> bool {
        match self {
            CountBound::Exactly(k) => n == k,
            CountBound::AtLeast(k) => n >= k,
            CountBound::AtMost(k) => n <= k,
        }
    }
}

impl fmt::Display for CountBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountBound::Exactly(k) => write!(f, "exactly {k}"),
            CountBound::AtLeast(k) => write!(f, "at least {k}"),
            CountBound::AtMost(k) => write!(f, "at most {k}"),
        }
    }
}

/// A declarative assertion over a [`ScenarioOutcome`]. Phase indices are
/// zero-based positions in [`ScenarioSpec::phases`].
#[derive(Debug, Clone)]
pub enum Expectation {
    /// Message count on a monitored session during a phase, optionally
    /// restricted to one receiving direction.
    MonitorTraffic {
        /// Phase index.
        phase: usize,
        /// First endpoint of the monitored session.
        a: RouterId,
        /// Second endpoint.
        b: RouterId,
        /// Count only messages delivered *to* this router, if set.
        to: Option<RouterId>,
        /// The required count.
        bound: CountBound,
    },
    /// Message count captured at a collector during a phase.
    CollectorTraffic {
        /// Phase index.
        phase: usize,
        /// The collector router.
        collector: RouterId,
        /// The required count.
        bound: CountBound,
    },
    /// Whether a watched `(router, prefix)` RIB entry changed between the
    /// previous phase boundary and this one (the entry must be listed in
    /// [`ScenarioSpec::watch`]).
    WatchedRouteChanged {
        /// Phase index (compared against `phase - 1`).
        phase: usize,
        /// The watched router.
        router: RouterId,
        /// The watched prefix.
        prefix: Prefix,
        /// Expected answer.
        changed: bool,
    },
    /// Network-wide duplicates suppressed during a phase (Junos behavior).
    DuplicatesSuppressed {
        /// Phase index.
        phase: usize,
        /// The required count.
        bound: CountBound,
    },
    /// Network-wide duplicates transmitted during a phase.
    DuplicatesSent {
        /// Phase index.
        phase: usize,
        /// The required count.
        bound: CountBound,
    },
}

/// Network-wide counter sums, used as per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Updates received by all routers.
    pub updates_received: u64,
    /// Updates sent by all routers.
    pub updates_sent: u64,
    /// Duplicates suppressed network-wide.
    pub duplicates_suppressed: u64,
    /// Duplicates transmitted network-wide.
    pub duplicates_sent: u64,
    /// Updates ignored under dampening suppression.
    pub dampened: u64,
}

impl CounterSnapshot {
    /// The current sums over all routers.
    pub fn of(net: &Network) -> Self {
        let mut s = CounterSnapshot::default();
        for r in net.routers() {
            s.updates_received += r.counters.updates_received;
            s.updates_sent += r.counters.updates_sent;
            s.duplicates_suppressed += r.counters.duplicates_suppressed;
            s.duplicates_sent += r.counters.duplicates_sent;
            s.dampened += r.counters.dampened;
        }
        s
    }

    /// Component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            updates_received: self.updates_received - earlier.updates_received,
            updates_sent: self.updates_sent - earlier.updates_sent,
            duplicates_suppressed: self.duplicates_suppressed - earlier.duplicates_suppressed,
            duplicates_sent: self.duplicates_sent - earlier.duplicates_sent,
            dampened: self.dampened - earlier.dampened,
        }
    }
}

/// What one phase observed.
#[derive(Debug, Clone)]
pub struct PhaseObservation {
    /// The phase's name.
    pub name: String,
    /// Simulated time when the phase started.
    pub started: SimTime,
    /// Time of the last event processed in the phase.
    pub quiesced: SimTime,
    /// Messages captured on each monitored session during the phase.
    pub monitored: BTreeMap<SessionId, Vec<CapturedUpdate>>,
    /// Messages captured at each collector during the phase.
    pub collected: BTreeMap<RouterId, Vec<CapturedUpdate>>,
    /// Post-policy best-route attributes of each watched entry at the
    /// phase boundary (`None` when no route is installed). Shared with
    /// the sim's interned state — a snapshot costs a pointer per entry.
    pub watched: BTreeMap<(RouterId, Prefix), Option<std::sync::Arc<PathAttributes>>>,
    /// Counter deltas accumulated during the phase.
    pub counters: CounterSnapshot,
}

/// A compiled scenario, before the timeline runs.
#[derive(Debug)]
pub struct BuiltScenario {
    /// The network.
    pub net: Network,
    /// The generated topology, when the template was
    /// [`TopologyTemplate::Generated`].
    pub topology: Option<Topology>,
}

/// The result of running a scenario.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The spec's name.
    pub name: String,
    /// One observation per phase, in order.
    pub phases: Vec<PhaseObservation>,
    /// The network in its final state, for further inspection.
    pub net: Network,
}

impl ScenarioOutcome {
    /// Messages on the monitored session between `a` and `b` during a
    /// phase (empty if the session is unmonitored or the phase index is
    /// out of range).
    pub fn monitored_in_phase(&self, phase: usize, a: RouterId, b: RouterId) -> &[CapturedUpdate] {
        let Some(sid) = self.net.find_session(a, b) else {
            return &[];
        };
        self.phases
            .get(phase)
            .and_then(|p| p.monitored.get(&sid))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Messages captured at a collector during a phase.
    pub fn collected_in_phase(&self, phase: usize, collector: RouterId) -> &[CapturedUpdate] {
        self.phases
            .get(phase)
            .and_then(|p| p.collected.get(&collector))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// A watched entry's attributes at a phase boundary.
    pub fn watched_attrs(
        &self,
        phase: usize,
        router: RouterId,
        prefix: Prefix,
    ) -> Option<&PathAttributes> {
        self.phases.get(phase).and_then(|p| p.watched.get(&(router, prefix)))?.as_deref()
    }

    /// Evaluates expectations; returns one message per violation (empty
    /// means everything held).
    pub fn check(&self, expectations: &[Expectation]) -> Vec<String> {
        let mut violations = Vec::new();
        for e in expectations {
            // A phase index past the timeline is a spec bug; flag it
            // instead of letting zero-count bounds pass vacuously.
            let phase_index = match e {
                Expectation::MonitorTraffic { phase, .. }
                | Expectation::CollectorTraffic { phase, .. }
                | Expectation::WatchedRouteChanged { phase, .. }
                | Expectation::DuplicatesSuppressed { phase, .. }
                | Expectation::DuplicatesSent { phase, .. } => *phase,
            };
            if phase_index >= self.phases.len() {
                violations.push(format!(
                    "{}: expectation references phase {phase_index}, but the timeline has only \
                     {} phases",
                    self.name,
                    self.phases.len()
                ));
                continue;
            }
            match e {
                Expectation::MonitorTraffic { phase, a, b, to, bound } => {
                    // A mis-declared session must be a violation, not a
                    // vacuous zero-count pass.
                    let entries = self
                        .net
                        .find_session(*a, *b)
                        .and_then(|sid| self.phases.get(*phase)?.monitored.get(&sid));
                    let Some(entries) = entries else {
                        violations.push(format!(
                            "{}: phase {phase}: session {a}-{b} is not monitored (missing from \
                             ScenarioSpec::monitors, or no such session)",
                            self.name
                        ));
                        continue;
                    };
                    let n = entries.iter().filter(|m| to.is_none_or(|t| m.to == t)).count();
                    if !bound.ok(n) {
                        violations.push(format!(
                            "{}: phase {phase}: monitor {a}-{b}: saw {n} messages, expected {bound}",
                            self.name
                        ));
                    }
                }
                Expectation::CollectorTraffic { phase, collector, bound } => {
                    let n = self.collected_in_phase(*phase, *collector).len();
                    if !bound.ok(n) {
                        violations.push(format!(
                            "{}: phase {phase}: collector {collector}: saw {n} messages, expected {bound}",
                            self.name
                        ));
                    }
                }
                Expectation::WatchedRouteChanged { phase, router, prefix, changed } => {
                    if *phase == 0 {
                        violations.push(format!(
                            "{}: WatchedRouteChanged needs a predecessor phase (got phase 0)",
                            self.name
                        ));
                        continue;
                    }
                    let before =
                        self.phases.get(phase - 1).and_then(|p| p.watched.get(&(*router, *prefix)));
                    let after =
                        self.phases.get(*phase).and_then(|p| p.watched.get(&(*router, *prefix)));
                    match (before, after) {
                        (Some(b), Some(a)) => {
                            let did_change = b != a;
                            if did_change != *changed {
                                violations.push(format!(
                                    "{}: phase {phase}: {router} route for {prefix} {}, expected it to {}",
                                    self.name,
                                    if did_change { "changed" } else { "did not change" },
                                    if *changed { "change" } else { "stay" },
                                ));
                            }
                        }
                        _ => violations.push(format!(
                            "{}: phase {phase}: ({router}, {prefix}) is not watched",
                            self.name
                        )),
                    }
                }
                Expectation::DuplicatesSuppressed { phase, bound } => {
                    let n = self
                        .phases
                        .get(*phase)
                        .map(|p| p.counters.duplicates_suppressed as usize)
                        .unwrap_or(0);
                    if !bound.ok(n) {
                        violations.push(format!(
                            "{}: phase {phase}: {n} duplicates suppressed, expected {bound}",
                            self.name
                        ));
                    }
                }
                Expectation::DuplicatesSent { phase, bound } => {
                    let n = self
                        .phases
                        .get(*phase)
                        .map(|p| p.counters.duplicates_sent as usize)
                        .unwrap_or(0);
                    if !bound.ok(n) {
                        violations.push(format!(
                            "{}: phase {phase}: {n} duplicates sent, expected {bound}",
                            self.name
                        ));
                    }
                }
            }
        }
        violations
    }
}

/// Compiles a spec into a network (and, for generated templates, the
/// topology it came from). Panics on inconsistent specs — a monitor or
/// session referencing a missing router is a bug in the spec, not a
/// runtime condition.
pub fn build(spec: &ScenarioSpec) -> BuiltScenario {
    let (mut net, topology) = match &spec.topology {
        TopologyTemplate::Explicit { routers, sessions } => {
            let mut net = Network::new(spec.sim.clone());
            for decl in routers {
                let vendor = decl.vendor.unwrap_or(spec.sim.default_vendor);
                let mut router = Router::new(decl.id, decl.ip, vendor, decl.igp.clone());
                router.is_collector = decl.is_collector;
                router.dampening = spec.sim.dampening;
                net.add_router(router);
            }
            for decl in sessions {
                net.add_session(decl.to_session(spec.sim.base_link_delay));
            }
            (net, None)
        }
        TopologyTemplate::Generated { config, collector } => {
            let topo = generate(config);
            let mut net = Network::from_topology(&topo, spec.sim.clone());
            if let Some(c) = collector {
                net.attach_collector(c.asn, &c.peers);
            }
            (net, Some(topo))
        }
        TopologyTemplate::GeneratedInternet { config, collector } => {
            let topo = generate_internet(config);
            let mut net = Network::from_topology(&topo, spec.sim.clone());
            if let Some(c) = collector {
                net.attach_collector(c.asn, &c.peers);
            }
            (net, Some(topo))
        }
    };
    for &(a, b) in &spec.monitors {
        let sid = net
            .find_session(a, b)
            .unwrap_or_else(|| panic!("{}: no session between {a} and {b} to monitor", spec.name));
        net.monitor_session(sid);
    }
    for &(r, prefix) in &spec.watch {
        assert!(
            net.router(r).is_some(),
            "{}: watch entry ({r}, {prefix}) names a router that does not exist",
            spec.name
        );
    }
    BuiltScenario { net, topology }
}

/// Runs a scenario: builds the network, executes each phase to
/// quiescence, snapshots observations at every phase boundary.
pub fn run(spec: &ScenarioSpec) -> ScenarioOutcome {
    let BuiltScenario { mut net, topology } = build(spec);
    let mut phases = Vec::with_capacity(spec.phases.len());
    let mut counters_before = CounterSnapshot::of(&net);
    for phase in &spec.phases {
        let started = net.now();
        for ev in &phase.events {
            schedule_action(&mut net, topology.as_ref(), started + ev.after, &ev.action, spec);
        }
        let quiesced = net.run_until_quiet();
        let counters_now = CounterSnapshot::of(&net);
        let monitored = spec
            .monitors
            .iter()
            .filter_map(|&(a, b)| net.find_session(a, b))
            .map(|sid| (sid, net.monitored(sid).map(|c| c.entries().to_vec()).unwrap_or_default()))
            .collect();
        let collected = net.captures().map(|(id, c)| (*id, c.entries().to_vec())).collect();
        let watched = spec
            .watch
            .iter()
            .map(|&(r, p)| {
                ((r, p), net.router(r).and_then(|rt| rt.best_route(&p)).map(|e| e.attrs.clone()))
            })
            .collect();
        phases.push(PhaseObservation {
            name: phase.name.clone(),
            started,
            quiesced,
            monitored,
            collected,
            watched,
            counters: counters_now.delta(&counters_before),
        });
        counters_before = counters_now;
        net.clear_captures();
    }
    ScenarioOutcome { name: spec.name.clone(), phases, net }
}

fn schedule_action(
    net: &mut Network,
    topo: Option<&Topology>,
    at: SimTime,
    action: &ScenarioAction,
    spec: &ScenarioSpec,
) {
    let session_between = |net: &Network, a: RouterId, b: RouterId| {
        net.find_session(a, b)
            .unwrap_or_else(|| panic!("{}: no session between {a} and {b}", spec.name))
    };
    match action {
        ScenarioAction::Announce { router, prefix } => net.schedule_announce(at, *router, *prefix),
        ScenarioAction::Withdraw { router, prefix } => net.schedule_withdraw(at, *router, *prefix),
        ScenarioAction::AnnounceAllOrigins => {
            let topo = topo.unwrap_or_else(|| {
                panic!("{}: AnnounceAllOrigins requires a generated topology", spec.name)
            });
            net.announce_all_origins(topo, at);
        }
        ScenarioAction::LinkDown { a, b } => {
            let sid = session_between(net, *a, *b);
            net.schedule_link_down(at, sid);
        }
        ScenarioAction::LinkUp { a, b } => {
            let sid = session_between(net, *a, *b);
            net.schedule_link_up(at, sid);
        }
        ScenarioAction::InterAsLinkDown { a, b } => {
            let sids = net.find_ebgp_sessions(*a, *b);
            assert!(!sids.is_empty(), "{}: no eBGP session between AS{a} and AS{b}", spec.name);
            for sid in sids {
                net.schedule_link_down(at, sid);
            }
        }
        ScenarioAction::InterAsLinkUp { a, b } => {
            let sids = net.find_ebgp_sessions(*a, *b);
            assert!(!sids.is_empty(), "{}: no eBGP session between AS{a} and AS{b}", spec.name);
            for sid in sids {
                net.schedule_link_up(at, sid);
            }
        }
        ScenarioAction::RewriteImport { router, peer, policy } => {
            net.schedule_import_policy(at, *router, *peer, policy.clone());
        }
        ScenarioAction::RewriteExport { router, peer, policy } => {
            net.schedule_export_policy(at, *router, *peer, policy.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::Community;

    fn rid(asn: u32, index: u16) -> RouterId {
        RouterId { asn: Asn(asn), index }
    }

    fn ip(d: u8) -> IpAddr {
        IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, d))
    }

    fn prefix() -> Prefix {
        "203.0.113.0/24".parse().unwrap()
    }

    /// origin A(AS1) -- transit B(AS2) -- collector C(AS3).
    fn chain_spec() -> ScenarioSpec {
        let a = rid(1, 0);
        let b = rid(2, 0);
        let c = rid(3, 0);
        let collector = RouterDecl { is_collector: true, ..RouterDecl::new(c, ip(3)) };
        ScenarioSpec {
            name: "chain".into(),
            sim: SimConfig { delay_spread: SimDuration::ZERO, ..Default::default() },
            topology: TopologyTemplate::Explicit {
                routers: vec![RouterDecl::new(a, ip(1)), RouterDecl::new(b, ip(2)), collector],
                sessions: vec![SessionDecl::ebgp_customer(b, a), SessionDecl::ebgp_customer(b, c)],
            },
            monitors: vec![(a, b)],
            watch: vec![(b, prefix())],
            phases: vec![Phase::new(
                "converge",
                vec![ScenarioEvent::immediately(ScenarioAction::Announce {
                    router: a,
                    prefix: prefix(),
                })],
            )],
            expectations: vec![
                Expectation::CollectorTraffic {
                    phase: 0,
                    collector: c,
                    bound: CountBound::Exactly(1),
                },
                Expectation::MonitorTraffic {
                    phase: 0,
                    a,
                    b,
                    to: Some(b),
                    bound: CountBound::Exactly(1),
                },
            ],
        }
    }

    #[test]
    fn explicit_chain_runs_and_expectations_hold() {
        let spec = chain_spec();
        let outcome = run(&spec);
        assert_eq!(outcome.check(&spec.expectations), Vec::<String>::new());
        // The collector learned the route through B.
        let c_best = outcome.net.router(rid(3, 0)).unwrap().best_route(&prefix()).unwrap();
        assert_eq!(c_best.attrs.as_path.to_string(), "2 1");
        assert!(outcome.watched_attrs(0, rid(2, 0), prefix()).is_some());
    }

    #[test]
    fn violated_expectations_are_reported() {
        let spec = chain_spec();
        let outcome = run(&spec);
        let violations = outcome.check(&[Expectation::CollectorTraffic {
            phase: 0,
            collector: rid(3, 0),
            bound: CountBound::Exactly(7),
        }]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("expected exactly 7"), "{violations:?}");
    }

    #[test]
    fn out_of_range_phase_index_is_a_violation() {
        let spec = chain_spec(); // one phase
        let outcome = run(&spec);
        let violations = outcome.check(&[Expectation::CollectorTraffic {
            phase: 5,
            collector: rid(3, 0),
            bound: CountBound::Exactly(0),
        }]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("only 1 phases"), "{violations:?}");
    }

    #[test]
    #[should_panic(expected = "names a router that does not exist")]
    fn watch_of_missing_router_panics_at_build() {
        let mut spec = chain_spec();
        spec.watch.push((rid(999, 0), prefix()));
        build(&spec);
    }

    #[test]
    fn monitor_expectation_on_unmonitored_session_is_a_violation() {
        // The B–C session exists but is not in spec.monitors; expecting
        // traffic bounds on it must flag the spec bug, not pass with a
        // vacuous zero count.
        let spec = chain_spec();
        let outcome = run(&spec);
        let violations = outcome.check(&[Expectation::MonitorTraffic {
            phase: 0,
            a: rid(2, 0),
            b: rid(3, 0),
            to: None,
            bound: CountBound::Exactly(0),
        }]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("not monitored"), "{violations:?}");
    }

    #[test]
    fn import_rewrite_triggers_refresh_and_nc_update() {
        // Phase 2 rewrites B's import from A to add a community. The
        // route-refresh replay must carry the tag to the collector as a
        // community-only (nc-style) update.
        let mut spec = chain_spec();
        let tag = Community::from_parts(2, 999);
        spec.phases.push(Phase::new(
            "rewrite",
            vec![ScenarioEvent::after(
                SimDuration::from_secs(60),
                ScenarioAction::RewriteImport {
                    router: rid(2, 0),
                    peer: rid(1, 0),
                    policy: ImportPolicy {
                        add_communities: vec![tag],
                        ..ImportPolicy::for_neighbor(RouteSource::Customer)
                    },
                },
            )],
        ));
        let outcome = run(&spec);
        let at_c = outcome.collected_in_phase(1, rid(3, 0));
        assert_eq!(at_c.len(), 1, "collector must see the rewrite");
        let attrs = at_c[0].update.attrs().unwrap();
        assert!(attrs.communities.contains(&tag));
        // Path unchanged: the community is the sole trigger.
        assert_eq!(attrs.as_path.to_string(), "2 1");
        // And B's watched RIB entry changed between the phases.
        let violations = outcome.check(&[Expectation::WatchedRouteChanged {
            phase: 1,
            router: rid(2, 0),
            prefix: prefix(),
            changed: true,
        }]);
        assert_eq!(violations, Vec::<String>::new());
    }

    #[test]
    fn export_rewrite_cleans_communities_at_collector() {
        // B tags on import from the start; phase 2 turns on egress
        // cleaning toward the collector. The soft reset must deliver the
        // cleaned announcement.
        let mut spec = chain_spec();
        let tag = Community::from_parts(2, 777);
        if let TopologyTemplate::Explicit { sessions, .. } = &mut spec.topology {
            sessions[0].a_import.add_communities.push(tag);
        }
        spec.phases.push(Phase::new(
            "clean",
            vec![ScenarioEvent::after(
                SimDuration::from_secs(60),
                ScenarioAction::RewriteExport {
                    router: rid(2, 0),
                    peer: rid(3, 0),
                    policy: ExportPolicy { clean_communities: true, ..Default::default() },
                },
            )],
        ));
        let outcome = run(&spec);
        // Converged state carried the tag...
        let initial = outcome.collected_in_phase(0, rid(3, 0));
        assert!(initial[0].update.attrs().unwrap().communities.contains(&tag));
        // ...the rewrite phase delivers the cleaned replacement.
        let cleaned = outcome.collected_in_phase(1, rid(3, 0));
        assert_eq!(cleaned.len(), 1);
        assert!(cleaned[0].update.attrs().unwrap().communities.is_empty());
    }

    #[test]
    fn generated_template_with_collector_converges() {
        let spec = ScenarioSpec {
            name: "generated".into(),
            sim: SimConfig::default(),
            topology: TopologyTemplate::Generated {
                config: TopologyConfig {
                    n_tier1: 2,
                    n_transit: 3,
                    n_stub: 5,
                    ..Default::default()
                },
                collector: Some(CollectorDecl { asn: Asn(3333), peers: vec![rid(20_000, 0)] }),
            },
            monitors: vec![],
            watch: vec![],
            phases: vec![Phase::new(
                "converge",
                vec![ScenarioEvent::immediately(ScenarioAction::AnnounceAllOrigins)],
            )],
            expectations: vec![Expectation::CollectorTraffic {
                phase: 0,
                collector: rid(3333, 0),
                bound: CountBound::AtLeast(1),
            }],
        };
        let outcome = run(&spec);
        assert_eq!(outcome.check(&spec.expectations), Vec::<String>::new());
        assert!(outcome.phases[0].quiesced > SimTime::ZERO);
    }

    #[test]
    fn fault_injection_rides_the_spec() {
        // Fault configuration is part of the spec's SimConfig: a lossy
        // scenario must drop messages, deterministically per seed.
        let spec = ScenarioSpec {
            name: "lossy".into(),
            sim: SimConfig {
                fault: crate::fault::FaultConfig::lossy(0.3, 5),
                ..Default::default()
            },
            topology: TopologyTemplate::Generated {
                config: TopologyConfig {
                    n_tier1: 2,
                    n_transit: 3,
                    n_stub: 5,
                    ..Default::default()
                },
                collector: None,
            },
            monitors: vec![],
            watch: vec![],
            phases: vec![Phase::new(
                "converge",
                vec![ScenarioEvent::immediately(ScenarioAction::AnnounceAllOrigins)],
            )],
            expectations: vec![],
        };
        let a = run(&spec);
        assert!(a.net.stats.messages_dropped > 0, "lossy spec must drop messages");
        let b = run(&spec);
        assert_eq!(a.net.stats.messages_dropped, b.net.stats.messages_dropped);
    }

    #[test]
    fn identical_specs_produce_identical_outcomes() {
        let spec = chain_spec();
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a.phases.len(), b.phases.len());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(pa.quiesced, pb.quiesced);
            assert_eq!(pa.counters, pb.counters);
            assert_eq!(pa.collected, pb.collected);
            assert_eq!(pa.monitored, pb.monitored);
        }
    }

    #[test]
    fn count_bound_semantics() {
        assert!(CountBound::Exactly(2).ok(2) && !CountBound::Exactly(2).ok(3));
        assert!(CountBound::AtLeast(2).ok(5) && !CountBound::AtLeast(2).ok(1));
        assert!(CountBound::AtMost(2).ok(0) && !CountBound::AtMost(2).ok(3));
        assert_eq!(CountBound::AtLeast(1).to_string(), "at least 1");
    }
}
