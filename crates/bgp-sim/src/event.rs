//! The discrete event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use kcc_bgp_types::Prefix;
use kcc_topology::RouterId;

use crate::policy::{ExportPolicy, ImportPolicy};
use crate::route::SimUpdate;
use crate::session::SessionId;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A BGP update arrives at `to` on `session`.
    Deliver {
        /// The session it traveled on.
        session: SessionId,
        /// The receiving router.
        to: RouterId,
        /// The update.
        update: SimUpdate,
    },
    /// A session goes down (link failure / admin disable).
    LinkDown {
        /// The affected session.
        session: SessionId,
    },
    /// A session comes (back) up.
    LinkUp {
        /// The affected session.
        session: SessionId,
    },
    /// An origin router starts announcing a prefix.
    Announce {
        /// The originating router.
        router: RouterId,
        /// The prefix.
        prefix: Prefix,
    },
    /// An origin router withdraws a prefix.
    Withdraw {
        /// The originating router.
        router: RouterId,
        /// The prefix.
        prefix: Prefix,
    },
    /// A router's MRAI timer for a session expires: flush pending
    /// advertisements.
    MraiExpire {
        /// The router owning the timer.
        router: RouterId,
        /// The session the timer paces.
        session: SessionId,
    },
    /// A dampening reuse check fires for a suppressed route.
    DampReuse {
        /// The router holding the penalty state.
        router: RouterId,
        /// The dampened session.
        session: SessionId,
        /// The dampened prefix.
        prefix: Prefix,
    },
    /// A router replaces the import policy it applies on a session — the
    /// scenario engine's "community rewrite" knob. On eBGP sessions the
    /// peer then replays its Adj-RIB-Out (an RFC 2918 route refresh) so
    /// the new policy takes effect without waiting for other churn.
    SetImportPolicy {
        /// The reconfigured session.
        session: SessionId,
        /// The endpoint whose import policy changes.
        router: RouterId,
        /// The replacement policy.
        policy: ImportPolicy,
    },
    /// A router replaces the export policy it applies on a session, then
    /// re-advertises its Loc-RIB there (a soft reset out). Announcements
    /// whose wire form is unchanged follow the vendor's duplicate policy:
    /// Junos stays silent, everything else re-sends.
    SetExportPolicy {
        /// The reconfigured session.
        session: SessionId,
        /// The endpoint whose export policy changes.
        router: RouterId,
        /// The replacement policy.
        policy: ExportPolicy,
    },
}

/// An event with its firing time and a tie-breaking sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence for deterministic same-time ordering.
    pub seq: u64,
    /// The event.
    pub kind: EventKind,
}

impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    /// Reversed so that `BinaryHeap` (a max-heap) pops earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn announce_at(q: &mut EventQueue, t: u64) {
        q.push(
            SimTime(t),
            EventKind::Announce {
                router: RouterId { asn: kcc_bgp_types::Asn(1), index: 0 },
                prefix: "10.0.0.0/8".parse().unwrap(),
            },
        );
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        announce_at(&mut q, 30);
        announce_at(&mut q, 10);
        announce_at(&mut q, 20);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_pops_in_push_order() {
        let mut q = EventQueue::new();
        for _ in 0..5 {
            announce_at(&mut q, 7);
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        announce_at(&mut q, 42);
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.len(), 1);
    }
}
