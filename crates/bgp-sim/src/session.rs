//! BGP sessions between simulated routers.

use kcc_topology::{RouteSource, RouterId};

use crate::policy::{ExportPolicy, ImportPolicy};
use crate::time::SimDuration;

/// Index of a session within the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub usize);

/// eBGP (inter-AS) or iBGP (intra-AS full mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// External BGP between two ASes.
    Ebgp,
    /// Internal BGP within one AS.
    Ibgp,
}

/// One BGP session. `a` and `b` are the two endpoints; per-direction
/// policies are named from each endpoint's perspective (`a_import` is what
/// `a` applies to routes arriving from `b`).
#[derive(Debug, Clone)]
pub struct Session {
    /// Network-wide session index.
    pub id: SessionId,
    /// eBGP or iBGP.
    pub kind: SessionKind,
    /// First endpoint.
    pub a: RouterId,
    /// Second endpoint.
    pub b: RouterId,
    /// Policy `a` applies to routes received from `b`.
    pub a_import: ImportPolicy,
    /// Policy `a` applies to routes sent toward `b`.
    pub a_export: ExportPolicy,
    /// Policy `b` applies to routes received from `a`.
    pub b_import: ImportPolicy,
    /// Policy `b` applies to routes sent toward `a`.
    pub b_export: ExportPolicy,
    /// What `b` is to `a` (customer/peer/provider); `None` on iBGP.
    pub a_view_of_b: Option<RouteSource>,
    /// What `a` is to `b`.
    pub b_view_of_a: Option<RouteSource>,
    /// One-way message delay.
    pub delay: SimDuration,
    /// Session liveness; down sessions deliver nothing.
    pub up: bool,
}

impl Session {
    /// The other endpoint.
    pub fn other(&self, me: RouterId) -> RouterId {
        if me == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// True if `me` is an endpoint.
    pub fn involves(&self, me: RouterId) -> bool {
        self.a == me || self.b == me
    }

    /// The import policy `me` applies to routes from the other side.
    pub fn import_for(&self, me: RouterId) -> &ImportPolicy {
        if me == self.a {
            &self.a_import
        } else {
            &self.b_import
        }
    }

    /// The export policy `me` applies toward the other side.
    pub fn export_for(&self, me: RouterId) -> &ExportPolicy {
        if me == self.a {
            &self.a_export
        } else {
            &self.b_export
        }
    }

    /// The neighbor kind from `me`'s perspective (`None` on iBGP).
    pub fn neighbor_kind_for(&self, me: RouterId) -> Option<RouteSource> {
        if me == self.a {
            self.a_view_of_b
        } else {
            self.b_view_of_a
        }
    }

    /// True for eBGP sessions.
    pub fn is_ebgp(&self) -> bool {
        self.kind == SessionKind::Ebgp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::Asn;

    fn rid(asn: u32, idx: u16) -> RouterId {
        RouterId { asn: Asn(asn), index: idx }
    }

    fn session() -> Session {
        Session {
            id: SessionId(0),
            kind: SessionKind::Ebgp,
            a: rid(1, 0),
            b: rid(2, 0),
            a_import: ImportPolicy { local_pref: Some(300), ..Default::default() },
            a_export: ExportPolicy::default(),
            b_import: ImportPolicy { local_pref: Some(100), ..Default::default() },
            b_export: ExportPolicy::default(),
            a_view_of_b: Some(RouteSource::Customer),
            b_view_of_a: Some(RouteSource::Provider),
            delay: SimDuration::from_millis(2),
            up: true,
        }
    }

    #[test]
    fn endpoint_resolution() {
        let s = session();
        assert_eq!(s.other(rid(1, 0)), rid(2, 0));
        assert_eq!(s.other(rid(2, 0)), rid(1, 0));
        assert!(s.involves(rid(1, 0)));
        assert!(!s.involves(rid(3, 0)));
    }

    #[test]
    fn per_direction_policies() {
        let s = session();
        assert_eq!(s.import_for(rid(1, 0)).local_pref, Some(300));
        assert_eq!(s.import_for(rid(2, 0)).local_pref, Some(100));
        assert_eq!(s.neighbor_kind_for(rid(1, 0)), Some(RouteSource::Customer));
        assert_eq!(s.neighbor_kind_for(rid(2, 0)), Some(RouteSource::Provider));
    }
}
