//! The labeled fault library — scripted routing incidents for the
//! CommunityWatch detector.
//!
//! Each [`FaultScenario`] is a complete [`ScenarioSpec`] over one shared
//! multi-vantage topology: a baseline of beacon-style announce/withdraw
//! phases, then exactly one injected fault of a known
//! [`FaultKind`]. The scenarios double as the detector's ground truth —
//! `kcc_bench`'s eval harness replays each one through
//! `kcc_core::watch::WatchSink` and asserts the labeled kind (and no
//! other) is flagged.
//!
//! The shared topology (all ASNs private):
//!
//! ```text
//!   c1(AS64900) — t1(AS65020) ——peer—— t2(AS65030) — c2(AS64901)
//!                      \               /      \
//!                       z(AS65010, origin)     h(AS65666, hijacker)
//! ```
//!
//! The origin `z` is dual-homed to transits `t1`/`t2`; each transit tags
//! its customer routes on ingress (`65020:100` / `65030:200`) so the
//! community profiler has a stable baseline. Collectors `c1`/`c2` hang
//! off `t1`/`t2` respectively, so every fault has an affected vantage
//! and an unaffected control vantage.
//!
//! The faults:
//!
//! * **prefix hijack** — `h` announces `z`'s prefix; `t2` prefers the
//!   hijacker (elevated local-pref, the classic leak-enabling
//!   misconfiguration), so `c2` sees a novel origin AS,
//! * **route leak** — a misconfigured `t1`–`h` session (down through
//!   the whole baseline) comes up: `h` re-exports its provider-learned
//!   route to `t1` — a valley-free violation — and `t1` prefers the
//!   "customer" path, so `c1` sees a new transit AS while the origin is
//!   unchanged. The leaked path cannot exist during the baseline, so
//!   the path hunting that baseline withdrawals trigger (transient
//!   failover announcements — which the detector must *learn*, not
//!   flag) never exposes it,
//! * **blackhole injection** — `z` starts attaching `BLACKHOLE`
//!   (RFC 7999) toward `t1`; `c1` sees a well-known action community on
//!   a stream that never carried one,
//! * **collector outage** — the `t2`–`c2` session drops while the
//!   beacon keeps cycling; `c2` goes silent for consecutive phases in
//!   which `c1` stays active.
//!
//! Phase boundaries are the intended detection windows: every phase is
//! one beacon event run to quiescence, and the eval harness maps phase
//! *k* onto watch window *k*.

use std::net::IpAddr;

use kcc_bgp_types::{community::well_known, Asn, Community, Prefix};
use kcc_topology::{RouteSource, RouterId};

use crate::network::SimConfig;
use crate::policy::{ExportPolicy, ImportPolicy};
use crate::scenario::{
    CountBound, Expectation, Phase, RouterDecl, ScenarioAction, ScenarioEvent, ScenarioSpec,
    SessionDecl, TopologyTemplate,
};
use crate::session::SessionKind;
use crate::time::SimDuration;

/// The fault classes the library injects — one scenario each, matching
/// the alert kinds `kcc_core::watch` is expected to raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A prefix announced by an origin AS outside its learned set.
    PrefixHijack,
    /// A new transit AS on a vantage's path, origin unchanged.
    RouteLeak,
    /// A well-known action community injected into a clean stream.
    BlackholeInjection,
    /// A collector silent while its peers stay active.
    CollectorOutage,
}

impl FaultKind {
    /// The kebab-case label, equal to the matching
    /// `AlertKind::label()` in `kcc_core`.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::PrefixHijack => "prefix-hijack",
            FaultKind::RouteLeak => "route-leak",
            FaultKind::BlackholeInjection => "blackhole-injection",
            FaultKind::CollectorOutage => "collector-outage",
        }
    }
}

/// One labeled scenario: a spec plus the ground truth the detector is
/// scored against.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// The injected fault class.
    pub kind: FaultKind,
    /// The runnable scenario.
    pub spec: ScenarioSpec,
    /// The beacon prefix all phases revolve around.
    pub prefix: Prefix,
    /// Index of the phase that injects the fault; everything before it
    /// is clean baseline (training data for the profiler, learning
    /// windows for the watch service).
    pub fault_phase: usize,
    /// Collector routers in naming order: index `i` becomes collector
    /// `rrc0i` when captures are converted for analysis.
    pub collectors: Vec<RouterId>,
}

/// Router handles of the fault-library topology.
#[derive(Debug, Clone, Copy)]
pub struct FaultIds {
    /// The beacon origin (AS 65010).
    pub z: RouterId,
    /// Transit 1 (AS 65020), `c1`'s feed.
    pub t1: RouterId,
    /// Transit 2 (AS 65030), `c2`'s feed.
    pub t2: RouterId,
    /// The hijacker (AS 65666), customer of `t2`.
    pub h: RouterId,
    /// Collector on `t1` (AS 64900; `rrc00` in analysis naming).
    pub c1: RouterId,
    /// Collector on `t2` (AS 64901; `rrc01`).
    pub c2: RouterId,
}

/// The library's router handles.
pub fn fault_ids() -> FaultIds {
    let rid = |asn: u32| RouterId { asn: Asn(asn), index: 0 };
    FaultIds {
        z: rid(65_010),
        t1: rid(65_020),
        t2: rid(65_030),
        h: rid(65_666),
        c1: rid(64_900),
        c2: rid(64_901),
    }
}

/// The beacon prefix the library announces.
pub fn fault_prefix() -> Prefix {
    "203.0.113.0/24".parse().expect("valid prefix")
}

/// The ingress tag `t1` adds to its customer routes.
pub fn t1_tag() -> Community {
    Community::from_parts(65_020, 100)
}

/// The ingress tag `t2` adds to its customer routes.
pub fn t2_tag() -> Community {
    Community::from_parts(65_030, 200)
}

fn ip(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
    IpAddr::V4(std::net::Ipv4Addr::new(a, b, c, d))
}

fn ebgp_customer_with_imports(
    a: RouterId,
    b: RouterId,
    a_import: ImportPolicy,
    b_import: ImportPolicy,
) -> SessionDecl {
    SessionDecl {
        a,
        b,
        kind: SessionKind::Ebgp,
        a_import,
        a_export: ExportPolicy::default(),
        b_import,
        b_export: ExportPolicy::default(),
        a_view_of_b: Some(RouteSource::Customer),
        b_view_of_a: Some(RouteSource::Provider),
        delay: None,
    }
}

fn ebgp_peer(a: RouterId, b: RouterId) -> SessionDecl {
    SessionDecl {
        a,
        b,
        kind: SessionKind::Ebgp,
        a_import: ImportPolicy::for_neighbor(RouteSource::Peer),
        a_export: ExportPolicy::default(),
        b_import: ImportPolicy::for_neighbor(RouteSource::Peer),
        b_export: ExportPolicy::default(),
        a_view_of_b: Some(RouteSource::Peer),
        b_view_of_a: Some(RouteSource::Peer),
        delay: None,
    }
}

/// The shared topology (see the module docs). The leak scenario adds
/// one extra session: `t1`–`h`, with `h` misconfigured to treat its
/// provider `t1` as a customer — so `h` exports *everything* to `t1`,
/// including its provider-learned route through `t2` (the valley-free
/// violation), while `t1` prefers the "customer" path. `h`'s import
/// pref for `t1` routes stays below its `t2` route, so its best path
/// never flips and the leak is stable.
fn fault_topology(with_leak_session: bool) -> TopologyTemplate {
    let ids = fault_ids();
    let routers = vec![
        RouterDecl::new(ids.z, ip(10, 10, 0, 1)),
        RouterDecl::new(ids.t1, ip(10, 20, 0, 1)),
        RouterDecl::new(ids.t2, ip(10, 30, 0, 1)),
        RouterDecl::new(ids.h, ip(10, 66, 0, 1)),
        RouterDecl { is_collector: true, ..RouterDecl::new(ids.c1, ip(198, 51, 100, 1)) },
        RouterDecl { is_collector: true, ..RouterDecl::new(ids.c2, ip(198, 51, 100, 2)) },
    ];
    let tag = |c: Community| ImportPolicy {
        add_communities: vec![c],
        ..ImportPolicy::for_neighbor(RouteSource::Customer)
    };
    // The hijack only reaches a vantage if t2 prefers its hijacking
    // customer over the legitimate one — the classic prefer-customer
    // local-pref misconfiguration that enables real-world hijacks.
    let prefer_hijacker = ImportPolicy {
        local_pref: Some(RouteSource::Customer.conventional_local_pref() + 50),
        ..tag(t2_tag())
    };
    let mut sessions = vec![
        ebgp_customer_with_imports(ids.t1, ids.z, tag(t1_tag()), ImportPolicy::default()),
        ebgp_customer_with_imports(ids.t2, ids.z, tag(t2_tag()), ImportPolicy::default()),
        ebgp_peer(ids.t1, ids.t2),
        ebgp_customer_with_imports(ids.t2, ids.h, prefer_hijacker, ImportPolicy::default()),
        ebgp_customer_with_imports(
            ids.t1,
            ids.c1,
            ImportPolicy::default(),
            ImportPolicy::default(),
        ),
        ebgp_customer_with_imports(
            ids.t2,
            ids.c2,
            ImportPolicy::default(),
            ImportPolicy::default(),
        ),
    ];
    if with_leak_session {
        sessions.push(SessionDecl {
            a: ids.t1,
            b: ids.h,
            kind: SessionKind::Ebgp,
            // t1 believes h is an ordinary (preferred) customer.
            a_import: ImportPolicy {
                local_pref: Some(RouteSource::Customer.conventional_local_pref() + 50),
                ..tag(t1_tag())
            },
            a_export: ExportPolicy::default(),
            // h keeps preferring its t2 route (90 < the default 100), so
            // the leak never flips h's own best path.
            b_import: ImportPolicy { local_pref: Some(90), ..ImportPolicy::default() },
            b_export: ExportPolicy::default(),
            a_view_of_b: Some(RouteSource::Customer),
            // The misconfiguration: h's export filter treats its
            // provider t1 as a customer, so provider-learned routes
            // leak through.
            b_view_of_a: Some(RouteSource::Customer),
            delay: None,
        });
    }
    TopologyTemplate::Explicit { routers, sessions }
}

/// One beacon phase: the origin announces or withdraws the prefix at
/// the phase start. Every phase runs to quiescence, so captures stay
/// within their phase and close to its start — the eval harness relies
/// on that when it maps phases onto detection windows.
fn beacon_phase(name: &str, announce: bool) -> Phase {
    let ids = fault_ids();
    let action = if announce {
        ScenarioAction::Announce { router: ids.z, prefix: fault_prefix() }
    } else {
        ScenarioAction::Withdraw { router: ids.z, prefix: fault_prefix() }
    };
    Phase::new(name, vec![ScenarioEvent::immediately(action)])
}

/// The clean baseline every scenario starts with: announce, withdraw,
/// re-announce — two announcement-bearing windows (the watch service's
/// default path-learning budget) plus a withdrawal window.
fn baseline_phases() -> Vec<Phase> {
    vec![
        beacon_phase("baseline-announce", true),
        beacon_phase("baseline-withdraw", false),
        beacon_phase("baseline-reannounce", true),
    ]
}

fn spec(name: &str, with_leak_session: bool, phases: Vec<Phase>) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_owned(),
        sim: SimConfig { delay_spread: SimDuration::ZERO, ..Default::default() },
        topology: fault_topology(with_leak_session),
        monitors: Vec::new(),
        watch: Vec::new(),
        phases,
        expectations: Vec::new(),
    }
}

fn scenario(kind: FaultKind, name: &str, fault: Phase, tail: Vec<Phase>) -> FaultScenario {
    let ids = fault_ids();
    let mut phases = baseline_phases();
    let fault_phase = phases.len();
    phases.push(fault);
    phases.extend(tail);
    FaultScenario {
        kind,
        spec: spec(name, false, phases),
        prefix: fault_prefix(),
        fault_phase,
        collectors: vec![ids.c1, ids.c2],
    }
}

/// The route-leak scenario needs its own shape: the misconfigured
/// `t1`–`h` session is torn down *before* the baseline (a setup phase)
/// and comes up as the fault, so the leaked path cannot be learned
/// from baseline path hunting.
fn leak_scenario() -> FaultScenario {
    let ids = fault_ids();
    let mut phases = vec![Phase::new(
        "setup-leak-session-down",
        vec![ScenarioEvent::immediately(ScenarioAction::LinkDown { a: ids.t1, b: ids.h })],
    )];
    phases.extend(baseline_phases());
    let fault_phase = phases.len();
    phases.push(Phase::new(
        "leak-session-up",
        vec![ScenarioEvent::after(
            SimDuration::from_secs(1),
            ScenarioAction::LinkUp { a: ids.t1, b: ids.h },
        )],
    ));
    FaultScenario {
        kind: FaultKind::RouteLeak,
        spec: spec("fault/route-leak", true, phases),
        prefix: fault_prefix(),
        fault_phase,
        collectors: vec![ids.c1, ids.c2],
    }
}

/// `t1`'s action community "do not announce to peer AS65030": a
/// customer attaching `65020:3030` asks `t1` to withhold the route from
/// its `t2` peering — the provider-side do-not-announce knob of
/// real-world community menus (see ROADMAP 4b).
pub fn do_not_announce_t2() -> Community {
    Community::from_parts(65_020, 3_030)
}

/// The traffic-engineering scenario seeding ROADMAP 4b: the beacon
/// origin steers itself away from a named peer with an action community,
/// and the spec's expectations price the knob in routing messages.
///
/// Same topology as the fault library, with one addition: `t1` honors
/// [`do_not_announce_t2`] on its export toward `t2`
/// ([`ExportPolicy::deny_communities`]). The timeline flips the knob on
/// and off via egress rewrites at the origin:
///
/// 1. **baseline-announce** — `z` announces plain; the route reaches
///    both vantages and `t1` advertises it across the peering,
/// 2. **steer-away** — `z` re-exports toward `t1` with the action
///    community attached: `t1` re-advertises the tagged route to its
///    collector and sends **exactly one withdrawal** to the named peer
///    — the control vantage `c2` hears nothing (`t2` still prefers its
///    direct customer path),
/// 3. **release** — `z` drops the community: **exactly one
///    announcement** restores the peering session.
///
/// That symmetric one-message-each-way cost *is* the measurement: the
/// paper asks what communities cost in routing messages, and this is the
/// floor for an action community doing its job.
pub fn te_do_not_announce() -> ScenarioSpec {
    let ids = fault_ids();
    let mut topology = fault_topology(false);
    if let TopologyTemplate::Explicit { sessions, .. } = &mut topology {
        for s in sessions {
            if s.a == ids.t1 && s.b == ids.t2 {
                s.a_export.deny_communities.push(do_not_announce_t2());
            }
        }
    }
    let steer =
        ExportPolicy { add_communities: vec![do_not_announce_t2()], ..ExportPolicy::default() };
    ScenarioSpec {
        name: "te/do-not-announce".to_owned(),
        sim: SimConfig { delay_spread: SimDuration::ZERO, ..Default::default() },
        topology,
        monitors: vec![(ids.t1, ids.t2)],
        watch: Vec::new(),
        phases: vec![
            beacon_phase("baseline-announce", true),
            Phase::new(
                "steer-away",
                vec![ScenarioEvent::after(
                    SimDuration::from_secs(1),
                    ScenarioAction::RewriteExport { router: ids.z, peer: ids.t1, policy: steer },
                )],
            ),
            Phase::new(
                "release",
                vec![ScenarioEvent::after(
                    SimDuration::from_secs(1),
                    ScenarioAction::RewriteExport {
                        router: ids.z,
                        peer: ids.t1,
                        policy: ExportPolicy::default(),
                    },
                )],
            ),
        ],
        expectations: vec![
            // Baseline: the prefix is advertised across the peering.
            Expectation::MonitorTraffic {
                phase: 0,
                a: ids.t1,
                b: ids.t2,
                to: Some(ids.t2),
                bound: CountBound::AtLeast(1),
            },
            // Steering costs exactly one message toward the named peer…
            Expectation::MonitorTraffic {
                phase: 1,
                a: ids.t1,
                b: ids.t2,
                to: Some(ids.t2),
                bound: CountBound::Exactly(1),
            },
            // …the tagged re-announcement still reaches t1's vantage…
            Expectation::CollectorTraffic {
                phase: 1,
                collector: ids.c1,
                bound: CountBound::AtLeast(1),
            },
            // …and the control vantage hears no collateral churn.
            Expectation::CollectorTraffic {
                phase: 1,
                collector: ids.c2,
                bound: CountBound::Exactly(0),
            },
            // Releasing the knob costs exactly one message too.
            Expectation::MonitorTraffic {
                phase: 2,
                a: ids.t1,
                b: ids.t2,
                to: Some(ids.t2),
                bound: CountBound::Exactly(1),
            },
        ],
    }
}

/// The four labeled scenarios, one per [`FaultKind`], in kind order.
pub fn fault_library() -> Vec<FaultScenario> {
    let ids = fault_ids();
    vec![
        scenario(
            FaultKind::PrefixHijack,
            "fault/prefix-hijack",
            Phase::new(
                "hijack",
                vec![ScenarioEvent::after(
                    SimDuration::from_secs(1),
                    ScenarioAction::Announce { router: ids.h, prefix: fault_prefix() },
                )],
            ),
            Vec::new(),
        ),
        leak_scenario(),
        scenario(
            FaultKind::BlackholeInjection,
            "fault/blackhole-injection",
            Phase::new(
                "blackhole",
                vec![ScenarioEvent::after(
                    SimDuration::from_secs(1),
                    ScenarioAction::RewriteExport {
                        router: ids.z,
                        peer: ids.t1,
                        policy: ExportPolicy {
                            add_communities: vec![well_known::BLACKHOLE],
                            ..Default::default()
                        },
                    },
                )],
            ),
            Vec::new(),
        ),
        scenario(
            FaultKind::CollectorOutage,
            "fault/collector-outage",
            Phase::new(
                "collector-link-down",
                vec![ScenarioEvent::after(
                    SimDuration::from_secs(1),
                    ScenarioAction::LinkDown { a: ids.t2, b: ids.c2 },
                )],
            ),
            // The beacon keeps cycling: c1 stays active while c2 is
            // silent for two more windows — the outage run the watch
            // service scores.
            vec![beacon_phase("beacon-withdraw", false), beacon_phase("beacon-announce", true)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run;
    use kcc_bgp_types::MessageKind;

    /// Captures at a collector in one phase, as analysis updates.
    fn at(
        outcome: &crate::scenario::ScenarioOutcome,
        phase: usize,
        collector: RouterId,
    ) -> Vec<kcc_bgp_types::RouteUpdate> {
        outcome.collected_in_phase(phase, collector).iter().map(|c| c.to_route_update()).collect()
    }

    fn origin_of(u: &kcc_bgp_types::RouteUpdate) -> Option<Asn> {
        match &u.kind {
            MessageKind::Announcement(attrs) => attrs.as_path.origin(),
            _ => None,
        }
    }

    #[test]
    fn library_covers_every_kind_once() {
        let lib = fault_library();
        let mut kinds: Vec<FaultKind> = lib.iter().map(|s| s.kind).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 4);
        for s in &lib {
            assert!(s.fault_phase >= 1, "{}: no baseline before the fault", s.spec.name);
            assert!(s.fault_phase < s.spec.phases.len());
            assert_eq!(s.collectors.len(), 2);
        }
    }

    #[test]
    fn baseline_reaches_both_vantages_with_tags() {
        let lib = fault_library();
        let outcome = run(&lib[0].spec);
        let ids = fault_ids();
        for (collector, tag) in [(ids.c1, t1_tag()), (ids.c2, t2_tag())] {
            let msgs = at(&outcome, 0, collector);
            assert!(!msgs.is_empty(), "baseline silent at {collector}");
            let MessageKind::Announcement(attrs) = &msgs[0].kind else {
                panic!("baseline must start with an announcement");
            };
            assert_eq!(attrs.as_path.origin(), Some(ids.z.asn));
            assert!(attrs.communities.contains(&tag), "ingress tag missing at {collector}");
        }
    }

    #[test]
    fn hijacked_origin_reaches_c2_only() {
        let lib = fault_library();
        let s = &lib[0];
        assert_eq!(s.kind, FaultKind::PrefixHijack);
        let outcome = run(&s.spec);
        let ids = fault_ids();
        let at_c2 = at(&outcome, s.fault_phase, ids.c2);
        assert!(
            at_c2.iter().any(|u| origin_of(u) == Some(ids.h.asn)),
            "hijacker origin must reach c2: {at_c2:?}"
        );
        assert!(
            at(&outcome, s.fault_phase, ids.c1).is_empty(),
            "control vantage c1 must stay clean"
        );
    }

    #[test]
    fn leak_shows_new_transit_with_unchanged_origin_at_c1() {
        let lib = fault_library();
        let s = &lib[1];
        assert_eq!(s.kind, FaultKind::RouteLeak);
        let outcome = run(&s.spec);
        let ids = fault_ids();
        let leaked: Vec<_> = at(&outcome, s.fault_phase, ids.c1)
            .into_iter()
            .filter_map(|u| match u.kind {
                MessageKind::Announcement(attrs) => Some(attrs),
                _ => None,
            })
            .collect();
        assert!(!leaked.is_empty(), "c1 must see the leaked announcement");
        let attrs = leaked.last().unwrap();
        assert_eq!(attrs.as_path.origin(), Some(ids.z.asn), "origin unchanged");
        assert!(attrs.as_path.contains(ids.h.asn), "path must now transit the leaker: {attrs:?}");
        assert!(
            at(&outcome, s.fault_phase, ids.c2).is_empty(),
            "loop prevention keeps the leak away from c2"
        );
        // The leaker must never appear on a baseline path at any vantage
        // (including the hunting transients of the withdraw phase) —
        // otherwise the detector would learn it before the fault.
        for phase in 0..s.fault_phase {
            for collector in [ids.c1, ids.c2] {
                for u in at(&outcome, phase, collector) {
                    if let MessageKind::Announcement(attrs) = &u.kind {
                        assert!(
                            !attrs.as_path.contains(ids.h.asn),
                            "leaker on a baseline path in phase {phase}: {attrs:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blackhole_community_reaches_c1() {
        let lib = fault_library();
        let s = &lib[2];
        assert_eq!(s.kind, FaultKind::BlackholeInjection);
        let outcome = run(&s.spec);
        let ids = fault_ids();
        let msgs = at(&outcome, s.fault_phase, ids.c1);
        assert!(
            msgs.iter().any(|u| match &u.kind {
                MessageKind::Announcement(attrs) =>
                    attrs.communities.contains(&well_known::BLACKHOLE),
                _ => false,
            }),
            "BLACKHOLE must reach c1: {msgs:?}"
        );
    }

    #[test]
    fn te_steering_costs_one_message_each_way() {
        let spec = te_do_not_announce();
        let outcome = run(&spec);
        let failures = outcome.check(&spec.expectations);
        assert!(failures.is_empty(), "message-cost expectations hold: {failures:?}");
        let ids = fault_ids();

        // The steer phase's one message toward the named peer is the
        // withdrawal doing the steering; the release phase's one message
        // is the announcement undoing it.
        let toward_t2 = |phase: usize| -> Vec<kcc_bgp_types::RouteUpdate> {
            outcome
                .monitored_in_phase(phase, ids.t1, ids.t2)
                .iter()
                .filter(|c| c.to == ids.t2)
                .map(|c| c.to_route_update())
                .collect()
        };
        assert!(matches!(toward_t2(1).as_slice(), [u] if u.kind == MessageKind::Withdrawal));
        let released = toward_t2(2);
        let [u] = released.as_slice() else {
            panic!("release phase must cost exactly one message: {released:?}");
        };
        let MessageKind::Announcement(attrs) = &u.kind else {
            panic!("release message must be an announcement: {u:?}");
        };
        assert!(
            !attrs.communities.contains(&do_not_announce_t2()),
            "the action community must not leak to the peer it steers away from"
        );

        // The tagged route reaches c1 during the steer phase, action
        // community intact — informational for t1's vantage, actionable
        // only on the t1–t2 export.
        assert!(at(&outcome, 1, ids.c1).iter().any(|u| match &u.kind {
            MessageKind::Announcement(attrs) => attrs.communities.contains(&do_not_announce_t2()),
            _ => false,
        }));

        // Final state (knob released): the per-session Adj-RIB-Out shows
        // the prefix re-advertised on the peering.
        let sid = outcome.net.find_session(ids.t1, ids.t2).expect("monitored session exists");
        let advertised = outcome.net.router(ids.t1).expect("t1 exists").advertised_on(sid);
        assert!(advertised.iter().any(|(p, _)| *p == fault_prefix()));
    }

    #[test]
    fn outage_silences_c2_while_c1_stays_active() {
        let lib = fault_library();
        let s = &lib[3];
        assert_eq!(s.kind, FaultKind::CollectorOutage);
        let outcome = run(&s.spec);
        let ids = fault_ids();
        for phase in s.fault_phase + 1..s.spec.phases.len() {
            assert!(
                !at(&outcome, phase, ids.c1).is_empty(),
                "c1 must stay active in phase {phase}"
            );
            assert!(at(&outcome, phase, ids.c2).is_empty(), "c2 must be silent in phase {phase}");
        }
    }
}
