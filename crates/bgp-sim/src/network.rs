//! The simulated network: routers, sessions, the event loop.
//!
//! Routers live in an index-addressed arena (`Vec<Router>` plus a dense
//! `RouterId → u32` index) rather than an ordered map: event dispatch is
//! one hash probe and one vector index, and the arena stays cache-friendly
//! at 75k ASes. Sessions are indexed by endpoint pair and by `(Asn, Asn)`
//! so `find_session` / `find_ebgp_sessions` never scan the session table.
//! All retained path attributes are interned in a network-wide
//! [`AttrStore`].

use std::collections::BTreeMap;
use std::net::IpAddr;

use kcc_bgp_types::{Asn, AttrStore, FastHashMap, Prefix};
use kcc_topology::{RouteSource, RouterId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::capture::{Capture, CapturedUpdate};
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultConfig, FaultInjector};
use crate::policy::{ExportPolicy, ImportPolicy};
use crate::route::SimUpdate;
use crate::router::{Action, Router};
use crate::session::{Session, SessionId, SessionKind};
use crate::time::{SimDuration, SimTime};
use crate::vendor::VendorProfile;

/// Network-wide statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Events processed by the loop.
    pub events_processed: u64,
    /// Messages delivered to routers.
    pub messages_delivered: u64,
    /// Messages lost to fault injection or down sessions.
    pub messages_dropped: u64,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for vendor assignment and delay staggering.
    pub seed: u64,
    /// Vendor profile used when `vendor_mix` is empty.
    pub default_vendor: VendorProfile,
    /// Weighted per-AS vendor assignment, e.g. `[(CISCO_IOS, 0.4), …]`.
    /// Weights need not sum to 1; they are normalized.
    pub vendor_mix: Vec<(VendorProfile, f64)>,
    /// Base one-way delay of every session.
    pub base_link_delay: SimDuration,
    /// Maximum deterministic per-session stagger added to the base delay.
    /// Staggering is what desynchronizes propagation and lets path
    /// exploration unfold (as it does in the wild).
    pub delay_spread: SimDuration,
    /// Fault injection.
    pub fault: FaultConfig,
    /// Route-flap dampening applied to every router (None = off, the
    /// common default — the paper notes dampening is selectively
    /// deployed).
    pub dampening: Option<crate::dampening::DampeningConfig>,
    /// Hard cap on processed events per `run_until_quiet` call; exceeded
    /// caps indicate a routing oscillation bug.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            default_vendor: VendorProfile::default(),
            vendor_mix: Vec::new(),
            base_link_delay: SimDuration::from_millis(2),
            delay_spread: SimDuration::from_millis(8),
            fault: FaultConfig::default(),
            dampening: None,
            max_events: 50_000_000,
        }
    }
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    /// Index-addressed router arena; `router_index` maps identity to slot.
    routers: Vec<Router>,
    router_index: FastHashMap<RouterId, u32>,
    sessions: Vec<Session>,
    /// First session added between an (ordered) endpoint pair.
    session_by_endpoints: FastHashMap<(RouterId, RouterId), SessionId>,
    /// Every eBGP session between an (ordered) ASN pair, in creation order.
    ebgp_by_asns: FastHashMap<(Asn, Asn), Vec<SessionId>>,
    /// Network-wide interned attribute sets (every RIB slot of every
    /// router holds refcounted handles into this store).
    store: AttrStore,
    queue: EventQueue,
    now: SimTime,
    /// Time of the last event actually processed (distinct from `now`,
    /// which `run_until` may advance past the final event).
    last_event: SimTime,
    captures: BTreeMap<RouterId, Capture>,
    monitors: BTreeMap<SessionId, Capture>,
    fault: FaultInjector,
    /// Statistics.
    pub stats: NetStats,
    config: SimConfig,
}

/// Orders a router pair canonically for the endpoint index.
fn endpoint_key(a: RouterId, b: RouterId) -> (RouterId, RouterId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Orders an ASN pair canonically for the eBGP index.
fn asn_key(a: Asn, b: Asn) -> (Asn, Asn) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// An empty network.
    pub fn new(config: SimConfig) -> Self {
        Network {
            routers: Vec::new(),
            router_index: FastHashMap::default(),
            sessions: Vec::new(),
            session_by_endpoints: FastHashMap::default(),
            ebgp_by_asns: FastHashMap::default(),
            store: AttrStore::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            last_event: SimTime::ZERO,
            captures: BTreeMap::new(),
            monitors: BTreeMap::new(),
            fault: FaultInjector::new(config.fault),
            stats: NetStats::default(),
            config,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The interned-attribute store (introspection: distinct sets and
    /// exact retained bytes).
    pub fn attr_store(&self) -> &AttrStore {
        &self.store
    }

    /// Adds a router. Re-adding an existing id replaces the router in
    /// place (its arena slot is reused).
    pub fn add_router(&mut self, router: Router) {
        if router.is_collector {
            self.captures.entry(router.id).or_default();
        }
        match self.router_index.get(&router.id) {
            Some(&i) => self.routers[i as usize] = router,
            None => {
                let slot = u32::try_from(self.routers.len()).expect("router arena overflow");
                self.router_index.insert(router.id, slot);
                self.routers.push(router);
            }
        }
    }

    /// Access a router.
    pub fn router(&self, id: RouterId) -> Option<&Router> {
        self.router_index.get(&id).map(|&i| &self.routers[i as usize])
    }

    /// Mutable router access (tests and scenario builders).
    pub fn router_mut(&mut self, id: RouterId) -> Option<&mut Router> {
        match self.router_index.get(&id) {
            Some(&i) => Some(&mut self.routers[i as usize]),
            None => None,
        }
    }

    /// All routers, in arena (insertion) order.
    pub fn routers(&self) -> impl Iterator<Item = &Router> {
        self.routers.iter()
    }

    /// Splits the borrow for event dispatch: the arena, the id index, the
    /// session table and the attribute store are disjoint fields.
    #[allow(clippy::type_complexity)]
    fn parts(
        &mut self,
    ) -> (&mut [Router], &FastHashMap<RouterId, u32>, &[Session], &mut AttrStore) {
        (&mut self.routers, &self.router_index, &self.sessions, &mut self.store)
    }

    /// Adds a session between two existing routers and registers it on
    /// both. Returns its id.
    pub fn add_session(&mut self, mut session: Session) -> SessionId {
        let id = SessionId(self.sessions.len());
        session.id = id;
        let (a, b) = (session.a, session.b);
        self.router_mut(a)
            .unwrap_or_else(|| panic!("session endpoint {a} missing"))
            .sessions
            .push(id);
        self.router_mut(b)
            .unwrap_or_else(|| panic!("session endpoint {b} missing"))
            .sessions
            .push(id);
        // First-added wins, preserving the linear scan's first-match
        // semantics for parallel sessions between the same routers.
        self.session_by_endpoints.entry(endpoint_key(a, b)).or_insert(id);
        if session.is_ebgp() {
            self.ebgp_by_asns.entry(asn_key(a.asn, b.asn)).or_default().push(id);
        }
        self.sessions.push(session);
        id
    }

    /// The session table.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Session lookup by endpoints (first match) — one index probe.
    pub fn find_session(&self, a: RouterId, b: RouterId) -> Option<SessionId> {
        self.session_by_endpoints.get(&endpoint_key(a, b)).copied()
    }

    /// Every eBGP session between two ASes — generated topologies create
    /// parallel interconnections at different routers, and an inter-AS
    /// adjacency failure must take all of them down. One index probe, in
    /// session-creation order.
    pub fn find_ebgp_sessions(&self, a: Asn, b: Asn) -> Vec<SessionId> {
        self.ebgp_by_asns.get(&asn_key(a, b)).cloned().unwrap_or_default()
    }

    /// Marks a session to be watched: every message delivered on it is
    /// recorded (the lab's "packet capture between X1 and Y1").
    pub fn monitor_session(&mut self, id: SessionId) {
        self.monitors.entry(id).or_default();
    }

    /// Messages captured on a monitored session.
    pub fn monitored(&self, id: SessionId) -> Option<&Capture> {
        self.monitors.get(&id)
    }

    /// The capture of a collector router.
    pub fn capture(&self, collector: RouterId) -> Option<&Capture> {
        self.captures.get(&collector)
    }

    /// All collector captures.
    pub fn captures(&self) -> impl Iterator<Item = (&RouterId, &Capture)> {
        self.captures.iter()
    }

    /// Clears all captures and monitors (between experiment phases).
    pub fn clear_captures(&mut self) {
        for c in self.captures.values_mut() {
            c.clear();
        }
        for c in self.monitors.values_mut() {
            c.clear();
        }
    }

    /// Schedules an event.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        self.queue.push(at, kind);
    }

    /// Schedules an origin announcement.
    pub fn schedule_announce(&mut self, at: SimTime, router: RouterId, prefix: Prefix) {
        self.schedule(at, EventKind::Announce { router, prefix });
    }

    /// Schedules an origin withdrawal.
    pub fn schedule_withdraw(&mut self, at: SimTime, router: RouterId, prefix: Prefix) {
        self.schedule(at, EventKind::Withdraw { router, prefix });
    }

    /// Schedules a session flap down.
    pub fn schedule_link_down(&mut self, at: SimTime, session: SessionId) {
        self.schedule(at, EventKind::LinkDown { session });
    }

    /// Schedules a session restore.
    pub fn schedule_link_up(&mut self, at: SimTime, session: SessionId) {
        self.schedule(at, EventKind::LinkUp { session });
    }

    /// Schedules a replacement of the import policy `router` applies on
    /// its session with `peer` (panics if no such session exists).
    pub fn schedule_import_policy(
        &mut self,
        at: SimTime,
        router: RouterId,
        peer: RouterId,
        policy: ImportPolicy,
    ) {
        let session = self
            .find_session(router, peer)
            .unwrap_or_else(|| panic!("no session between {router} and {peer}"));
        self.schedule(at, EventKind::SetImportPolicy { session, router, policy });
    }

    /// Schedules a replacement of the export policy `router` applies on
    /// its session with `peer` (panics if no such session exists).
    pub fn schedule_export_policy(
        &mut self,
        at: SimTime,
        router: RouterId,
        peer: RouterId,
        policy: ExportPolicy,
    ) {
        let session = self
            .find_session(router, peer)
            .unwrap_or_else(|| panic!("no session between {router} and {peer}"));
        self.schedule(at, EventKind::SetExportPolicy { session, router, policy });
    }

    /// Processes one event; `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.at;
        self.last_event = ev.at;
        self.stats.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { session, to, update } => self.on_deliver(session, to, update),
            EventKind::LinkDown { session } => self.on_link_down(session),
            EventKind::LinkUp { session } => self.on_link_up(session),
            EventKind::Announce { router, prefix } => {
                let now = self.now;
                let actions = {
                    let (routers, index, sessions, store) = self.parts();
                    let Some(&i) = index.get(&router) else {
                        return true;
                    };
                    routers[i as usize].originate(now, prefix, sessions, store)
                };
                self.apply_actions(router, actions);
            }
            EventKind::Withdraw { router, prefix } => {
                let now = self.now;
                let actions = {
                    let (routers, index, sessions, store) = self.parts();
                    let Some(&i) = index.get(&router) else {
                        return true;
                    };
                    routers[i as usize].withdraw_origin(now, prefix, sessions, store)
                };
                self.apply_actions(router, actions);
            }
            EventKind::MraiExpire { router, session } => {
                let now = self.now;
                let actions = {
                    let (routers, index, sessions, store) = self.parts();
                    let Some(&i) = index.get(&router) else {
                        return true;
                    };
                    routers[i as usize].handle_mrai_expire(now, session, sessions, store)
                };
                self.apply_actions(router, actions);
            }
            EventKind::DampReuse { router, session, prefix } => {
                let now = self.now;
                let actions = {
                    let (routers, index, sessions, store) = self.parts();
                    let Some(&i) = index.get(&router) else {
                        return true;
                    };
                    routers[i as usize].handle_damp_reuse(now, session, prefix, sessions, store)
                };
                self.apply_actions(router, actions);
            }
            EventKind::SetImportPolicy { session, router, policy } => {
                self.on_set_import_policy(session, router, policy);
            }
            EventKind::SetExportPolicy { session, router, policy } => {
                self.on_set_export_policy(session, router, policy);
            }
        }
        true
    }

    /// Runs until no events remain. Returns the time of the last event
    /// actually processed — the network's convergence time — rather than
    /// the queue-empty poll time (`now` may sit past the final event after
    /// a [`Network::run_until`] call with a generous bound).
    ///
    /// Panics if `max_events` is exceeded — quiet networks must converge,
    /// so an overrun is a correctness bug, not a load condition.
    pub fn run_until_quiet(&mut self) -> SimTime {
        let budget = self.config.max_events;
        let start = self.stats.events_processed;
        while self.step() {
            assert!(
                self.stats.events_processed - start <= budget,
                "event budget exceeded: likely routing oscillation"
            );
        }
        self.last_event
    }

    /// Runs until simulated time reaches `t` (events at exactly `t` are
    /// processed). Pending later events remain queued.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    fn on_deliver(&mut self, session_id: SessionId, to: RouterId, update: SimUpdate) {
        let session = &self.sessions[session_id.0];
        if !session.up {
            self.stats.messages_dropped += 1;
            return;
        }
        let from = session.other(to);
        self.stats.messages_delivered += 1;
        let entry =
            CapturedUpdate { at: self.now, session: session_id, from, to, update: update.clone() };
        if let Some(mon) = self.monitors.get_mut(&session_id) {
            mon.record(entry.clone());
        }
        let is_collector = self.router(to).map(|r| r.is_collector).unwrap_or(false);
        if is_collector {
            if let Some(cap) = self.captures.get_mut(&to) {
                cap.record(entry);
            }
        }
        let now = self.now;
        let actions = {
            let (routers, index, sessions, store) = self.parts();
            let Some(&i) = index.get(&to) else {
                return;
            };
            routers[i as usize].handle_update(now, session_id, sessions, &update, store)
        };
        self.apply_actions(to, actions);
    }

    fn on_link_down(&mut self, session_id: SessionId) {
        if !self.sessions[session_id.0].up {
            return;
        }
        self.sessions[session_id.0].up = false;
        let (a, b) = {
            let s = &self.sessions[session_id.0];
            (s.a, s.b)
        };
        for endpoint in [a, b] {
            let now = self.now;
            let actions = {
                let (routers, index, sessions, store) = self.parts();
                let Some(&i) = index.get(&endpoint) else {
                    continue;
                };
                routers[i as usize].handle_session_down(now, session_id, sessions, store)
            };
            self.apply_actions(endpoint, actions);
        }
    }

    fn on_link_up(&mut self, session_id: SessionId) {
        if self.sessions[session_id.0].up {
            return;
        }
        self.sessions[session_id.0].up = true;
        let (a, b) = {
            let s = &self.sessions[session_id.0];
            (s.a, s.b)
        };
        for endpoint in [a, b] {
            let now = self.now;
            let actions = {
                let (routers, index, sessions, store) = self.parts();
                let Some(&i) = index.get(&endpoint) else {
                    continue;
                };
                routers[i as usize].handle_session_up(now, session_id, sessions, store)
            };
            self.apply_actions(endpoint, actions);
        }
    }

    /// Replaces `router`'s import policy on a session. On eBGP sessions
    /// the peer then replays its Adj-RIB-Out for the session (an RFC 2918
    /// route refresh), so the rewrite is observable without other churn;
    /// the receiver's post-policy no-change check absorbs replays the new
    /// policy leaves untouched. iBGP rewrites apply lazily (the refresh
    /// replay cannot reconstruct the sim-internal iBGP source hint).
    fn on_set_import_policy(
        &mut self,
        session_id: SessionId,
        router: RouterId,
        policy: ImportPolicy,
    ) {
        let session = &mut self.sessions[session_id.0];
        if session.a == router {
            session.a_import = policy;
        } else {
            session.b_import = policy;
        }
        if !session.up || !session.is_ebgp() {
            return;
        }
        let peer = session.other(router);
        let Some(peer_router) = self.router(peer) else {
            return;
        };
        // The replay travels the normal transmission path (fault
        // injection, link delay, sender counters) like any other update.
        let actions: Vec<Action> = peer_router
            .advertised_on(session_id)
            .into_iter()
            .map(|(prefix, attrs)| Action::Send {
                session: session_id,
                update: SimUpdate::announce(prefix, attrs),
            })
            .collect();
        if let Some(peer_router) = self.router_mut(peer) {
            peer_router.counters.updates_sent += actions.len() as u64;
        }
        self.apply_actions(peer, actions);
    }

    /// Replaces `router`'s export policy on a session, then re-runs the
    /// export path for its whole Loc-RIB there (a soft reset out).
    /// Announcements whose wire form the new policy does not change follow
    /// the vendor's duplicate behavior — Junos stays silent, the rest
    /// re-send — exactly the §3 vendor split.
    fn on_set_export_policy(
        &mut self,
        session_id: SessionId,
        router: RouterId,
        policy: ExportPolicy,
    ) {
        let session = &mut self.sessions[session_id.0];
        if session.a == router {
            session.a_export = policy;
        } else {
            session.b_export = policy;
        }
        if !session.up {
            return;
        }
        let now = self.now;
        let actions = {
            let (routers, index, sessions, store) = self.parts();
            let Some(&i) = index.get(&router) else {
                return;
            };
            routers[i as usize].handle_session_up(now, session_id, sessions, store)
        };
        self.apply_actions(router, actions);
    }

    /// Interprets a router's actions: schedules transmissions (with link
    /// delay and fault injection) and MRAI timers.
    fn apply_actions(&mut self, from: RouterId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { session, update } => {
                    let s = &self.sessions[session.0];
                    if !s.up {
                        self.stats.messages_dropped += 1;
                        continue;
                    }
                    if self.fault.should_drop() {
                        self.stats.messages_dropped += 1;
                        continue;
                    }
                    let to = s.other(from);
                    let at = self.now + s.delay + self.fault.extra_delay();
                    self.queue.push(at, EventKind::Deliver { session, to, update });
                }
                Action::ScheduleMrai { session, at } => {
                    self.queue.push(at, EventKind::MraiExpire { router: from, session });
                }
                Action::ScheduleDampReuse { session, prefix, at } => {
                    self.queue.push(at, EventKind::DampReuse { router: from, session, prefix });
                }
            }
        }
    }

    /// Builds a network from an AS-level topology: routers with vendor
    /// assignment, iBGP full meshes, eBGP sessions with behavior-derived
    /// policies, and deterministic per-session delay stagger.
    pub fn from_topology(topo: &Topology, config: SimConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut net = Network::new(config);

        // Routers, with per-AS vendor assignment.
        for node in topo.nodes() {
            let vendor = pick_vendor(&mut rng, &net.config);
            for spec in &node.routers {
                let id = node.router_id(spec.index);
                let ip = IpAddr::V4(node.router_ip(spec.index));
                let mut router = Router::new(id, ip, vendor, node.igp.clone());
                router.dampening = net.config.dampening;
                net.add_router(router);
            }
        }

        // iBGP full mesh within each AS.
        for node in topo.nodes() {
            for i in 0..node.routers.len() {
                for j in i + 1..node.routers.len() {
                    let delay = net.config.base_link_delay
                        + SimDuration::from_micros(node.igp_cost(i as u16, j as u16) as u64 * 50);
                    net.add_session(Session {
                        id: SessionId(0),
                        kind: SessionKind::Ibgp,
                        a: node.router_id(i as u16),
                        b: node.router_id(j as u16),
                        a_import: ImportPolicy::default(),
                        a_export: ExportPolicy::default(),
                        b_import: ImportPolicy::default(),
                        b_export: ExportPolicy::default(),
                        a_view_of_b: None,
                        b_view_of_a: None,
                        delay,
                        up: true,
                    });
                }
            }
        }

        // eBGP sessions from topology edges, policies from AS behavior.
        for edge in topo.edges() {
            let node_a = topo.node(edge.a).expect("edge endpoint");
            let node_b = topo.node(edge.b).expect("edge endpoint");
            let a_id = node_a.router_id(edge.a_router);
            let b_id = node_b.router_id(edge.b_router);
            let a_kind = edge.neighbor_kind(edge.a).expect("edge relationship");
            let b_kind = edge.neighbor_kind(edge.b).expect("edge relationship");

            let a_import = build_import(node_a, edge.a_router, a_kind);
            let b_import = build_import(node_b, edge.b_router, b_kind);
            let a_export = ExportPolicy {
                clean_communities: node_a.behavior.cleans_egress,
                ..Default::default()
            };
            let b_export = ExportPolicy {
                clean_communities: node_b.behavior.cleans_egress,
                ..Default::default()
            };
            let stagger = net.config.delay_spread.as_micros();
            let delay = net.config.base_link_delay
                + SimDuration::from_micros(if stagger == 0 {
                    0
                } else {
                    rng.gen_range(0..=stagger)
                });
            net.add_session(Session {
                id: SessionId(0),
                kind: SessionKind::Ebgp,
                a: a_id,
                b: b_id,
                a_import,
                a_export,
                b_import,
                b_export,
                a_view_of_b: Some(a_kind),
                b_view_of_a: Some(b_kind),
                delay,
                up: true,
            });
        }
        net
    }

    /// Adds a route collector AS with one router, peering with the given
    /// peer routers. The peers treat the collector session like a customer
    /// session (full export), the standard collector arrangement. Returns
    /// the collector's router id and the created session ids.
    pub fn attach_collector(
        &mut self,
        collector_asn: Asn,
        peers: &[RouterId],
    ) -> (RouterId, Vec<SessionId>) {
        let collector_id = RouterId { asn: collector_asn, index: 0 };
        let v = collector_asn.value();
        let ip =
            IpAddr::V4(std::net::Ipv4Addr::new(198, 51, ((v >> 8) & 0xFF) as u8, (v & 0xFF) as u8));
        let mut collector =
            Router::new(collector_id, ip, VendorProfile::BIRD_2, kcc_topology::IgpMap::ring(1));
        collector.is_collector = true;
        self.add_router(collector);

        let mut ids = Vec::with_capacity(peers.len());
        for (i, &peer) in peers.iter().enumerate() {
            // Peer keeps its configured egress behavior toward the
            // collector; the collector imports everything untouched.
            // Cleaning policy is AS-level: any eBGP session of any router
            // of the peer's AS reveals it (the peer router itself may have
            // no other eBGP session).
            let peer_cleans = self
                .sessions
                .iter()
                .filter(|s| s.is_ebgp())
                .find_map(|s| {
                    if s.a.asn == peer.asn {
                        Some(s.a_export.clean_communities)
                    } else if s.b.asn == peer.asn {
                        Some(s.b_export.clean_communities)
                    } else {
                        None
                    }
                })
                .unwrap_or(false);
            let delay = self.config.base_link_delay
                + SimDuration::from_micros(
                    (i as u64 * 137) % self.config.delay_spread.as_micros().max(1),
                );
            let id = self.add_session(Session {
                id: SessionId(0),
                kind: SessionKind::Ebgp,
                a: peer,
                b: collector_id,
                a_import: ImportPolicy::default(),
                a_export: ExportPolicy { clean_communities: peer_cleans, ..Default::default() },
                b_import: ImportPolicy::default(),
                b_export: ExportPolicy::default(),
                // Peers export everything to collectors (customer-like).
                a_view_of_b: Some(RouteSource::Customer),
                b_view_of_a: Some(RouteSource::Provider),
                delay,
                up: true,
            });
            ids.push(id);
        }
        (collector_id, ids)
    }

    /// Schedules announcements of every prefix in the topology at `at`.
    pub fn announce_all_origins(&mut self, topo: &Topology, at: SimTime) {
        for (asn, prefix) in topo.all_prefixes() {
            let router = RouterId { asn, index: 0 };
            self.schedule_announce(at, router, prefix);
        }
    }
}

fn build_import(node: &kcc_topology::AsNode, router_index: u16, kind: RouteSource) -> ImportPolicy {
    let mut p = ImportPolicy::for_neighbor(kind);
    if node.behavior.cleans_ingress {
        p.clean_communities = true;
    }
    if node.behavior.tags_geo {
        let location = node.routers[router_index as usize].location;
        p.geo_tag = Some((node.asn.value() as u16, location));
    }
    p
}

fn pick_vendor(rng: &mut StdRng, config: &SimConfig) -> VendorProfile {
    if config.vendor_mix.is_empty() {
        return config.default_vendor;
    }
    let total: f64 = config.vendor_mix.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0.0..total);
    for (v, w) in &config.vendor_mix {
        if pick < *w {
            return *v;
        }
        pick -= w;
    }
    config.vendor_mix.last().expect("non-empty mix").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_topology::{generate, TopologyConfig};

    fn tiny_topology() -> Topology {
        generate(&TopologyConfig { n_tier1: 2, n_transit: 3, n_stub: 5, ..Default::default() })
    }

    #[test]
    fn build_from_topology() {
        let topo = tiny_topology();
        let net = Network::from_topology(&topo, SimConfig::default());
        let router_count: usize = topo.nodes().map(|n| n.routers.len()).sum();
        assert_eq!(net.routers().count(), router_count);
        assert!(!net.sessions().is_empty());
    }

    #[test]
    fn converges_and_goes_quiet() {
        let topo = tiny_topology();
        let mut net = Network::from_topology(&topo, SimConfig::default());
        net.announce_all_origins(&topo, SimTime::ZERO);
        net.run_until_quiet();
        // After quiescence every router should know every prefix
        // (valley-free reachability holds in a fully connected hierarchy).
        let total_prefixes = topo.all_prefixes().len();
        for r in net.routers() {
            assert_eq!(r.loc_rib_len(), total_prefixes, "router {} missing routes", r.id);
        }
    }

    #[test]
    fn quiet_network_stays_quiet() {
        // The paper's lab setup sanity check: once converged, only
        // keepalives flow — in our model, *nothing* flows.
        let topo = tiny_topology();
        let mut net = Network::from_topology(&topo, SimConfig::default());
        net.announce_all_origins(&topo, SimTime::ZERO);
        net.run_until_quiet();
        let delivered = net.stats.messages_delivered;
        net.run_until_quiet();
        assert_eq!(net.stats.messages_delivered, delivered);
    }

    #[test]
    fn collector_receives_routes() {
        let topo = tiny_topology();
        let mut net = Network::from_topology(&topo, SimConfig::default());
        let peer = topo.nodes().find(|n| n.tier == kcc_topology::Tier::Transit).unwrap();
        let peer_router = peer.router_id(0);
        let (collector, sessions) = net.attach_collector(Asn(12_345), &[peer_router]);
        assert_eq!(sessions.len(), 1);
        net.announce_all_origins(&topo, SimTime::ZERO);
        net.run_until_quiet();
        let cap = net.capture(collector).unwrap();
        assert!(!cap.is_empty(), "collector saw no updates");
        // The collector should have learned all prefixes.
        let r = net.router(collector).unwrap();
        assert_eq!(r.loc_rib_len(), topo.all_prefixes().len());
    }

    #[test]
    fn withdrawal_propagates_to_collector() {
        let topo = tiny_topology();
        let mut net = Network::from_topology(&topo, SimConfig::default());
        let peer = topo.nodes().find(|n| n.tier == kcc_topology::Tier::Transit).unwrap();
        let (collector, _) = net.attach_collector(Asn(12_345), &[peer.router_id(0)]);
        net.announce_all_origins(&topo, SimTime::ZERO);
        net.run_until_quiet();
        net.clear_captures();

        let (origin, prefix) = topo.all_prefixes()[0];
        net.schedule_withdraw(SimTime::from_secs(100), RouterId { asn: origin, index: 0 }, prefix);
        net.run_until_quiet();
        let r = net.router(collector).unwrap();
        assert!(r.best_route(&prefix).is_none(), "prefix not withdrawn at collector");
        let cap = net.capture(collector).unwrap();
        assert!(cap.withdrawal_count() > 0, "no withdrawal reached the collector");
    }

    #[test]
    fn link_flap_triggers_updates_and_recovery() {
        let topo = tiny_topology();
        let mut net = Network::from_topology(&topo, SimConfig::default());
        net.announce_all_origins(&topo, SimTime::ZERO);
        net.run_until_quiet();

        // Flap the first eBGP session.
        let sid =
            net.sessions().iter().find(|s| s.is_ebgp()).map(|s| s.id).expect("an ebgp session");
        let before: Vec<usize> = net.routers().map(|r| r.loc_rib_len()).collect();
        net.schedule_link_down(SimTime::from_secs(200), sid);
        net.schedule_link_up(SimTime::from_secs(260), sid);
        net.run_until_quiet();
        let after: Vec<usize> = net.routers().map(|r| r.loc_rib_len()).collect();
        assert_eq!(before, after, "flap must fully heal");
    }

    #[test]
    fn fault_injection_drops_messages() {
        let topo = tiny_topology();
        let cfg = SimConfig {
            fault: FaultConfig { drop_chance: 0.3, seed: 5, ..Default::default() },
            ..Default::default()
        };
        let mut net = Network::from_topology(&topo, cfg);
        net.announce_all_origins(&topo, SimTime::ZERO);
        net.run_until_quiet();
        assert!(net.stats.messages_dropped > 0);
    }

    #[test]
    fn vendor_mix_assignment_deterministic() {
        let topo = tiny_topology();
        let cfg = SimConfig {
            vendor_mix: vec![(VendorProfile::CISCO_IOS, 0.5), (VendorProfile::JUNOS, 0.5)],
            ..Default::default()
        };
        let a = Network::from_topology(&topo, cfg.clone());
        let b = Network::from_topology(&topo, cfg);
        let va: Vec<&str> = a.routers().map(|r| r.vendor.name).collect();
        let vb: Vec<&str> = b.routers().map(|r| r.vendor.name).collect();
        assert_eq!(va, vb);
        assert!(va.contains(&"Cisco IOS 12.4(20)T") || va.contains(&"Junos OS Olive 12.1R1.9"));
    }

    #[test]
    fn run_until_respects_time_bound() {
        let topo = tiny_topology();
        let mut net = Network::from_topology(&topo, SimConfig::default());
        net.announce_all_origins(&topo, SimTime::from_secs(10));
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.stats.messages_delivered, 0);
        net.run_until_quiet();
        assert!(net.stats.messages_delivered > 0);
    }

    #[test]
    fn convergence_time_is_deterministic_across_runs() {
        // Two identical runs must report the same quiescence time — the
        // comparison every sweep cell and golden trace relies on.
        let converge = || {
            let topo = tiny_topology();
            let mut net = Network::from_topology(&topo, SimConfig::default());
            net.announce_all_origins(&topo, SimTime::ZERO);
            net.run_until_quiet()
        };
        let a = converge();
        let b = converge();
        assert_eq!(a, b);
        assert!(a > SimTime::ZERO);
    }

    #[test]
    fn quiet_time_is_last_event_not_poll_time() {
        // Draining the queue through `run_until` with a generous bound
        // advances `now` to the bound; `run_until_quiet` must still
        // report when the last event actually fired.
        let topo = tiny_topology();
        let mut reference = Network::from_topology(&topo, SimConfig::default());
        reference.announce_all_origins(&topo, SimTime::ZERO);
        let converged_at = reference.run_until_quiet();

        let mut probed = Network::from_topology(&topo, SimConfig::default());
        probed.announce_all_origins(&topo, SimTime::ZERO);
        probed.run_until(SimTime::from_secs(10_000));
        assert_eq!(probed.now(), SimTime::from_secs(10_000), "run_until advances the clock");
        assert_eq!(
            probed.run_until_quiet(),
            converged_at,
            "quiescence time must be the last processed event, not the poll time"
        );
    }

    #[test]
    fn import_policy_rewrite_refreshes_route() {
        // A community rewrite at ingress must become visible via the
        // route-refresh replay, without any other churn.
        let topo = tiny_topology();
        let mut net = Network::from_topology(&topo, SimConfig::default());
        net.announce_all_origins(&topo, SimTime::ZERO);
        net.run_until_quiet();

        // Pick an eBGP session and rewrite the a-side import policy to
        // tag everything with a marker community.
        let (sid, a, b) = net
            .sessions()
            .iter()
            .find(|s| s.is_ebgp())
            .map(|s| (s.id, s.a, s.b))
            .expect("an ebgp session");
        let marker = kcc_bgp_types::Community::from_parts(65_432, 1);
        let kind = net.sessions()[sid.0].neighbor_kind_for(a).unwrap();
        let policy =
            ImportPolicy { add_communities: vec![marker], ..ImportPolicy::for_neighbor(kind) };
        net.schedule_import_policy(net.now() + SimDuration::from_secs(10), a, b, policy);
        net.run_until_quiet();

        let tagged = net
            .router(a)
            .unwrap()
            .adj_rib_in()
            .filter(|((s, _), e)| *s == sid && e.attrs.communities.contains(&marker))
            .count();
        assert!(tagged > 0, "refresh must re-import at least one route with the marker");
    }
}
