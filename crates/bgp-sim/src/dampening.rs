//! Route-flap dampening (RFC 2439, simplified).
//!
//! The paper's §2 lists dampening among the mechanisms that trade update
//! suppression against convergence ("may offer suboptimal performance in
//! reacting to routing events... selectively deployed"). This module
//! implements the standard penalty model so ablations can measure how
//! dampening interacts with community-driven update traffic:
//!
//! * every received *flap* (withdrawal, or an announcement that changes
//!   the post-policy route) adds [`DampeningConfig::penalty_per_flap`],
//! * the penalty decays exponentially with
//!   [`DampeningConfig::half_life`],
//! * a route whose penalty exceeds the suppress threshold is excluded
//!   from the decision process until the penalty decays below the reuse
//!   threshold.

use crate::time::{SimDuration, SimTime};

/// Dampening parameters (RFC 2439 defaults in Cisco's formulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampeningConfig {
    /// Penalty added per flap.
    pub penalty_per_flap: f64,
    /// Penalty above which the route is suppressed.
    pub suppress_threshold: f64,
    /// Penalty below which a suppressed route is usable again.
    pub reuse_threshold: f64,
    /// Exponential-decay half-life.
    pub half_life: SimDuration,
}

impl Default for DampeningConfig {
    fn default() -> Self {
        DampeningConfig {
            penalty_per_flap: 1_000.0,
            suppress_threshold: 2_000.0,
            reuse_threshold: 750.0,
            half_life: SimDuration::from_secs(15 * 60),
        }
    }
}

/// Penalty state of one `(session, prefix)` route at one router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampeningState {
    penalty: f64,
    last_update: SimTime,
    suppressed: bool,
}

impl DampeningState {
    /// Fresh, unpenalized state.
    pub fn new(now: SimTime) -> Self {
        DampeningState { penalty: 0.0, last_update: now, suppressed: false }
    }

    /// The decayed penalty at `now`.
    pub fn penalty_at(&self, now: SimTime, cfg: &DampeningConfig) -> f64 {
        let dt = (now - self.last_update).as_micros() as f64;
        let hl = cfg.half_life.as_micros() as f64;
        if hl <= 0.0 {
            return self.penalty;
        }
        self.penalty * 0.5f64.powf(dt / hl)
    }

    /// Records one flap; returns true if the route is (now) suppressed.
    pub fn record_flap(&mut self, now: SimTime, cfg: &DampeningConfig) -> bool {
        self.penalty = self.penalty_at(now, cfg) + cfg.penalty_per_flap;
        self.last_update = now;
        if self.penalty >= cfg.suppress_threshold {
            self.suppressed = true;
        }
        self.suppressed
    }

    /// True if still suppressed at `now` (clears once decayed past reuse).
    pub fn is_suppressed(&mut self, now: SimTime, cfg: &DampeningConfig) -> bool {
        if self.suppressed && self.penalty_at(now, cfg) < cfg.reuse_threshold {
            self.suppressed = false;
        }
        self.suppressed
    }

    /// Time at which the penalty will have decayed to the reuse threshold
    /// (for scheduling the reuse check).
    pub fn reuse_time(&self, cfg: &DampeningConfig) -> SimTime {
        if self.penalty <= cfg.reuse_threshold {
            return self.last_update;
        }
        let hl = cfg.half_life.as_micros() as f64;
        let halvings = (self.penalty / cfg.reuse_threshold).log2();
        self.last_update + SimDuration::from_micros((halvings * hl).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DampeningConfig {
        DampeningConfig::default()
    }

    #[test]
    fn one_flap_does_not_suppress() {
        let mut s = DampeningState::new(SimTime::ZERO);
        assert!(!s.record_flap(SimTime::ZERO, &cfg()));
        assert!(!s.is_suppressed(SimTime::ZERO, &cfg()));
    }

    #[test]
    fn rapid_flaps_suppress() {
        // With 1000/flap and threshold 2000, the third rapid flap
        // suppresses (the second decays to just under 2000).
        let mut s = DampeningState::new(SimTime::ZERO);
        assert!(!s.record_flap(SimTime::from_secs(0), &cfg()));
        s.record_flap(SimTime::from_secs(1), &cfg());
        let suppressed = s.record_flap(SimTime::from_secs(2), &cfg());
        assert!(suppressed, "three immediate flaps exceed the 2000 threshold");
        assert!(s.is_suppressed(SimTime::from_secs(3), &cfg()));
    }

    #[test]
    fn penalty_decays_exponentially() {
        let mut s = DampeningState::new(SimTime::ZERO);
        s.record_flap(SimTime::ZERO, &cfg());
        let p0 = s.penalty_at(SimTime::ZERO, &cfg());
        let p1 = s.penalty_at(SimTime::from_secs(15 * 60), &cfg());
        assert!((p0 - 1000.0).abs() < 1e-9);
        assert!((p1 - 500.0).abs() < 1.0, "one half-life halves the penalty: {p1}");
    }

    #[test]
    fn suppression_clears_after_decay() {
        let mut s = DampeningState::new(SimTime::ZERO);
        s.record_flap(SimTime::ZERO, &cfg());
        s.record_flap(SimTime::from_secs(1), &cfg());
        s.record_flap(SimTime::from_secs(2), &cfg());
        assert!(s.is_suppressed(SimTime::from_secs(60), &cfg()));
        // ~3000 → 750 takes log2(3000/750) = 2 half-lives = 30 min.
        assert!(!s.is_suppressed(SimTime::from_secs(45 * 60), &cfg()));
    }

    #[test]
    fn reuse_time_matches_decay() {
        let mut s = DampeningState::new(SimTime::ZERO);
        s.record_flap(SimTime::ZERO, &cfg());
        s.record_flap(SimTime::from_secs(1), &cfg());
        s.record_flap(SimTime::from_secs(2), &cfg());
        let reuse = s.reuse_time(&cfg());
        // Penalty just below reuse threshold at the predicted time.
        let p = s.penalty_at(reuse, &cfg());
        assert!(p <= 750.5, "penalty at reuse time: {p}");
        // And still above shortly before.
        let before = SimTime(reuse.0.saturating_sub(60_000_000));
        assert!(s.penalty_at(before, &cfg()) > 750.0);
    }

    #[test]
    fn penalty_exactly_at_suppress_threshold_suppresses() {
        // The comparison is `>=`: landing exactly on the threshold
        // suppresses (RFC 2439's cutoff is inclusive).
        let exact = DampeningConfig { penalty_per_flap: 2_000.0, ..DampeningConfig::default() };
        let mut s = DampeningState::new(SimTime::ZERO);
        assert!(s.record_flap(SimTime::ZERO, &exact), "penalty == threshold must suppress");
        // One unit below must not.
        let below = DampeningConfig { penalty_per_flap: 1_999.0, ..DampeningConfig::default() };
        let mut s = DampeningState::new(SimTime::ZERO);
        assert!(!s.record_flap(SimTime::ZERO, &below));
    }

    #[test]
    fn penalty_exactly_at_reuse_threshold_stays_suppressed() {
        // Reuse requires decaying strictly *below* the threshold. With
        // penalty 1500, reuse 750 and one exact half-life elapsed, the
        // decayed penalty is exactly 750 — still suppressed; a moment
        // later it is not.
        let cfg = DampeningConfig {
            penalty_per_flap: 1_500.0,
            suppress_threshold: 1_500.0,
            reuse_threshold: 750.0,
            half_life: SimDuration::from_secs(60),
        };
        let mut s = DampeningState::new(SimTime::ZERO);
        assert!(s.record_flap(SimTime::ZERO, &cfg));
        let one_half_life = SimTime::from_secs(60);
        assert!(
            (s.penalty_at(one_half_life, &cfg) - 750.0).abs() < 1e-9,
            "exactly one half-life must halve the penalty exactly"
        );
        assert!(s.is_suppressed(one_half_life, &cfg), "== reuse threshold is still suppressed");
        assert!(!s.is_suppressed(SimTime::from_secs(61), &cfg), "below the threshold is reusable");
    }

    #[test]
    fn zero_half_life_disables_decay() {
        // A degenerate half-life of zero must not divide by zero; the
        // penalty is simply frozen.
        let cfg = DampeningConfig { half_life: SimDuration::ZERO, ..DampeningConfig::default() };
        let mut s = DampeningState::new(SimTime::ZERO);
        s.record_flap(SimTime::ZERO, &cfg);
        assert!((s.penalty_at(SimTime::from_secs(86_400), &cfg) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn penalty_decays_toward_zero_without_crossing() {
        // Exponential decay approaches zero asymptotically; even after
        // an absurd interval the penalty stays non-negative and the
        // suppression state machine keeps working.
        let mut s = DampeningState::new(SimTime::ZERO);
        s.record_flap(SimTime::ZERO, &cfg());
        let far = SimTime::from_secs(365 * 86_400);
        let p = s.penalty_at(far, &cfg());
        assert!(p >= 0.0, "penalty must never cross zero: {p}");
        assert!(p < 1e-6, "a year of decay leaves nothing: {p}");
        // A new flap from the fully-decayed state behaves like the first.
        assert!(!s.record_flap(far, &cfg()));
    }

    #[test]
    fn reuse_time_is_last_update_when_already_reusable() {
        let mut s = DampeningState::new(SimTime::ZERO);
        s.record_flap(SimTime::from_secs(5), &cfg());
        // One flap: penalty 1000 > reuse 750, so reuse is in the future…
        assert!(s.reuse_time(&cfg()) > SimTime::from_secs(5));
        // …but with a reuse threshold above the penalty it is immediate.
        let lax = DampeningConfig { reuse_threshold: 1_500.0, ..cfg() };
        assert_eq!(s.reuse_time(&lax), SimTime::from_secs(5));
    }

    #[test]
    fn spaced_flaps_never_suppress() {
        let mut s = DampeningState::new(SimTime::ZERO);
        for i in 0..10u64 {
            // One flap per hour: fully decayed in between (4 half-lives).
            let t = SimTime::from_secs(i * 3600);
            assert!(!s.record_flap(t, &cfg()), "hourly flaps must not suppress");
        }
    }
}
