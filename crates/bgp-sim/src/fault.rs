//! Fault injection for simulated message delivery.
//!
//! Mirrors the smoltcp examples' `--drop-chance` / shaping options: tests
//! and experiments can subject BGP sessions to message loss and extra
//! latency, deterministically (seeded RNG).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Fault injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a message is silently dropped in flight.
    pub drop_chance: f64,
    /// Maximum extra delay added to a delivery (uniform in
    /// `0..=max_extra_delay`).
    pub max_extra_delay: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FaultConfig {
    /// No faults.
    fn default() -> Self {
        FaultConfig { drop_chance: 0.0, max_extra_delay: SimDuration::ZERO, seed: 0 }
    }
}

impl FaultConfig {
    /// A config that drops messages with `drop_chance` under `seed`, with
    /// no extra delay — the scenario specs' shorthand for lossy networks.
    pub fn lossy(drop_chance: f64, seed: u64) -> Self {
        FaultConfig { drop_chance, max_extra_delay: SimDuration::ZERO, seed }
    }
}

/// Stateful fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: StdRng,
    /// Messages dropped so far.
    pub dropped: u64,
}

impl FaultInjector {
    /// Builds an injector from a config.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector { config, rng: StdRng::seed_from_u64(config.seed), dropped: 0 }
    }

    /// True if the next message should be dropped.
    pub fn should_drop(&mut self) -> bool {
        if self.config.drop_chance <= 0.0 {
            return false;
        }
        let drop = self.rng.gen_bool(self.config.drop_chance.min(1.0));
        if drop {
            self.dropped += 1;
        }
        drop
    }

    /// Extra delivery delay for the next message.
    pub fn extra_delay(&mut self) -> SimDuration {
        let max = self.config.max_extra_delay.as_micros();
        if max == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(self.rng.gen_range(0..=max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_by_default() {
        let mut f = FaultInjector::new(FaultConfig::default());
        for _ in 0..100 {
            assert!(!f.should_drop());
            assert_eq!(f.extra_delay(), SimDuration::ZERO);
        }
        assert_eq!(f.dropped, 0);
    }

    #[test]
    fn lossy_shorthand_sets_only_drops() {
        let f = FaultConfig::lossy(0.25, 9);
        assert!((f.drop_chance - 0.25).abs() < 1e-12);
        assert_eq!(f.max_extra_delay, SimDuration::ZERO);
        assert_eq!(f.seed, 9);
    }

    #[test]
    fn drop_chance_one_drops_everything() {
        let mut f = FaultInjector::new(FaultConfig { drop_chance: 1.0, ..Default::default() });
        for _ in 0..10 {
            assert!(f.should_drop());
        }
        assert_eq!(f.dropped, 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FaultConfig {
            drop_chance: 0.5,
            max_extra_delay: SimDuration::from_millis(10),
            seed: 99,
        };
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        for _ in 0..50 {
            assert_eq!(a.should_drop(), b.should_drop());
            assert_eq!(a.extra_delay(), b.extra_delay());
        }
    }

    #[test]
    fn extra_delay_bounded() {
        let mut f = FaultInjector::new(FaultConfig {
            max_extra_delay: SimDuration::from_micros(500),
            seed: 1,
            ..Default::default()
        });
        for _ in 0..100 {
            assert!(f.extra_delay() <= SimDuration::from_micros(500));
        }
    }
}
