//! Record-at-a-time update extraction from an MRT stream.
//!
//! [`UpdateStream`] flattens the BGP4MP MESSAGE records of an MRT byte
//! stream into per-session [`RouteUpdate`]s without ever materializing the
//! archive: one MRT record is decoded, exploded into its updates, yielded,
//! and dropped before the next record is read. This is the building block
//! the analysis pipeline's streaming sources are made of — a
//! collector-day of any size is processed in memory proportional to one
//! record.

use std::collections::VecDeque;
use std::io::Read;
use std::net::IpAddr;

use kcc_bgp_types::{Asn, RouteUpdate};
use kcc_bgp_wire::{Message, UpdatePacket};

use crate::error::MrtError;
use crate::reader::MrtReader;
use crate::record::MrtRecord;

/// One whole BGP4MP MESSAGE record, pre-explosion: session identity,
/// normalized timestamp, and the decoded UPDATE packet. Consuming at this
/// granularity lets callers resolve the session **once per record**
/// instead of once per prefix — real UPDATEs pack many prefixes.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedMessage {
    /// The peer that sent the message.
    pub peer_asn: Asn,
    /// The peer's session address.
    pub peer_ip: IpAddr,
    /// True when the record carried only second resolution (plain
    /// `BGP4MP`, not `_ET`).
    pub second_granularity: bool,
    /// Microseconds since the stream's epoch.
    pub time_us: u64,
    /// The decoded UPDATE packet (possibly many prefixes).
    pub packet: UpdatePacket,
}

/// One update extracted from a BGP4MP MESSAGE record, with the session
/// identity and timestamp granularity the record carried.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedUpdate {
    /// The peer that sent the message.
    pub peer_asn: Asn,
    /// The peer's session address.
    pub peer_ip: IpAddr,
    /// True when the record carried only second resolution (plain
    /// `BGP4MP`, not `_ET`) — the trigger for the paper's timestamp
    /// disambiguation rule.
    pub second_granularity: bool,
    /// The update, with `time_us` relative to the stream's epoch.
    pub update: RouteUpdate,
}

/// Streams [`RouteUpdate`]s out of MRT bytes, one record at a time.
///
/// Non-message records (state changes, RIB dumps) are skipped — they are
/// not update traffic. Records timestamped **before** `epoch_seconds`
/// surface [`MrtError::PreEpochRecord`]: silently collapsing them onto
/// the epoch (the old `saturating_sub` behavior) fabricated same-instant
/// runs out of distinct arrival times — exactly the shape the cleaning
/// stage's same-second disambiguation then "fixes" into wrong data.
/// Callers that knowingly feed a mid-day epoch can opt into the clamp
/// with [`UpdateStream::with_pre_epoch_clamp`], which counts every
/// clamped record in [`UpdateStream::pre_epoch_clamped`].
#[derive(Debug)]
pub struct UpdateStream<R: Read> {
    reader: MrtReader<R>,
    epoch_seconds: u32,
    clamp_pre_epoch: bool,
    pre_epoch_clamped: u64,
    pending: VecDeque<StreamedUpdate>,
}

impl<R: Read> UpdateStream<R> {
    /// Wraps an MRT byte stream; update times become microseconds since
    /// `epoch_seconds`.
    pub fn new(inner: R, epoch_seconds: u32) -> Self {
        UpdateStream {
            reader: MrtReader::new(inner),
            epoch_seconds,
            clamp_pre_epoch: false,
            pre_epoch_clamped: 0,
            pending: VecDeque::new(),
        }
    }

    /// Accept records timestamped before the epoch by clamping them to
    /// relative time 0 (keeping their microsecond part), instead of
    /// surfacing [`MrtError::PreEpochRecord`]. Every clamped record is
    /// counted in [`UpdateStream::pre_epoch_clamped`] so the collapse is
    /// never silent.
    pub fn with_pre_epoch_clamp(mut self) -> Self {
        self.clamp_pre_epoch = true;
        self
    }

    /// Number of records clamped onto the epoch (only nonzero after
    /// [`UpdateStream::with_pre_epoch_clamp`]).
    pub fn pre_epoch_clamped(&self) -> u64 {
        self.pre_epoch_clamped
    }

    /// Number of MRT records consumed so far.
    pub fn records_read(&self) -> u64 {
        self.reader.records_read()
    }

    /// The next whole UPDATE message; `Ok(None)` at clean EOF.
    ///
    /// This is the record-granularity hot path: the packet is moved out of
    /// the record (no copy), and the caller amortizes session resolution
    /// over every prefix the packet carries. Do not interleave with
    /// [`next_update`](Self::next_update) — that method queues exploded
    /// updates which this one does not drain.
    pub fn next_message(&mut self) -> Result<Option<StreamedMessage>, MrtError> {
        loop {
            let Some(record) = self.reader.next_record()? else {
                return Ok(None);
            };
            let MrtRecord::Message(m) = record else {
                continue; // state changes / RIB dumps are not update traffic
            };
            let Message::Update(packet) = m.message else {
                continue;
            };
            let ts = m.timestamp;
            if ts.seconds < self.epoch_seconds {
                if !self.clamp_pre_epoch {
                    return Err(MrtError::PreEpochRecord {
                        record_seconds: ts.seconds,
                        epoch_seconds: self.epoch_seconds,
                    });
                }
                self.pre_epoch_clamped += 1;
            }
            let rel_seconds = ts.seconds.saturating_sub(self.epoch_seconds) as u64;
            let time_us = rel_seconds * 1_000_000 + ts.microseconds.unwrap_or(0) as u64;
            return Ok(Some(StreamedMessage {
                peer_asn: m.peer_asn,
                peer_ip: m.peer_ip,
                second_granularity: ts.is_second_granularity(),
                time_us,
                packet,
            }));
        }
    }

    /// The next update; `Ok(None)` at clean EOF.
    pub fn next_update(&mut self) -> Result<Option<StreamedUpdate>, MrtError> {
        loop {
            if let Some(u) = self.pending.pop_front() {
                return Ok(Some(u));
            }
            let Some(msg) = self.next_message()? else {
                return Ok(None);
            };
            for update in msg.packet.into_route_updates(msg.time_us) {
                self.pending.push_back(StreamedUpdate {
                    peer_asn: msg.peer_asn,
                    peer_ip: msg.peer_ip,
                    second_granularity: msg.second_granularity,
                    update,
                });
            }
        }
    }
}

impl<R: Read> Iterator for UpdateStream<R> {
    type Item = Result<StreamedUpdate, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_update().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MrtTimestamp;
    use crate::writer::MrtWriter;
    use crate::Bgp4mpMessage;
    use kcc_bgp_types::PathAttributes;
    use kcc_bgp_wire::UpdatePacket;

    fn message(seconds: u32, micros: Option<u32>, withdraw: bool) -> MrtRecord {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let prefix = "84.205.64.0/24".parse().unwrap();
        let packet = if withdraw {
            UpdatePacket::withdraw(prefix)
        } else {
            UpdatePacket::announce(prefix, attrs)
        };
        MrtRecord::Message(Bgp4mpMessage {
            timestamp: match micros {
                Some(us) => MrtTimestamp::micros(seconds, us),
                None => MrtTimestamp::seconds(seconds),
            },
            peer_asn: Asn(20_205),
            local_asn: Asn(3333),
            ifindex: 0,
            peer_ip: "192.0.2.9".parse().unwrap(),
            local_ip: "192.0.2.1".parse().unwrap(),
            message: Message::Update(packet),
        })
    }

    #[test]
    fn streams_updates_with_relative_times() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&message(100, Some(250), false)).unwrap();
        w.write_record(&message(101, None, true)).unwrap();
        let bytes = w.into_inner();

        let mut s = UpdateStream::new(&bytes[..], 100);
        let first = s.next_update().unwrap().unwrap();
        assert_eq!(first.update.time_us, 250);
        assert!(!first.second_granularity);
        assert!(first.update.is_announcement());
        let second = s.next_update().unwrap().unwrap();
        assert_eq!(second.update.time_us, 1_000_000);
        assert!(second.second_granularity);
        assert!(s.next_update().unwrap().is_none());
        assert_eq!(s.records_read(), 2);
    }

    /// Regression: `saturating_sub(epoch)` used to collapse every
    /// pre-epoch record onto relative time 0, fabricating same-instant
    /// runs. The default is now a decode error.
    #[test]
    fn pre_epoch_records_error_by_default() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&message(50, Some(7), false)).unwrap();
        let bytes = w.into_inner();
        let err = UpdateStream::new(&bytes[..], 100).next_update().unwrap_err();
        assert!(
            matches!(err, MrtError::PreEpochRecord { record_seconds: 50, epoch_seconds: 100 }),
            "unexpected error: {err:?}"
        );
    }

    /// The explicit opt-in keeps the old clamp, but counts it.
    #[test]
    fn pre_epoch_clamp_optin_counts_records() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&message(50, Some(7), false)).unwrap();
        w.write_record(&message(100, Some(9), false)).unwrap();
        let bytes = w.into_inner();
        let mut s = UpdateStream::new(&bytes[..], 100).with_pre_epoch_clamp();
        let first = s.next_update().unwrap().unwrap();
        assert_eq!(first.update.time_us, 7, "clamped to the epoch, micros preserved");
        let second = s.next_update().unwrap().unwrap();
        assert_eq!(second.update.time_us, 9);
        assert!(s.next_update().unwrap().is_none());
        assert_eq!(s.pre_epoch_clamped(), 1, "exactly the pre-epoch record is counted");
    }

    #[test]
    fn next_message_yields_whole_packets() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&message(100, Some(250), false)).unwrap();
        w.write_record(&message(101, None, true)).unwrap();
        let bytes = w.into_inner();

        let mut s = UpdateStream::new(&bytes[..], 100);
        let first = s.next_message().unwrap().unwrap();
        assert_eq!(first.time_us, 250);
        assert_eq!(first.peer_asn, Asn(20_205));
        assert!(!first.second_granularity);
        assert_eq!(first.packet.nlri.len(), 1);
        let second = s.next_message().unwrap().unwrap();
        assert_eq!(second.time_us, 1_000_000);
        assert_eq!(second.packet.withdrawn.len(), 1);
        assert!(s.next_message().unwrap().is_none());
    }

    #[test]
    fn non_message_records_skipped() {
        use crate::{Bgp4mpStateChange, BgpState};
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&MrtRecord::StateChange(Bgp4mpStateChange {
            timestamp: MrtTimestamp::seconds(100),
            peer_asn: Asn(20_205),
            local_asn: Asn(3333),
            ifindex: 0,
            peer_ip: "192.0.2.9".parse().unwrap(),
            local_ip: "192.0.2.1".parse().unwrap(),
            old_state: BgpState::Idle,
            new_state: BgpState::Established,
        }))
        .unwrap();
        w.write_record(&message(100, Some(1), false)).unwrap();
        let bytes = w.into_inner();
        let got: Vec<_> = UpdateStream::new(&bytes[..], 100).map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].update.time_us, 1);
    }

    #[test]
    fn torn_stream_surfaces_error() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&message(100, Some(1), false)).unwrap();
        let bytes = w.into_inner();
        let torn = &bytes[..bytes.len() - 3];
        let results: Vec<_> = UpdateStream::new(torn, 100).collect();
        assert!(results.iter().any(|r| r.is_err()));
    }
}
