//! Record-at-a-time update extraction from an MRT stream.
//!
//! [`UpdateStream`] flattens the BGP4MP MESSAGE records of an MRT byte
//! stream into per-session [`RouteUpdate`]s without ever materializing the
//! archive: one MRT record is decoded, exploded into its updates, yielded,
//! and dropped before the next record is read. This is the building block
//! the analysis pipeline's streaming sources are made of — a
//! collector-day of any size is processed in memory proportional to one
//! record.

use std::collections::VecDeque;
use std::io::Read;
use std::net::IpAddr;

use kcc_bgp_types::{Asn, RouteUpdate};
use kcc_bgp_wire::Message;

use crate::error::MrtError;
use crate::reader::MrtReader;
use crate::record::MrtRecord;

/// One update extracted from a BGP4MP MESSAGE record, with the session
/// identity and timestamp granularity the record carried.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedUpdate {
    /// The peer that sent the message.
    pub peer_asn: Asn,
    /// The peer's session address.
    pub peer_ip: IpAddr,
    /// True when the record carried only second resolution (plain
    /// `BGP4MP`, not `_ET`) — the trigger for the paper's timestamp
    /// disambiguation rule.
    pub second_granularity: bool,
    /// The update, with `time_us` relative to the stream's epoch.
    pub update: RouteUpdate,
}

/// Streams [`RouteUpdate`]s out of MRT bytes, one record at a time.
///
/// Non-message records (state changes, RIB dumps) are skipped — they are
/// not update traffic. Records earlier than `epoch_seconds` clamp to
/// relative time 0, exactly as [`read_mrt`] does on the batch path.
///
/// [`read_mrt`]: https://docs.rs/kcc_collector
#[derive(Debug)]
pub struct UpdateStream<R: Read> {
    reader: MrtReader<R>,
    epoch_seconds: u32,
    pending: VecDeque<StreamedUpdate>,
}

impl<R: Read> UpdateStream<R> {
    /// Wraps an MRT byte stream; update times become microseconds since
    /// `epoch_seconds`.
    pub fn new(inner: R, epoch_seconds: u32) -> Self {
        UpdateStream { reader: MrtReader::new(inner), epoch_seconds, pending: VecDeque::new() }
    }

    /// Number of MRT records consumed so far.
    pub fn records_read(&self) -> u64 {
        self.reader.records_read()
    }

    /// The next update; `Ok(None)` at clean EOF.
    pub fn next_update(&mut self) -> Result<Option<StreamedUpdate>, MrtError> {
        loop {
            if let Some(u) = self.pending.pop_front() {
                return Ok(Some(u));
            }
            let Some(record) = self.reader.next_record()? else {
                return Ok(None);
            };
            let MrtRecord::Message(m) = record else {
                continue; // state changes / RIB dumps are not update traffic
            };
            let Message::Update(packet) = &m.message else {
                continue;
            };
            let ts = m.timestamp;
            let rel_seconds = ts.seconds.saturating_sub(self.epoch_seconds) as u64;
            let time_us = rel_seconds * 1_000_000 + ts.microseconds.unwrap_or(0) as u64;
            for update in packet.explode(time_us) {
                self.pending.push_back(StreamedUpdate {
                    peer_asn: m.peer_asn,
                    peer_ip: m.peer_ip,
                    second_granularity: ts.is_second_granularity(),
                    update,
                });
            }
        }
    }
}

impl<R: Read> Iterator for UpdateStream<R> {
    type Item = Result<StreamedUpdate, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_update().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MrtTimestamp;
    use crate::writer::MrtWriter;
    use crate::Bgp4mpMessage;
    use kcc_bgp_types::PathAttributes;
    use kcc_bgp_wire::UpdatePacket;

    fn message(seconds: u32, micros: Option<u32>, withdraw: bool) -> MrtRecord {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let prefix = "84.205.64.0/24".parse().unwrap();
        let packet = if withdraw {
            UpdatePacket::withdraw(prefix)
        } else {
            UpdatePacket::announce(prefix, attrs)
        };
        MrtRecord::Message(Bgp4mpMessage {
            timestamp: match micros {
                Some(us) => MrtTimestamp::micros(seconds, us),
                None => MrtTimestamp::seconds(seconds),
            },
            peer_asn: Asn(20_205),
            local_asn: Asn(3333),
            ifindex: 0,
            peer_ip: "192.0.2.9".parse().unwrap(),
            local_ip: "192.0.2.1".parse().unwrap(),
            message: Message::Update(packet),
        })
    }

    #[test]
    fn streams_updates_with_relative_times() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&message(100, Some(250), false)).unwrap();
        w.write_record(&message(101, None, true)).unwrap();
        let bytes = w.into_inner();

        let mut s = UpdateStream::new(&bytes[..], 100);
        let first = s.next_update().unwrap().unwrap();
        assert_eq!(first.update.time_us, 250);
        assert!(!first.second_granularity);
        assert!(first.update.is_announcement());
        let second = s.next_update().unwrap().unwrap();
        assert_eq!(second.update.time_us, 1_000_000);
        assert!(second.second_granularity);
        assert!(s.next_update().unwrap().is_none());
        assert_eq!(s.records_read(), 2);
    }

    #[test]
    fn pre_epoch_records_clamp_to_zero() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&message(50, Some(7), false)).unwrap();
        let bytes = w.into_inner();
        let u = UpdateStream::new(&bytes[..], 100).next_update().unwrap().unwrap();
        assert_eq!(u.update.time_us, 7);
    }

    #[test]
    fn non_message_records_skipped() {
        use crate::{Bgp4mpStateChange, BgpState};
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&MrtRecord::StateChange(Bgp4mpStateChange {
            timestamp: MrtTimestamp::seconds(100),
            peer_asn: Asn(20_205),
            local_asn: Asn(3333),
            ifindex: 0,
            peer_ip: "192.0.2.9".parse().unwrap(),
            local_ip: "192.0.2.1".parse().unwrap(),
            old_state: BgpState::Idle,
            new_state: BgpState::Established,
        }))
        .unwrap();
        w.write_record(&message(100, Some(1), false)).unwrap();
        let bytes = w.into_inner();
        let got: Vec<_> = UpdateStream::new(&bytes[..], 100).map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].update.time_us, 1);
    }

    #[test]
    fn torn_stream_surfaces_error() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&message(100, Some(1), false)).unwrap();
        let bytes = w.into_inner();
        let torn = &bytes[..bytes.len() - 3];
        let results: Vec<_> = UpdateStream::new(torn, 100).collect();
        assert!(results.iter().any(|r| r.is_err()));
    }
}
