//! # kcc-mrt — RFC 6396 MRT routing archive format
//!
//! MRT is the format RouteViews and RIPE RIS use to publish BGP update
//! archives — the raw material of the paper's ten-year measurement study.
//! This crate reads and writes MRT streams so that synthetic archives
//! produced by the simulator and the trace generator are bit-compatible
//! with real collector output and flow through the identical analysis
//! pipeline.
//!
//! ## Implemented
//!
//! * The common MRT header, including the extended-timestamp (`_ET`)
//!   variants with microsecond resolution (RFC 6396 §3).
//! * `BGP4MP` / `BGP4MP_ET`: `MESSAGE`, `MESSAGE_AS4`, `STATE_CHANGE`,
//!   `STATE_CHANGE_AS4` (§4.2–4.4), embedding full RFC 4271 messages via
//!   [`kcc_bgp_wire`].
//! * `TABLE_DUMP_V2`: `PEER_INDEX_TABLE`, `RIB_IPV4_UNICAST`,
//!   `RIB_IPV6_UNICAST` (§4.3) for RIB snapshots.
//! * Streaming [`reader::MrtReader`] / [`writer::MrtWriter`] over any
//!   `io::Read`/`io::Write`.
//!
//! ## Omitted
//!
//! * Legacy `TABLE_DUMP` (v1) and OSPF/ISIS record types — absent from the
//!   studied period's update archives.
//! * `RIB_GENERIC` subtypes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp4mp;
pub mod error;
pub mod reader;
pub mod record;
pub mod stream;
pub mod tabledump;
pub mod writer;

pub use bgp4mp::{Bgp4mpMessage, Bgp4mpStateChange, BgpState};
pub use error::MrtError;
pub use reader::MrtReader;
pub use record::{MrtRecord, MrtTimestamp};
pub use stream::{StreamedMessage, StreamedUpdate, UpdateStream};
pub use tabledump::{PeerEntry, PeerIndexTable, RibEntry, RibSnapshot};
pub use writer::MrtWriter;

/// MRT type code for BGP4MP.
pub const TYPE_BGP4MP: u16 = 16;
/// MRT type code for BGP4MP with extended (microsecond) timestamps.
pub const TYPE_BGP4MP_ET: u16 = 17;
/// MRT type code for TABLE_DUMP_V2.
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
