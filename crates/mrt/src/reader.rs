//! Streaming MRT reader.

use std::io::{ErrorKind, Read};

use bytes::{Buf, Bytes};

use crate::bgp4mp::{self, Bgp4mpMessage, Bgp4mpStateChange};
use crate::error::MrtError;
use crate::record::{MrtRecord, MrtTimestamp};
use crate::tabledump::{self, PeerIndexTable, RibSnapshot};
use crate::{TYPE_BGP4MP, TYPE_BGP4MP_ET, TYPE_TABLE_DUMP_V2};

/// Reads MRT records from any `io::Read`.
///
/// Iterate with [`MrtReader::next_record`] or the `Iterator` impl; both
/// yield `None`/end at a clean EOF (stream ends exactly on a record
/// boundary) and an error on a torn record.
#[derive(Debug)]
pub struct MrtReader<R: Read> {
    inner: R,
    records_read: u64,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        MrtReader { inner, records_read: 0 }
    }

    /// Number of records read so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Reads the next record; `Ok(None)` at clean EOF.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        let mut header = [0u8; 12];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Full => {}
        }
        let mut h = &header[..];
        let seconds = h.get_u32();
        let mrt_type = h.get_u16();
        let subtype = h.get_u16();
        let length = h.get_u32() as usize;

        let mut raw = vec![0u8; length];
        self.inner
            .read_exact(&mut raw)
            .map_err(|_| MrtError::Truncated("record body shorter than header length"))?;
        let mut body = Bytes::from(raw);

        let timestamp = if mrt_type == TYPE_BGP4MP_ET {
            if body.remaining() < 4 {
                return Err(MrtError::Truncated("extended timestamp"));
            }
            MrtTimestamp::micros(seconds, body.get_u32())
        } else {
            MrtTimestamp::seconds(seconds)
        };

        let record = match (mrt_type, subtype) {
            (TYPE_BGP4MP | TYPE_BGP4MP_ET, bgp4mp::subtypes::MESSAGE)
            | (TYPE_BGP4MP | TYPE_BGP4MP_ET, bgp4mp::subtypes::MESSAGE_AS4) => {
                MrtRecord::Message(Bgp4mpMessage::decode_body(timestamp, subtype, body)?)
            }
            (TYPE_BGP4MP | TYPE_BGP4MP_ET, bgp4mp::subtypes::STATE_CHANGE)
            | (TYPE_BGP4MP | TYPE_BGP4MP_ET, bgp4mp::subtypes::STATE_CHANGE_AS4) => {
                MrtRecord::StateChange(Bgp4mpStateChange::decode_body(timestamp, subtype, body)?)
            }
            (TYPE_TABLE_DUMP_V2, tabledump::subtypes::PEER_INDEX_TABLE) => {
                MrtRecord::PeerIndexTable(PeerIndexTable::decode_body(timestamp, body)?)
            }
            (TYPE_TABLE_DUMP_V2, tabledump::subtypes::RIB_IPV4_UNICAST)
            | (TYPE_TABLE_DUMP_V2, tabledump::subtypes::RIB_IPV6_UNICAST) => {
                MrtRecord::RibSnapshot(RibSnapshot::decode_body(timestamp, subtype, body)?)
            }
            _ => return Err(MrtError::UnsupportedType { mrt_type, subtype }),
        };
        self.records_read += 1;
        Ok(Some(record))
    }
}

enum ReadOutcome {
    Full,
    Eof,
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF before any
/// byte from a torn read.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, MrtError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(ReadOutcome::Eof);
                }
                return Err(MrtError::Truncated("header torn at EOF"));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(MrtError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

impl<R: Read> Iterator for MrtReader<R> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::MrtWriter;
    use kcc_bgp_types::{Asn, PathAttributes};
    use kcc_bgp_wire::{Message, UpdatePacket};

    fn sample_records() -> Vec<MrtRecord> {
        let attrs = PathAttributes {
            as_path: "20205 3356 174 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let msg = Bgp4mpMessage {
            timestamp: MrtTimestamp::micros(1_584_230_400, 77),
            peer_asn: Asn(20_205),
            local_asn: Asn(12_345),
            ifindex: 0,
            peer_ip: "192.0.2.99".parse().unwrap(),
            local_ip: "192.0.2.1".parse().unwrap(),
            message: Message::Update(UpdatePacket::announce(
                "84.205.64.0/24".parse().unwrap(),
                attrs,
            )),
        };
        let msg_plain =
            Bgp4mpMessage { timestamp: MrtTimestamp::seconds(1_584_230_401), ..msg.clone() };
        let wd = Bgp4mpMessage {
            timestamp: MrtTimestamp::micros(1_584_230_402, 0),
            message: Message::Update(UpdatePacket::withdraw("84.205.64.0/24".parse().unwrap())),
            ..msg.clone()
        };
        vec![MrtRecord::Message(msg), MrtRecord::Message(msg_plain), MrtRecord::Message(wd)]
    }

    #[test]
    fn write_read_roundtrip() {
        let records = sample_records();
        let mut w = MrtWriter::new(Vec::new());
        w.write_all(&records).unwrap();
        assert_eq!(w.records_written(), 3);
        let raw = w.into_inner();

        let mut r = MrtReader::new(&raw[..]);
        let got: Result<Vec<_>, _> = r.by_ref().collect();
        let got = got.unwrap();
        assert_eq!(got, records);
        assert_eq!(r.records_read(), 3);
    }

    #[test]
    fn et_and_plain_types_coexist() {
        // Microsecond records must come back with micros, plain without.
        let records = sample_records();
        let mut w = MrtWriter::new(Vec::new());
        w.write_all(&records).unwrap();
        let raw = w.into_inner();
        let got: Vec<_> = MrtReader::new(&raw[..]).map(|r| r.unwrap()).collect();
        assert!(got[0].timestamp().microseconds.is_some());
        assert!(got[1].timestamp().microseconds.is_none());
    }

    #[test]
    fn clean_eof_ends_iteration() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_all(&sample_records()).unwrap();
        let raw = w.into_inner();
        let mut reader = MrtReader::new(&raw[..]);
        while let Some(r) = reader.next_record().unwrap() {
            drop(r);
        }
        // Second call after EOF stays None.
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn torn_record_is_error() {
        let mut w = MrtWriter::new(Vec::new());
        w.write_all(&sample_records()).unwrap();
        let raw = w.into_inner();
        let torn = &raw[..raw.len() - 5];
        let mut reader = MrtReader::new(torn);
        let mut saw_error = false;
        for item in reader.by_ref() {
            if item.is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error);
    }

    #[test]
    fn unsupported_type_reported() {
        // Craft a record with MRT type 99.
        let mut raw = Vec::new();
        raw.extend_from_slice(&0u32.to_be_bytes());
        raw.extend_from_slice(&99u16.to_be_bytes());
        raw.extend_from_slice(&0u16.to_be_bytes());
        raw.extend_from_slice(&0u32.to_be_bytes());
        let mut reader = MrtReader::new(&raw[..]);
        assert!(matches!(
            reader.next_record(),
            Err(MrtError::UnsupportedType { mrt_type: 99, .. })
        ));
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut reader = MrtReader::new(&[][..]);
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn table_dump_v2_roundtrip() {
        use crate::tabledump::{PeerEntry, RibEntry};
        let table = MrtRecord::PeerIndexTable(PeerIndexTable {
            timestamp: MrtTimestamp::seconds(100),
            collector_id: "198.51.100.1".parse().unwrap(),
            view_name: String::new(),
            peers: vec![PeerEntry {
                bgp_id: "10.0.0.1".parse().unwrap(),
                addr: "192.0.2.1".parse().unwrap(),
                asn: Asn(20_205),
            }],
        });
        let attrs = PathAttributes {
            as_path: "20205 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let rib = MrtRecord::RibSnapshot(RibSnapshot {
            timestamp: MrtTimestamp::seconds(100),
            sequence: 0,
            prefix: "84.205.64.0/24".parse().unwrap(),
            entries: vec![RibEntry { peer_index: 0, originated_time: 50, attrs }],
        });
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(&table).unwrap();
        w.write_record(&rib).unwrap();
        let raw = w.into_inner();
        let got: Vec<_> = MrtReader::new(&raw[..]).map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![table, rib]);
    }
}
