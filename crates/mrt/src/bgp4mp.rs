//! BGP4MP record bodies (RFC 6396 §4.2–4.4).

use std::net::IpAddr;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use kcc_bgp_types::Asn;
use kcc_bgp_wire::{decode_message, encode_message, Message, SessionConfig};

use crate::error::MrtError;
use crate::record::MrtTimestamp;

/// BGP4MP subtype codes.
pub mod subtypes {
    /// STATE_CHANGE (2-octet ASNs).
    pub const STATE_CHANGE: u16 = 0;
    /// MESSAGE (2-octet ASNs).
    pub const MESSAGE: u16 = 1;
    /// MESSAGE_AS4 (4-octet ASNs).
    pub const MESSAGE_AS4: u16 = 4;
    /// STATE_CHANGE_AS4.
    pub const STATE_CHANGE_AS4: u16 = 5;
}

/// BGP FSM states as used in STATE_CHANGE records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgpState {
    /// Idle (1).
    Idle,
    /// Connect (2).
    Connect,
    /// Active (3).
    Active,
    /// OpenSent (4).
    OpenSent,
    /// OpenConfirm (5).
    OpenConfirm,
    /// Established (6).
    Established,
}

impl BgpState {
    /// Wire value.
    pub const fn code(self) -> u16 {
        match self {
            BgpState::Idle => 1,
            BgpState::Connect => 2,
            BgpState::Active => 3,
            BgpState::OpenSent => 4,
            BgpState::OpenConfirm => 5,
            BgpState::Established => 6,
        }
    }

    /// From wire value.
    pub const fn from_code(c: u16) -> Option<Self> {
        match c {
            1 => Some(BgpState::Idle),
            2 => Some(BgpState::Connect),
            3 => Some(BgpState::Active),
            4 => Some(BgpState::OpenSent),
            5 => Some(BgpState::OpenConfirm),
            6 => Some(BgpState::Established),
            _ => None,
        }
    }
}

/// A BGP4MP MESSAGE(_AS4) record: one BGP message observed on one session.
#[derive(Debug, Clone, PartialEq)]
pub struct Bgp4mpMessage {
    /// Record timestamp.
    pub timestamp: MrtTimestamp,
    /// The peer's ASN.
    pub peer_asn: Asn,
    /// The collector's ASN.
    pub local_asn: Asn,
    /// Interface index (usually 0 in collector output).
    pub ifindex: u16,
    /// The peer's address.
    pub peer_ip: IpAddr,
    /// The collector's address.
    pub local_ip: IpAddr,
    /// The embedded BGP message.
    pub message: Message,
}

/// A BGP4MP STATE_CHANGE(_AS4) record.
#[derive(Debug, Clone, PartialEq)]
pub struct Bgp4mpStateChange {
    /// Record timestamp.
    pub timestamp: MrtTimestamp,
    /// The peer's ASN.
    pub peer_asn: Asn,
    /// The collector's ASN.
    pub local_asn: Asn,
    /// Interface index.
    pub ifindex: u16,
    /// The peer's address.
    pub peer_ip: IpAddr,
    /// The collector's address.
    pub local_ip: IpAddr,
    /// State before the transition.
    pub old_state: BgpState,
    /// State after the transition.
    pub new_state: BgpState,
}

fn put_ip_pair<B: BufMut>(buf: &mut B, peer: IpAddr, local: IpAddr) -> Result<(), MrtError> {
    match (peer, local) {
        (IpAddr::V4(p), IpAddr::V4(l)) => {
            buf.put_u16(1); // AFI IPv4
            buf.put_slice(&p.octets());
            buf.put_slice(&l.octets());
            Ok(())
        }
        (IpAddr::V6(p), IpAddr::V6(l)) => {
            buf.put_u16(2); // AFI IPv6
            buf.put_slice(&p.octets());
            buf.put_slice(&l.octets());
            Ok(())
        }
        _ => Err(MrtError::BadField { what: "mixed-family session addresses", value: 0 }),
    }
}

fn get_ip_pair(body: &mut Bytes) -> Result<(IpAddr, IpAddr), MrtError> {
    if body.remaining() < 2 {
        return Err(MrtError::Truncated("BGP4MP address family"));
    }
    let afi = body.get_u16();
    match afi {
        1 => {
            if body.remaining() < 8 {
                return Err(MrtError::Truncated("BGP4MP IPv4 addresses"));
            }
            let mut p = [0u8; 4];
            let mut l = [0u8; 4];
            body.copy_to_slice(&mut p);
            body.copy_to_slice(&mut l);
            Ok((IpAddr::from(p), IpAddr::from(l)))
        }
        2 => {
            if body.remaining() < 32 {
                return Err(MrtError::Truncated("BGP4MP IPv6 addresses"));
            }
            let mut p = [0u8; 16];
            let mut l = [0u8; 16];
            body.copy_to_slice(&mut p);
            body.copy_to_slice(&mut l);
            Ok((IpAddr::from(p), IpAddr::from(l)))
        }
        other => Err(MrtError::BadField { what: "BGP4MP AFI", value: other as u64 }),
    }
}

impl Bgp4mpMessage {
    /// The subtype this record encodes as. 4-octet ASNs force MESSAGE_AS4.
    pub fn subtype(&self) -> u16 {
        if self.peer_asn.is_16bit() && self.local_asn.is_16bit() {
            subtypes::MESSAGE
        } else {
            subtypes::MESSAGE_AS4
        }
    }

    /// Encodes the record body (everything after the MRT header) with the
    /// auto-selected [`Bgp4mpMessage::subtype`].
    pub fn encode_body(&self, buf: &mut BytesMut) -> Result<(), MrtError> {
        self.encode_body_as(self.subtype(), buf)
    }

    /// Encodes the record body for an explicit subtype — how a collector
    /// writes the legacy 2-octet `MESSAGE` form for a session that never
    /// negotiated 4-octet AS support. On the 2-octet form, ASNs above
    /// 65535 are emitted as `AS_TRANS` (23456) per RFC 6793 §4.2.2 —
    /// **not** truncated with `as u16` (which encoded AS 196608 as AS 0)
    /// — mirroring the AS_PATH/AS4_PATH and AGGREGATOR/AS4_AGGREGATOR
    /// handling in `kcc_bgp_wire`.
    pub fn encode_body_as(&self, subtype: u16, buf: &mut BytesMut) -> Result<(), MrtError> {
        let as4 = subtype == subtypes::MESSAGE_AS4;
        if as4 {
            buf.put_u32(self.peer_asn.value());
            buf.put_u32(self.local_asn.value());
        } else {
            buf.put_u16(self.peer_asn.to_16bit_wire());
            buf.put_u16(self.local_asn.to_16bit_wire());
        }
        buf.put_u16(self.ifindex);
        put_ip_pair(buf, self.peer_ip, self.local_ip)?;
        let cfg = SessionConfig { four_octet_as: as4 };
        encode_message(&self.message, &cfg, buf);
        Ok(())
    }

    /// Decodes a record body.
    pub fn decode_body(
        timestamp: MrtTimestamp,
        subtype: u16,
        mut body: Bytes,
    ) -> Result<Self, MrtError> {
        let as4 = subtype == subtypes::MESSAGE_AS4;
        let need = if as4 { 10 } else { 6 };
        if body.remaining() < need {
            return Err(MrtError::Truncated("BGP4MP message header"));
        }
        let (peer_asn, local_asn) = if as4 {
            (Asn(body.get_u32()), Asn(body.get_u32()))
        } else {
            (Asn(body.get_u16() as u32), Asn(body.get_u16() as u32))
        };
        let ifindex = body.get_u16();
        let (peer_ip, local_ip) = get_ip_pair(&mut body)?;
        let cfg = SessionConfig { four_octet_as: as4 };
        let message = decode_message(&mut body, &cfg)?;
        Ok(Bgp4mpMessage { timestamp, peer_asn, local_asn, ifindex, peer_ip, local_ip, message })
    }
}

impl Bgp4mpStateChange {
    /// The subtype this record encodes as.
    pub fn subtype(&self) -> u16 {
        if self.peer_asn.is_16bit() && self.local_asn.is_16bit() {
            subtypes::STATE_CHANGE
        } else {
            subtypes::STATE_CHANGE_AS4
        }
    }

    /// Encodes the record body with the auto-selected
    /// [`Bgp4mpStateChange::subtype`].
    pub fn encode_body(&self, buf: &mut BytesMut) -> Result<(), MrtError> {
        self.encode_body_as(self.subtype(), buf)
    }

    /// Encodes the record body for an explicit subtype. As with
    /// [`Bgp4mpMessage::encode_body_as`], 4-octet ASNs on the 2-octet
    /// `STATE_CHANGE` form become `AS_TRANS` (RFC 6793 §4.2.2) instead of
    /// being truncated.
    pub fn encode_body_as(&self, subtype: u16, buf: &mut BytesMut) -> Result<(), MrtError> {
        let as4 = subtype == subtypes::STATE_CHANGE_AS4;
        if as4 {
            buf.put_u32(self.peer_asn.value());
            buf.put_u32(self.local_asn.value());
        } else {
            buf.put_u16(self.peer_asn.to_16bit_wire());
            buf.put_u16(self.local_asn.to_16bit_wire());
        }
        buf.put_u16(self.ifindex);
        put_ip_pair(buf, self.peer_ip, self.local_ip)?;
        buf.put_u16(self.old_state.code());
        buf.put_u16(self.new_state.code());
        Ok(())
    }

    /// Decodes a record body.
    pub fn decode_body(
        timestamp: MrtTimestamp,
        subtype: u16,
        mut body: Bytes,
    ) -> Result<Self, MrtError> {
        let as4 = subtype == subtypes::STATE_CHANGE_AS4;
        let need = if as4 { 10 } else { 6 };
        if body.remaining() < need {
            return Err(MrtError::Truncated("BGP4MP state change header"));
        }
        let (peer_asn, local_asn) = if as4 {
            (Asn(body.get_u32()), Asn(body.get_u32()))
        } else {
            (Asn(body.get_u16() as u32), Asn(body.get_u16() as u32))
        };
        let ifindex = body.get_u16();
        let (peer_ip, local_ip) = get_ip_pair(&mut body)?;
        if body.remaining() < 4 {
            return Err(MrtError::Truncated("BGP4MP state codes"));
        }
        let old_raw = body.get_u16();
        let new_raw = body.get_u16();
        let old_state = BgpState::from_code(old_raw)
            .ok_or(MrtError::BadField { what: "old_state", value: old_raw as u64 })?;
        let new_state = BgpState::from_code(new_raw)
            .ok_or(MrtError::BadField { what: "new_state", value: new_raw as u64 })?;
        Ok(Bgp4mpStateChange {
            timestamp,
            peer_asn,
            local_asn,
            ifindex,
            peer_ip,
            local_ip,
            old_state,
            new_state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::PathAttributes;
    use kcc_bgp_wire::UpdatePacket;

    fn sample_message(peer_asn: u32) -> Bgp4mpMessage {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        Bgp4mpMessage {
            timestamp: MrtTimestamp::micros(1_584_230_400, 42),
            peer_asn: Asn(peer_asn),
            local_asn: Asn(12_345),
            ifindex: 0,
            peer_ip: "192.0.2.99".parse().unwrap(),
            local_ip: "192.0.2.1".parse().unwrap(),
            message: Message::Update(UpdatePacket::announce(
                "84.205.64.0/24".parse().unwrap(),
                attrs,
            )),
        }
    }

    #[test]
    fn message_roundtrip_16bit() {
        let m = sample_message(20_205);
        assert_eq!(m.subtype(), subtypes::MESSAGE);
        let mut buf = BytesMut::new();
        m.encode_body(&mut buf).unwrap();
        let d = Bgp4mpMessage::decode_body(m.timestamp, m.subtype(), buf.freeze()).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn message_roundtrip_as4() {
        let m = sample_message(196_615);
        assert_eq!(m.subtype(), subtypes::MESSAGE_AS4);
        let mut buf = BytesMut::new();
        m.encode_body(&mut buf).unwrap();
        let d = Bgp4mpMessage::decode_body(m.timestamp, m.subtype(), buf.freeze()).unwrap();
        assert_eq!(d, m);
    }

    /// Regression: the 2-octet MESSAGE encoder truncated 4-byte ASNs with
    /// `as u16` (AS 196608 → AS 0). Per RFC 6793 §4.2.2 a 4-octet ASN on
    /// the 2-octet form must appear as AS_TRANS (23456) — and the real
    /// path still survives inside the embedded message via AS4_PATH.
    #[test]
    fn two_octet_message_collapses_big_asn_to_as_trans() {
        let m = sample_message(196_608); // 0x30000: `as u16` truncates to 0
        let mut buf = BytesMut::new();
        m.encode_body_as(subtypes::MESSAGE, &mut buf).unwrap();
        let d = Bgp4mpMessage::decode_body(m.timestamp, subtypes::MESSAGE, buf.freeze()).unwrap();
        assert_eq!(
            d.peer_asn,
            kcc_bgp_types::asn::AS_TRANS,
            "4-byte peer ASN must become AS_TRANS"
        );
        assert_ne!(d.peer_asn, Asn(0), "truncation would have produced AS 0");
        assert_eq!(d.local_asn, Asn(12_345), "16-bit ASNs pass through unchanged");
        // The embedded UPDATE was encoded for a 2-octet session: the
        // 4-byte path ASNs ride AS4_PATH and reconstruct on decode.
        assert_eq!(d.message, m.message);
    }

    #[test]
    fn two_octet_state_change_collapses_big_asn_to_as_trans() {
        let s = Bgp4mpStateChange {
            timestamp: MrtTimestamp::seconds(0),
            peer_asn: Asn(196_608),
            local_asn: Asn(3333),
            ifindex: 0,
            peer_ip: "192.0.2.99".parse().unwrap(),
            local_ip: "192.0.2.1".parse().unwrap(),
            old_state: BgpState::Established,
            new_state: BgpState::Idle,
        };
        let mut buf = BytesMut::new();
        s.encode_body_as(subtypes::STATE_CHANGE, &mut buf).unwrap();
        let d = Bgp4mpStateChange::decode_body(s.timestamp, subtypes::STATE_CHANGE, buf.freeze())
            .unwrap();
        assert_eq!(d.peer_asn, kcc_bgp_types::asn::AS_TRANS);
        assert_eq!(d.old_state, BgpState::Established);
    }

    #[test]
    fn v6_session_addresses_roundtrip() {
        let mut m = sample_message(20_205);
        m.peer_ip = "2001:db8::99".parse().unwrap();
        m.local_ip = "2001:db8::1".parse().unwrap();
        let mut buf = BytesMut::new();
        m.encode_body(&mut buf).unwrap();
        let d = Bgp4mpMessage::decode_body(m.timestamp, m.subtype(), buf.freeze()).unwrap();
        assert_eq!(d.peer_ip, m.peer_ip);
    }

    #[test]
    fn mixed_family_rejected() {
        let mut m = sample_message(20_205);
        m.peer_ip = "2001:db8::99".parse().unwrap();
        let mut buf = BytesMut::new();
        assert!(matches!(m.encode_body(&mut buf), Err(MrtError::BadField { .. })));
    }

    #[test]
    fn state_change_roundtrip() {
        let s = Bgp4mpStateChange {
            timestamp: MrtTimestamp::seconds(1_584_230_400),
            peer_asn: Asn(20_205),
            local_asn: Asn(12_345),
            ifindex: 0,
            peer_ip: "192.0.2.99".parse().unwrap(),
            local_ip: "192.0.2.1".parse().unwrap(),
            old_state: BgpState::Established,
            new_state: BgpState::Idle,
        };
        let mut buf = BytesMut::new();
        s.encode_body(&mut buf).unwrap();
        let d = Bgp4mpStateChange::decode_body(s.timestamp, s.subtype(), buf.freeze()).unwrap();
        assert_eq!(d, s);
    }

    #[test]
    fn bad_state_code_rejected() {
        let s = Bgp4mpStateChange {
            timestamp: MrtTimestamp::seconds(0),
            peer_asn: Asn(1),
            local_asn: Asn(2),
            ifindex: 0,
            peer_ip: "10.0.0.1".parse().unwrap(),
            local_ip: "10.0.0.2".parse().unwrap(),
            old_state: BgpState::Established,
            new_state: BgpState::Idle,
        };
        let mut buf = BytesMut::new();
        s.encode_body(&mut buf).unwrap();
        let mut raw = buf.to_vec();
        let n = raw.len();
        raw[n - 1] = 99; // corrupt new_state
        assert!(matches!(
            Bgp4mpStateChange::decode_body(s.timestamp, s.subtype(), Bytes::from(raw)),
            Err(MrtError::BadField { .. })
        ));
    }

    #[test]
    fn state_codes_roundtrip() {
        for c in 1..=6u16 {
            assert_eq!(BgpState::from_code(c).unwrap().code(), c);
        }
        assert_eq!(BgpState::from_code(0), None);
        assert_eq!(BgpState::from_code(7), None);
    }
}
