//! Streaming MRT writer.

use std::io::Write;

use bytes::{BufMut, BytesMut};

use crate::error::MrtError;
use crate::record::MrtRecord;
use crate::tabledump;
use crate::{TYPE_BGP4MP, TYPE_BGP4MP_ET, TYPE_TABLE_DUMP_V2};

/// Writes MRT records to any `io::Write`.
///
/// Records with microsecond timestamps are written as `_ET` types;
/// second-granularity records use the plain types — mirroring the mix of
/// collector configurations the paper's cleaning step has to cope with.
#[derive(Debug)]
pub struct MrtWriter<W: Write> {
    inner: W,
    records_written: u64,
}

impl<W: Write> MrtWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        MrtWriter { inner, records_written: 0 }
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Writes one record.
    pub fn write_record(&mut self, record: &MrtRecord) -> Result<(), MrtError> {
        let ts = record.timestamp();
        let mut body = BytesMut::new();
        let (mrt_type, subtype) = match record {
            MrtRecord::Message(m) => {
                m.encode_body(&mut body)?;
                let t = if ts.microseconds.is_some() { TYPE_BGP4MP_ET } else { TYPE_BGP4MP };
                (t, m.subtype())
            }
            MrtRecord::StateChange(s) => {
                s.encode_body(&mut body)?;
                let t = if ts.microseconds.is_some() { TYPE_BGP4MP_ET } else { TYPE_BGP4MP };
                (t, s.subtype())
            }
            MrtRecord::PeerIndexTable(p) => {
                p.encode_body(&mut body)?;
                (TYPE_TABLE_DUMP_V2, tabledump::subtypes::PEER_INDEX_TABLE)
            }
            MrtRecord::RibSnapshot(r) => {
                r.encode_body(&mut body)?;
                (TYPE_TABLE_DUMP_V2, r.subtype())
            }
        };

        let mut header = BytesMut::with_capacity(16);
        header.put_u32(ts.seconds);
        header.put_u16(mrt_type);
        header.put_u16(subtype);
        match (mrt_type, ts.microseconds) {
            (TYPE_BGP4MP_ET, Some(us)) => {
                // The microsecond field counts toward the record length.
                header.put_u32(body.len() as u32 + 4);
                header.put_u32(us);
            }
            _ => header.put_u32(body.len() as u32),
        }
        self.inner.write_all(&header)?;
        self.inner.write_all(&body)?;
        self.records_written += 1;
        Ok(())
    }

    /// Writes all records from an iterator.
    pub fn write_all<'a, I: IntoIterator<Item = &'a MrtRecord>>(
        &mut self,
        records: I,
    ) -> Result<(), MrtError> {
        for r in records {
            self.write_record(r)?;
        }
        Ok(())
    }

    /// Flushes the inner writer.
    pub fn flush(&mut self) -> Result<(), MrtError> {
        self.inner.flush()?;
        Ok(())
    }
}
