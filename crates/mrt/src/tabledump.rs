//! TABLE_DUMP_V2 record bodies (RFC 6396 §4.3).

use std::net::{IpAddr, Ipv4Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use kcc_bgp_types::{Asn, PathAttributes, Prefix};
use kcc_bgp_wire::attr::{decode_attributes, encode_attributes};
use kcc_bgp_wire::nlri::{decode_prefix, encode_prefix, Afi};
use kcc_bgp_wire::SessionConfig;

use crate::error::MrtError;
use crate::record::MrtTimestamp;

/// TABLE_DUMP_V2 subtype codes.
pub mod subtypes {
    /// PEER_INDEX_TABLE.
    pub const PEER_INDEX_TABLE: u16 = 1;
    /// RIB_IPV4_UNICAST.
    pub const RIB_IPV4_UNICAST: u16 = 2;
    /// RIB_IPV6_UNICAST.
    pub const RIB_IPV6_UNICAST: u16 = 4;
}

/// One peer in the PEER_INDEX_TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// The peer's BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// The peer's address.
    pub addr: IpAddr,
    /// The peer's ASN.
    pub asn: Asn,
}

/// The PEER_INDEX_TABLE: collector identity plus the peer list that RIB
/// entries index into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerIndexTable {
    /// Record timestamp.
    pub timestamp: MrtTimestamp,
    /// Collector BGP identifier.
    pub collector_id: Ipv4Addr,
    /// Optional view name.
    pub view_name: String,
    /// The peers.
    pub peers: Vec<PeerEntry>,
}

/// One peer's route for the snapshot prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct RibEntry {
    /// Index into the PEER_INDEX_TABLE.
    pub peer_index: u16,
    /// When the route was received (seconds).
    pub originated_time: u32,
    /// The route's attributes.
    pub attrs: PathAttributes,
}

/// A RIB_IPVx_UNICAST record: all peers' routes for one prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct RibSnapshot {
    /// Record timestamp.
    pub timestamp: MrtTimestamp,
    /// Sequence number within the dump.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Prefix,
    /// Per-peer entries.
    pub entries: Vec<RibEntry>,
}

impl PeerIndexTable {
    /// Encodes the record body.
    pub fn encode_body(&self, buf: &mut BytesMut) -> Result<(), MrtError> {
        buf.put_slice(&self.collector_id.octets());
        buf.put_u16(self.view_name.len() as u16);
        buf.put_slice(self.view_name.as_bytes());
        buf.put_u16(self.peers.len() as u16);
        for p in &self.peers {
            let v6 = p.addr.is_ipv6();
            let as4 = !p.asn.is_16bit();
            // RFC 6396: bit 0 = address family, bit 1 = AS width. We always
            // write 4-octet ASNs (bit 1 set) for uniformity when needed.
            let peer_type = (v6 as u8) | ((as4 as u8) << 1);
            buf.put_u8(peer_type);
            buf.put_slice(&p.bgp_id.octets());
            match p.addr {
                IpAddr::V4(a) => buf.put_slice(&a.octets()),
                IpAddr::V6(a) => buf.put_slice(&a.octets()),
            }
            if as4 {
                buf.put_u32(p.asn.value());
            } else {
                // Guarded by the `as4` flag above, but spelled as the
                // RFC 6793 collapse rather than a silent truncation.
                buf.put_u16(p.asn.to_16bit_wire());
            }
        }
        Ok(())
    }

    /// Decodes a record body.
    pub fn decode_body(timestamp: MrtTimestamp, mut body: Bytes) -> Result<Self, MrtError> {
        if body.remaining() < 8 {
            return Err(MrtError::Truncated("peer index table header"));
        }
        let mut id = [0u8; 4];
        body.copy_to_slice(&mut id);
        let name_len = body.get_u16() as usize;
        if body.remaining() < name_len + 2 {
            return Err(MrtError::Truncated("peer index table view name"));
        }
        let name_bytes = body.copy_to_bytes(name_len);
        let view_name = String::from_utf8_lossy(&name_bytes).into_owned();
        let count = body.get_u16() as usize;
        let mut peers = Vec::with_capacity(count);
        for _ in 0..count {
            if body.remaining() < 9 {
                return Err(MrtError::Truncated("peer entry"));
            }
            let peer_type = body.get_u8();
            let mut bgp_id = [0u8; 4];
            body.copy_to_slice(&mut bgp_id);
            let addr: IpAddr = if peer_type & 1 != 0 {
                if body.remaining() < 16 {
                    return Err(MrtError::Truncated("peer v6 address"));
                }
                let mut a = [0u8; 16];
                body.copy_to_slice(&mut a);
                IpAddr::from(a)
            } else {
                if body.remaining() < 4 {
                    return Err(MrtError::Truncated("peer v4 address"));
                }
                let mut a = [0u8; 4];
                body.copy_to_slice(&mut a);
                IpAddr::from(a)
            };
            let asn = if peer_type & 2 != 0 {
                if body.remaining() < 4 {
                    return Err(MrtError::Truncated("peer 4-octet ASN"));
                }
                Asn(body.get_u32())
            } else {
                if body.remaining() < 2 {
                    return Err(MrtError::Truncated("peer 2-octet ASN"));
                }
                Asn(body.get_u16() as u32)
            };
            peers.push(PeerEntry { bgp_id: Ipv4Addr::from(bgp_id), addr, asn });
        }
        Ok(PeerIndexTable { timestamp, collector_id: Ipv4Addr::from(id), view_name, peers })
    }
}

impl RibSnapshot {
    /// The subtype this record encodes as, from the prefix family.
    pub fn subtype(&self) -> u16 {
        if self.prefix.is_ipv4() {
            subtypes::RIB_IPV4_UNICAST
        } else {
            subtypes::RIB_IPV6_UNICAST
        }
    }

    /// Encodes the record body. RIB attribute blocks always use 4-octet
    /// ASNs (RFC 6396 §4.3.4).
    pub fn encode_body(&self, buf: &mut BytesMut) -> Result<(), MrtError> {
        buf.put_u32(self.sequence);
        encode_prefix(&self.prefix, buf);
        buf.put_u16(self.entries.len() as u16);
        let cfg = SessionConfig { four_octet_as: true };
        for e in &self.entries {
            buf.put_u16(e.peer_index);
            buf.put_u32(e.originated_time);
            let mut attrs = BytesMut::new();
            let include_next_hop = self.prefix.is_ipv4();
            encode_attributes(&e.attrs, &[], &[], &[], include_next_hop, &cfg, &mut attrs);
            // IPv6 entries carry their next hop in a next-hop-only
            // MP_REACH_NLRI (RFC 6396 §4.3.4); IPv4 next hops (dual-stack
            // simplification) ride as v4-mapped v6 addresses.
            if !include_next_hop {
                let nh6 = match e.attrs.next_hop {
                    std::net::IpAddr::V6(nh) => nh,
                    std::net::IpAddr::V4(nh) => nh.to_ipv6_mapped(),
                };
                kcc_bgp_wire::attr::encode_mp_next_hop_only(nh6, &mut attrs);
            }
            buf.put_u16(attrs.len() as u16);
            buf.put_slice(&attrs);
        }
        Ok(())
    }

    /// Decodes a record body.
    pub fn decode_body(
        timestamp: MrtTimestamp,
        subtype: u16,
        mut body: Bytes,
    ) -> Result<Self, MrtError> {
        if body.remaining() < 4 {
            return Err(MrtError::Truncated("RIB sequence"));
        }
        let sequence = body.get_u32();
        let afi = if subtype == subtypes::RIB_IPV4_UNICAST { Afi::Ipv4 } else { Afi::Ipv6 };
        let prefix = decode_prefix(afi, &mut body)?;
        if body.remaining() < 2 {
            return Err(MrtError::Truncated("RIB entry count"));
        }
        let count = body.get_u16() as usize;
        let cfg = SessionConfig { four_octet_as: true };
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if body.remaining() < 8 {
                return Err(MrtError::Truncated("RIB entry header"));
            }
            let peer_index = body.get_u16();
            let originated_time = body.get_u32();
            let attr_len = body.get_u16() as usize;
            let decoded = decode_attributes(&mut body, attr_len, &cfg)?;
            entries.push(RibEntry { peer_index, originated_time, attrs: decoded.attrs });
        }
        Ok(RibSnapshot { timestamp, sequence, prefix, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer_table() -> PeerIndexTable {
        PeerIndexTable {
            timestamp: MrtTimestamp::seconds(1_584_230_400),
            collector_id: "198.51.100.1".parse().unwrap(),
            view_name: "rrc00-synth".into(),
            peers: vec![
                PeerEntry {
                    bgp_id: "10.0.0.1".parse().unwrap(),
                    addr: "192.0.2.1".parse().unwrap(),
                    asn: Asn(20_205),
                },
                PeerEntry {
                    bgp_id: "10.0.0.2".parse().unwrap(),
                    addr: "2001:db8::2".parse().unwrap(),
                    asn: Asn(196_615),
                },
            ],
        }
    }

    #[test]
    fn peer_index_roundtrip() {
        let t = peer_table();
        let mut buf = BytesMut::new();
        t.encode_body(&mut buf).unwrap();
        let d = PeerIndexTable::decode_body(t.timestamp, buf.freeze()).unwrap();
        assert_eq!(d, t);
    }

    #[test]
    fn rib_snapshot_roundtrip_v4() {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        let r = RibSnapshot {
            timestamp: MrtTimestamp::seconds(1_584_230_400),
            sequence: 7,
            prefix: "84.205.64.0/24".parse().unwrap(),
            entries: vec![RibEntry { peer_index: 0, originated_time: 1_584_000_000, attrs }],
        };
        assert_eq!(r.subtype(), subtypes::RIB_IPV4_UNICAST);
        let mut buf = BytesMut::new();
        r.encode_body(&mut buf).unwrap();
        let d = RibSnapshot::decode_body(r.timestamp, r.subtype(), buf.freeze()).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn rib_snapshot_roundtrip_v6() {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            next_hop: "2001:db8::1".parse().unwrap(),
            ..Default::default()
        };
        let r = RibSnapshot {
            timestamp: MrtTimestamp::seconds(0),
            sequence: 0,
            prefix: "2001:7fb:fe00::/48".parse().unwrap(),
            entries: vec![RibEntry { peer_index: 3, originated_time: 99, attrs }],
        };
        assert_eq!(r.subtype(), subtypes::RIB_IPV6_UNICAST);
        let mut buf = BytesMut::new();
        r.encode_body(&mut buf).unwrap();
        let d = RibSnapshot::decode_body(r.timestamp, r.subtype(), buf.freeze()).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn empty_rib_snapshot() {
        let r = RibSnapshot {
            timestamp: MrtTimestamp::seconds(0),
            sequence: 1,
            prefix: "10.0.0.0/8".parse().unwrap(),
            entries: vec![],
        };
        let mut buf = BytesMut::new();
        r.encode_body(&mut buf).unwrap();
        let d = RibSnapshot::decode_body(r.timestamp, r.subtype(), buf.freeze()).unwrap();
        assert!(d.entries.is_empty());
    }

    #[test]
    fn truncated_peer_table_rejected() {
        let t = peer_table();
        let mut buf = BytesMut::new();
        t.encode_body(&mut buf).unwrap();
        let full = buf.freeze();
        let short = full.slice(0..full.len() - 3);
        assert!(matches!(
            PeerIndexTable::decode_body(t.timestamp, short),
            Err(MrtError::Truncated(_))
        ));
    }
}
