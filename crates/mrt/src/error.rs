//! MRT reader/writer errors.

use std::fmt;
use std::io;

use kcc_bgp_wire::WireError;

/// Errors from reading or writing MRT streams.
#[derive(Debug)]
pub enum MrtError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The embedded BGP message failed to decode.
    Wire(WireError),
    /// An MRT type this crate does not handle.
    UnsupportedType {
        /// MRT type code.
        mrt_type: u16,
        /// MRT subtype code.
        subtype: u16,
    },
    /// Record body shorter than its fields require.
    Truncated(&'static str),
    /// A semantically impossible field value.
    BadField {
        /// Field name.
        what: &'static str,
        /// Offending value widened to u64.
        value: u64,
    },
    /// A record timestamped before the stream's declared epoch. Silently
    /// clamping such records onto the epoch would fabricate same-instant
    /// runs; callers that really want the clamp must opt in
    /// (`UpdateStream::with_pre_epoch_clamp`).
    PreEpochRecord {
        /// The record's timestamp (seconds since the UNIX epoch).
        record_seconds: u32,
        /// The stream's epoch (seconds since the UNIX epoch).
        epoch_seconds: u32,
    },
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
            MrtError::Wire(e) => write!(f, "embedded BGP message error: {e}"),
            MrtError::UnsupportedType { mrt_type, subtype } => {
                write!(f, "unsupported MRT type {mrt_type} subtype {subtype}")
            }
            MrtError::Truncated(what) => write!(f, "truncated MRT record: {what}"),
            MrtError::BadField { what, value } => write!(f, "bad MRT field {what}: {value}"),
            MrtError::PreEpochRecord { record_seconds, epoch_seconds } => write!(
                f,
                "record at {record_seconds}s precedes the stream epoch {epoch_seconds}s \
                 (enable the explicit clamp to accept it)"
            ),
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            MrtError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MrtError {
    fn from(e: io::Error) -> Self {
        MrtError::Io(e)
    }
}

impl From<WireError> for MrtError {
    fn from(e: WireError) -> Self {
        MrtError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MrtError::UnsupportedType { mrt_type: 12, subtype: 3 };
        assert!(e.to_string().contains("12"));
        assert!(MrtError::Truncated("header").to_string().contains("header"));
        assert!(MrtError::BadField { what: "afi", value: 9 }.to_string().contains("afi"));
    }

    #[test]
    fn conversions() {
        let io_err: MrtError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(io_err, MrtError::Io(_)));
        let wire_err: MrtError = WireError::BadMarker.into();
        assert!(matches!(wire_err, MrtError::Wire(_)));
    }
}
