//! The top-level MRT record enum and timestamp handling.

use crate::bgp4mp::{Bgp4mpMessage, Bgp4mpStateChange};
use crate::tabledump::{PeerIndexTable, RibSnapshot};

/// An MRT timestamp: whole seconds plus optional microseconds.
///
/// Plain `BGP4MP` records carry second resolution only; `BGP4MP_ET`
/// records add microseconds. The paper notes that some collectors record
/// at single-second granularity — the cleaning stage's disambiguation rule
/// exists precisely for [`MrtTimestamp`]s without a microsecond part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MrtTimestamp {
    /// Seconds since the UNIX epoch.
    pub seconds: u32,
    /// Microseconds within the second, when the record type carries them.
    pub microseconds: Option<u32>,
}

impl MrtTimestamp {
    /// A second-granularity timestamp.
    pub fn seconds(seconds: u32) -> Self {
        MrtTimestamp { seconds, microseconds: None }
    }

    /// A microsecond-granularity timestamp.
    pub fn micros(seconds: u32, microseconds: u32) -> Self {
        MrtTimestamp { seconds, microseconds: Some(microseconds) }
    }

    /// The timestamp as microseconds since the epoch; second-granularity
    /// stamps map to the start of their second.
    pub fn as_micros(&self) -> u64 {
        self.seconds as u64 * 1_000_000 + self.microseconds.unwrap_or(0) as u64
    }

    /// True if this record only has second resolution.
    pub fn is_second_granularity(&self) -> bool {
        self.microseconds.is_none()
    }
}

/// One decoded MRT record.
///
/// Variant sizes differ widely (a RIB snapshot holds a vector of routes);
/// records are short-lived values streamed one at a time, so boxing would
/// only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MrtRecord {
    /// A BGP4MP(_ET) MESSAGE or MESSAGE_AS4: an embedded BGP message on a
    /// collector session.
    Message(Bgp4mpMessage),
    /// A BGP4MP(_ET) STATE_CHANGE or STATE_CHANGE_AS4.
    StateChange(Bgp4mpStateChange),
    /// A TABLE_DUMP_V2 PEER_INDEX_TABLE.
    PeerIndexTable(PeerIndexTable),
    /// A TABLE_DUMP_V2 RIB_IPVx_UNICAST snapshot for one prefix.
    RibSnapshot(RibSnapshot),
}

impl MrtRecord {
    /// The record's timestamp.
    pub fn timestamp(&self) -> MrtTimestamp {
        match self {
            MrtRecord::Message(m) => m.timestamp,
            MrtRecord::StateChange(s) => s.timestamp,
            MrtRecord::PeerIndexTable(p) => p.timestamp,
            MrtRecord::RibSnapshot(r) => r.timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_conversion() {
        assert_eq!(MrtTimestamp::seconds(10).as_micros(), 10_000_000);
        assert_eq!(MrtTimestamp::micros(10, 250).as_micros(), 10_000_250);
    }

    #[test]
    fn granularity_detection() {
        assert!(MrtTimestamp::seconds(1).is_second_granularity());
        assert!(!MrtTimestamp::micros(1, 0).is_second_granularity());
    }

    #[test]
    fn ordering_by_time() {
        let a = MrtTimestamp::seconds(5);
        let b = MrtTimestamp::micros(5, 1);
        let c = MrtTimestamp::seconds(6);
        assert!(a < b); // None < Some in the tuple ordering
        assert!(b < c);
    }
}
