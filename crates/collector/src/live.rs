//! The live end of the streaming pipeline.
//!
//! A running collector daemon produces [`SourceItem`]s as its peers'
//! UPDATEs arrive; [`LiveSource`] is the channel-backed [`UpdateSource`]
//! that hands them to `kcc_core`'s pipeline. Unlike the offline sources,
//! a live feed has no natural end — [`ShutdownFlag`] is the cooperative
//! stop signal shared between the daemon, the source and the pipeline
//! driver: once triggered, the source drains whatever is already buffered
//! and then reports end-of-stream, so a live run finishes with every
//! received update accounted for.
//!
//! This module is transport-agnostic: anything that can produce
//! `SourceItem`s on a channel (the `kcc_peer` daemon, a test harness, a
//! replay tool) can feed a `LiveSource`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use crate::source::{SourceError, SourceItem, UpdateSource};

/// A shared, clonable stop signal for live/unbounded runs.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, untriggered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown. Idempotent.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once [`ShutdownFlag::trigger`] was called.
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// How long `next_item` blocks before re-checking the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// A channel-backed [`UpdateSource`] over a live feed.
///
/// End-of-stream is reached when either every [`Sender`] was dropped
/// (the daemon shut its ingest down) or the [`ShutdownFlag`] is
/// triggered — in both cases items already buffered are drained first.
#[derive(Debug)]
pub struct LiveSource {
    rx: Receiver<SourceItem>,
    stop: ShutdownFlag,
    items: u64,
}

impl LiveSource {
    /// A source reading from `rx`, with its own shutdown flag.
    pub fn new(rx: Receiver<SourceItem>) -> Self {
        LiveSource { rx, stop: ShutdownFlag::new(), items: 0 }
    }

    /// A source plus the sending half, for in-process feeds.
    pub fn channel() -> (Sender<SourceItem>, Self) {
        let (tx, rx) = std::sync::mpsc::channel();
        (tx, Self::new(rx))
    }

    /// The stop signal; share it with whatever drives the pipeline.
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.stop.clone()
    }

    /// Items yielded so far.
    pub fn items_seen(&self) -> u64 {
        self.items
    }
}

impl UpdateSource for LiveSource {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        loop {
            if self.stop.is_triggered() {
                // Drain, then end — but a momentarily empty channel is
                // not the end: a feeder between its recv and its send
                // must not lose updates it already counted. One full
                // quiet poll interval is the end-of-drain signal.
                return match self.rx.recv_timeout(POLL) {
                    Ok(item) => {
                        self.items += 1;
                        Ok(Some(item))
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                        Ok(None)
                    }
                };
            }
            match self.rx.recv_timeout(POLL) {
                Ok(item) => {
                    self.items += 1;
                    return Ok(Some(item));
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{PeerMeta, SessionKey};
    use kcc_bgp_types::{Asn, RouteUpdate};

    fn session_item() -> SourceItem {
        SourceItem::Session(Arc::new(PeerMeta::normal(SessionKey::new(
            "rrc00",
            Asn(20_205),
            "192.0.2.9".parse().unwrap(),
        ))))
    }

    #[test]
    fn yields_items_then_ends_on_sender_drop() {
        let (tx, mut src) = LiveSource::channel();
        tx.send(session_item()).unwrap();
        drop(tx);
        assert!(matches!(src.next_item().unwrap(), Some(SourceItem::Session(_))));
        assert!(src.next_item().unwrap().is_none());
        assert_eq!(src.items_seen(), 1);
    }

    #[test]
    fn shutdown_drains_buffered_items_first() {
        let (tx, mut src) = LiveSource::channel();
        let meta = Arc::new(PeerMeta::normal(SessionKey::new(
            "rrc00",
            Asn(1),
            "10.0.0.1".parse().unwrap(),
        )));
        tx.send(SourceItem::Session(Arc::clone(&meta))).unwrap();
        tx.send(SourceItem::Update(meta, RouteUpdate::withdraw(5, "10.0.0.0/8".parse().unwrap())))
            .unwrap();
        src.shutdown_flag().trigger();
        // Both buffered items still come out, then None — even though the
        // sender is alive (an unbounded live feed).
        assert!(src.next_item().unwrap().is_some());
        assert!(src.next_item().unwrap().is_some());
        assert!(src.next_item().unwrap().is_none());
        drop(tx);
    }

    #[test]
    fn shutdown_unblocks_an_idle_source() {
        let (tx, mut src) = LiveSource::channel();
        let flag = src.shutdown_flag();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            flag.trigger();
        });
        // No items ever arrive; the poll loop notices the flag.
        assert!(src.next_item().unwrap().is_none());
        t.join().unwrap();
        drop(tx);
    }
}
