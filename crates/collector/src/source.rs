//! Pull-based update sources — the input side of the streaming pipeline.
//!
//! The paper's measurement runs over billions of updates per sampled day;
//! at that scale an analysis cannot hold a materialized
//! [`UpdateArchive`] in memory. [`UpdateSource`] abstracts "a stream of
//! timestamped per-session updates" so the same analysis code runs over
//!
//! * a materialized archive ([`ArchiveSource`] — the back-compat path the
//!   batch wrappers use),
//! * raw MRT bytes, record at a time ([`MrtSource`] — a collector-day of
//!   any size in memory proportional to one record plus per-session
//!   metadata),
//! * simulator captures and generated traces (implemented in their own
//!   crates against this trait).
//!
//! A source yields [`SourceItem`]s: session registrations (metadata, once
//! per session, always before that session's first update) interleaved
//! with updates. Per-session update order is arrival order; sources make
//! no promise about inter-session interleaving — every analysis in
//! `kcc-core` is per-`(session, prefix)`-stream, so interleaving is free
//! to follow whatever order the underlying medium provides.

use std::collections::VecDeque;
use std::fmt;
use std::io::Read;
use std::net::IpAddr;
use std::sync::Arc;

use kcc_bgp_types::{Asn, FastHashMap, RouteUpdate};
use kcc_mrt::{MrtError, UpdateStream};

use crate::archive::{SessionRecord, UpdateArchive};
use crate::session::{PeerMeta, SessionKey};

/// One item pulled from a source.
#[derive(Debug, Clone)]
pub enum SourceItem {
    /// A session became known. Sources emit this exactly once per
    /// session, before the session's first update (sources that know
    /// their sessions up front — archives — announce them all first,
    /// including sessions that carry no updates).
    Session(Arc<PeerMeta>),
    /// One update on a session.
    Update(Arc<PeerMeta>, RouteUpdate),
}

/// Why a source stopped early.
#[derive(Debug)]
pub enum SourceError {
    /// The underlying MRT stream was malformed or unreadable.
    Mrt(MrtError),
    /// Any other source failure.
    Other(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Mrt(e) => write!(f, "MRT source: {e}"),
            SourceError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<MrtError> for SourceError {
    fn from(e: MrtError) -> Self {
        SourceError::Mrt(e)
    }
}

/// A pull-based source of timestamped per-session updates.
pub trait UpdateSource {
    /// The next item; `Ok(None)` when the stream is exhausted.
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError>;
}

impl<S: UpdateSource + ?Sized> UpdateSource for &mut S {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        (**self).next_item()
    }
}

impl<S: UpdateSource + ?Sized> UpdateSource for Box<S> {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        (**self).next_item()
    }
}

/// Streams a materialized [`UpdateArchive`]: all sessions announced
/// first (in key order), then each session's updates in arrival order,
/// session-major. This is the adapter the batch wrappers in `kcc-core`
/// are built on.
#[derive(Debug)]
pub struct ArchiveSource<'a> {
    sessions: Vec<(Arc<PeerMeta>, &'a SessionRecord)>,
    announce_idx: usize,
    session_idx: usize,
    update_idx: usize,
}

impl<'a> ArchiveSource<'a> {
    /// Wraps an archive.
    pub fn new(archive: &'a UpdateArchive) -> Self {
        let sessions =
            archive.sessions().map(|(_, rec)| (Arc::new(rec.meta.clone()), rec)).collect();
        ArchiveSource { sessions, announce_idx: 0, session_idx: 0, update_idx: 0 }
    }
}

impl UpdateSource for ArchiveSource<'_> {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        if self.announce_idx < self.sessions.len() {
            let meta = Arc::clone(&self.sessions[self.announce_idx].0);
            self.announce_idx += 1;
            return Ok(Some(SourceItem::Session(meta)));
        }
        while self.session_idx < self.sessions.len() {
            let (meta, rec) = &self.sessions[self.session_idx];
            if let Some(u) = rec.updates.get(self.update_idx) {
                self.update_idx += 1;
                return Ok(Some(SourceItem::Update(Arc::clone(meta), u.clone())));
            }
            self.session_idx += 1;
            self.update_idx = 0;
        }
        Ok(None)
    }
}

/// Streams MRT bytes record at a time — the constant-memory path onto a
/// RouteViews/RIS download. Sessions are discovered as their first record
/// arrives; state is one [`PeerMeta`] per session, never the day itself.
///
/// MRT cannot express the route-server flag, so peers known to be route
/// servers (from external peer lists, as in the paper's §4) are supplied
/// via [`MrtSource::with_route_servers`].
#[derive(Debug)]
pub struct MrtSource<R: Read> {
    stream: UpdateStream<R>,
    collector: String,
    // Keyed by the raw `(peer ASN, peer IP)` endpoint an MRT record
    // carries — no per-record `SessionKey` (String) construction; the
    // composite key is built once, when the session is first seen.
    sessions: FastHashMap<(Asn, IpAddr), Arc<PeerMeta>>,
    route_servers: Vec<(Asn, IpAddr)>,
    pending: VecDeque<SourceItem>,
}

impl<R: Read> MrtSource<R> {
    /// Wraps an MRT byte stream from the named collector; update times
    /// become microseconds since `epoch_seconds`.
    pub fn new(inner: R, collector: &str, epoch_seconds: u32) -> Self {
        MrtSource {
            stream: UpdateStream::new(inner, epoch_seconds),
            collector: collector.to_owned(),
            sessions: FastHashMap::default(),
            route_servers: Vec::new(),
            pending: VecDeque::new(),
        }
    }

    /// Declares which `(peer ASN, peer IP)` endpoints are IXP route
    /// servers (metadata MRT cannot carry).
    pub fn with_route_servers<I: IntoIterator<Item = (Asn, IpAddr)>>(mut self, peers: I) -> Self {
        self.route_servers = peers.into_iter().collect();
        self
    }

    /// Accept records timestamped before the epoch by clamping them to
    /// relative time 0 instead of failing the stream — the documented
    /// escape hatch for mid-day epochs. Clamped records are counted in
    /// [`MrtSource::pre_epoch_clamped`].
    pub fn with_pre_epoch_clamp(mut self) -> Self {
        self.stream = self.stream.with_pre_epoch_clamp();
        self
    }

    /// Number of records clamped onto the epoch so far (only nonzero
    /// after [`MrtSource::with_pre_epoch_clamp`]).
    pub fn pre_epoch_clamped(&self) -> u64 {
        self.stream.pre_epoch_clamped()
    }

    /// Sessions discovered so far.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }
}

impl<R: Read> UpdateSource for MrtSource<R> {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Ok(Some(item));
            }
            // Record granularity: one session lookup per MRT record, then
            // the whole packet explodes into the pending queue sharing one
            // attribute `Arc` and one `PeerMeta` handle.
            let Some(msg) = self.stream.next_message()? else {
                return Ok(None);
            };
            let announced = if msg.packet.attrs.is_some() { msg.packet.nlri.len() } else { 0 };
            if msg.packet.withdrawn.len() + announced == 0 {
                // An empty UPDATE (end-of-RIB marker) carries no traffic
                // and, like `read_mrt`, must not register a session.
                continue;
            }
            let endpoint = (msg.peer_asn, msg.peer_ip);
            let (meta, new_session) = match self.sessions.get(&endpoint) {
                Some(meta) => (Arc::clone(meta), false),
                None => {
                    // First record of this session: its timestamp
                    // granularity becomes the session's, exactly as
                    // `read_mrt` decides it.
                    let route_server = self.route_servers.contains(&endpoint);
                    let meta = Arc::new(PeerMeta {
                        key: SessionKey::new(&self.collector, msg.peer_asn, msg.peer_ip),
                        route_server,
                        second_granularity: msg.second_granularity,
                    });
                    self.sessions.insert(endpoint, Arc::clone(&meta));
                    (meta, true)
                }
            };
            let mut updates = msg
                .packet
                .into_route_updates(msg.time_us)
                .map(|u| SourceItem::Update(Arc::clone(&meta), u));
            if new_session {
                // The session item must come out before its updates.
                self.pending.push_back(SourceItem::Session(Arc::clone(&meta)));
                self.pending.extend(updates);
                continue;
            }
            // Known session (the common case): hand the first update
            // straight out, queueing only a multi-prefix packet's tail.
            let first = updates.next();
            self.pending.extend(updates);
            if first.is_some() {
                return Ok(first);
            }
        }
    }
}

impl UpdateArchive {
    /// Materializes any source into an archive — the bridge back from
    /// streaming to batch for tooling that needs random access.
    pub fn from_source<S: UpdateSource>(
        source: &mut S,
        epoch_seconds: u32,
    ) -> Result<Self, SourceError> {
        let mut archive = UpdateArchive::new(epoch_seconds);
        while let Some(item) = source.next_item()? {
            match item {
                SourceItem::Session(meta) => archive.add_session((*meta).clone()),
                SourceItem::Update(meta, update) => archive.record(&meta.key, update),
            }
        }
        Ok(archive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::PathAttributes;

    fn key(peer: u32, ip: &str) -> SessionKey {
        SessionKey::new("rrc00", Asn(peer), ip.parse().unwrap())
    }

    fn announce(t: u64, path: &str) -> RouteUpdate {
        let attrs = PathAttributes {
            as_path: path.parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        RouteUpdate::announce(t, "84.205.64.0/24".parse().unwrap(), attrs)
    }

    fn sample_archive() -> UpdateArchive {
        let mut a = UpdateArchive::new(1_584_230_400);
        let k1 = key(20_205, "192.0.2.9");
        let k2 = key(20_811, "192.0.2.10");
        a.record(&k1, announce(1_000_000, "20205 3356 12654"));
        a.record(&k1, RouteUpdate::withdraw(2_000_000, "84.205.64.0/24".parse().unwrap()));
        a.record(&k2, announce(1_500_000, "20811 3356 12654"));
        a
    }

    #[test]
    fn archive_source_roundtrips() {
        let a = sample_archive();
        let mut src = ArchiveSource::new(&a);
        let b = UpdateArchive::from_source(&mut src, a.epoch_seconds).unwrap();
        assert_eq!(b.session_count(), a.session_count());
        let k1 = key(20_205, "192.0.2.9");
        assert_eq!(b.session(&k1).unwrap().updates, a.session(&k1).unwrap().updates);
    }

    #[test]
    fn archive_source_announces_sessions_first() {
        let a = sample_archive();
        let mut src = ArchiveSource::new(&a);
        let mut seen_update = false;
        let mut sessions = 0;
        while let Some(item) = src.next_item().unwrap() {
            match item {
                SourceItem::Session(_) => {
                    assert!(!seen_update, "session announcements must precede updates");
                    sessions += 1;
                }
                SourceItem::Update(..) => seen_update = true,
            }
        }
        assert_eq!(sessions, 2);
    }

    #[test]
    fn archive_source_includes_empty_sessions() {
        let mut a = UpdateArchive::new(0);
        a.add_session(PeerMeta::normal(key(1, "10.0.0.1")));
        let mut src = ArchiveSource::new(&a);
        let item = src.next_item().unwrap().unwrap();
        assert!(matches!(item, SourceItem::Session(_)));
        assert!(src.next_item().unwrap().is_none());
    }

    #[test]
    fn mrt_source_matches_read_mrt() {
        let a = sample_archive();
        let mut bytes = Vec::new();
        a.write_mrt(&mut bytes).unwrap();

        let batch = UpdateArchive::read_mrt(&bytes[..], "rrc00", a.epoch_seconds).unwrap();
        let mut src = MrtSource::new(&bytes[..], "rrc00", a.epoch_seconds);
        let streamed = UpdateArchive::from_source(&mut src, a.epoch_seconds).unwrap();

        assert_eq!(streamed.session_count(), batch.session_count());
        for (k, rec) in batch.sessions() {
            let s = streamed.session(k).expect("session present");
            assert_eq!(s.updates, rec.updates, "session {k} diverged");
            assert_eq!(s.meta, rec.meta);
        }
    }

    #[test]
    fn mrt_source_session_announced_before_first_update() {
        let a = sample_archive();
        let mut bytes = Vec::new();
        a.write_mrt(&mut bytes).unwrap();
        let mut src = MrtSource::new(&bytes[..], "rrc00", a.epoch_seconds);
        let mut known: Vec<SessionKey> = Vec::new();
        while let Some(item) = src.next_item().unwrap() {
            match item {
                SourceItem::Session(meta) => {
                    assert!(!known.contains(&meta.key), "double announcement");
                    known.push(meta.key.clone());
                }
                SourceItem::Update(meta, _) => {
                    assert!(known.contains(&meta.key), "update before session announcement");
                }
            }
        }
        assert_eq!(known.len(), 2);
    }

    #[test]
    fn mrt_source_route_server_override() {
        let a = sample_archive();
        let mut bytes = Vec::new();
        a.write_mrt(&mut bytes).unwrap();
        let rs: IpAddr = "192.0.2.9".parse().unwrap();
        let mut src = MrtSource::new(&bytes[..], "rrc00", a.epoch_seconds)
            .with_route_servers([(Asn(20_205), rs)]);
        let streamed = UpdateArchive::from_source(&mut src, a.epoch_seconds).unwrap();
        assert!(streamed.session(&key(20_205, "192.0.2.9")).unwrap().meta.route_server);
        assert!(!streamed.session(&key(20_811, "192.0.2.10")).unwrap().meta.route_server);
    }

    #[test]
    fn mrt_source_pre_epoch_strict_and_clamped() {
        let a = sample_archive(); // epoch 1_584_230_400, updates at +1s/+1.5s/+2s
        let mut bytes = Vec::new();
        a.write_mrt(&mut bytes).unwrap();

        // An epoch after the first record: strict mode errors…
        let late_epoch = a.epoch_seconds + 2;
        let mut strict = MrtSource::new(&bytes[..], "rrc00", late_epoch);
        let mut err = None;
        loop {
            match strict.next_item() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(SourceError::Mrt(MrtError::PreEpochRecord { .. }))));

        // …the documented clamp accepts and counts.
        let mut clamped = MrtSource::new(&bytes[..], "rrc00", late_epoch).with_pre_epoch_clamp();
        while clamped.next_item().unwrap().is_some() {}
        assert_eq!(clamped.pre_epoch_clamped(), 2, "records at +1s and +1.5s precede +2s");
    }

    #[test]
    fn second_granularity_carried_per_session() {
        let mut a = UpdateArchive::new(100);
        let k = key(20_205, "192.0.2.9");
        a.add_session(PeerMeta { key: k.clone(), route_server: false, second_granularity: true });
        a.record(&k, announce(1_000_000, "20205 12654"));
        let mut bytes = Vec::new();
        a.write_mrt(&mut bytes).unwrap();
        let mut src = MrtSource::new(&bytes[..], "rrc00", 100);
        let streamed = UpdateArchive::from_source(&mut src, 100).unwrap();
        assert!(streamed.session(&k).unwrap().meta.second_granularity);
    }
}
