//! Tailing a directory of rotated MRT dumps as one collector feed.
//!
//! A live collector daemon (`kcc_peer`) publishes its capture as a
//! series of rotated files — `updates.00000.mrt`, `updates.00001.mrt`,
//! … — renaming each into place only once it is complete. A RouteViews
//! mirror looks the same: a directory of per-window dump files for one
//! collector. [`MrtDirSource`] streams such a directory as a single
//! [`UpdateSource`]: every `*.mrt` file in name order, record at a
//! time, under one collector name, with session registrations deduped
//! across file boundaries (each file re-discovers its sessions; the
//! source still announces each session exactly once).
//!
//! In **follow** mode ([`MrtDirSource::follow`]) the source does not
//! end when the directory is drained: it rescans at a poll interval and
//! picks up files that appear later — the always-on companion to a
//! running daemon. A [`ShutdownFlag`] ends the run: once triggered, the
//! source drains everything already on disk and then reports
//! end-of-stream. In-progress files (any non-`.mrt` suffix, e.g. the
//! rotator's `.part` files) are never opened.

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::corpus::MrtFileOptions;
use crate::live::ShutdownFlag;
use crate::session::SessionKey;
use crate::source::{SourceError, SourceItem, UpdateSource};
use crate::MrtSource;

/// Streams every `*.mrt` file of a directory, in name order, as one
/// collector's feed; optionally keeps following the directory for new
/// files. See the [module docs](self) for the full contract.
#[derive(Debug)]
pub struct MrtDirSource {
    dir: PathBuf,
    collector: String,
    epoch_seconds: u32,
    options: MrtFileOptions,
    follow: Option<Duration>,
    stop: ShutdownFlag,
    processed: BTreeSet<PathBuf>,
    queue: VecDeque<PathBuf>,
    current: Option<MrtSource<BufReader<File>>>,
    seen_sessions: HashSet<SessionKey>,
    files_done: u64,
}

impl MrtDirSource {
    /// A one-shot source over `dir` for the named collector: the `*.mrt`
    /// files present when the first item is pulled, then end-of-stream.
    /// Update times become microseconds since `epoch_seconds`.
    pub fn new(dir: impl Into<PathBuf>, collector: &str, epoch_seconds: u32) -> Self {
        MrtDirSource {
            dir: dir.into(),
            collector: collector.to_owned(),
            epoch_seconds,
            options: MrtFileOptions::default(),
            follow: None,
            stop: ShutdownFlag::new(),
            processed: BTreeSet::new(),
            queue: VecDeque::new(),
            current: None,
            seen_sessions: HashSet::new(),
            files_done: 0,
        }
    }

    /// Per-file options applied to every file (pre-epoch clamp,
    /// route-server metadata MRT cannot carry).
    pub fn with_options(mut self, options: MrtFileOptions) -> Self {
        self.options = options;
        self
    }

    /// Keep following the directory: after draining the files on disk,
    /// rescan every `poll` until the [`ShutdownFlag`] is triggered, then
    /// drain what remains and end.
    pub fn follow(mut self, poll: Duration) -> Self {
        self.follow = Some(poll);
        self
    }

    /// The stop signal for follow mode; share it with whatever decides
    /// when the run is over. Without [`MrtDirSource::follow`] the source
    /// ends on its own and the flag is unused.
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.stop.clone()
    }

    /// Files fully streamed so far.
    pub fn files_done(&self) -> u64 {
        self.files_done
    }

    /// Scans the directory and queues every `*.mrt` file not yet
    /// picked up, in name order.
    fn scan(&mut self) -> Result<(), SourceError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| SourceError::Other(format!("read dir {}: {e}", self.dir.display())))?;
        let mut fresh: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "mrt"))
            .filter(|p| !self.processed.contains(p))
            .collect();
        fresh.sort();
        for p in fresh {
            self.processed.insert(p.clone());
            self.queue.push_back(p);
        }
        Ok(())
    }

    fn open(&self, path: &Path) -> Result<MrtSource<BufReader<File>>, SourceError> {
        let file = File::open(path)
            .map_err(|e| SourceError::Other(format!("open {}: {e}", path.display())))?;
        let mut source = MrtSource::new(BufReader::new(file), &self.collector, self.epoch_seconds)
            .with_route_servers(self.options.route_servers.iter().copied());
        if self.options.clamp_pre_epoch {
            source = source.with_pre_epoch_clamp();
        }
        Ok(source)
    }
}

impl UpdateSource for MrtDirSource {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        loop {
            if let Some(src) = &mut self.current {
                match src.next_item()? {
                    Some(SourceItem::Session(meta)) => {
                        // Each file re-announces its sessions; only the
                        // first sighting across the whole run surfaces.
                        if self.seen_sessions.insert(meta.key.clone()) {
                            return Ok(Some(SourceItem::Session(meta)));
                        }
                        continue;
                    }
                    Some(item) => return Ok(Some(item)),
                    None => {
                        self.current = None;
                        self.files_done += 1;
                    }
                }
            }
            if let Some(path) = self.queue.pop_front() {
                self.current = Some(self.open(&path)?);
                continue;
            }
            self.scan()?;
            if !self.queue.is_empty() {
                continue;
            }
            let Some(poll) = self.follow else {
                return Ok(None);
            };
            if self.stop.is_triggered() {
                // Re-scan once after observing the trigger: a file
                // completed just before it may have landed after the
                // scan above. Everything on disk by trigger time drains.
                self.scan()?;
                if self.queue.is_empty() {
                    return Ok(None);
                }
                continue;
            }
            std::thread::sleep(poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::UpdateArchive;
    use crate::session::PeerMeta;
    use kcc_bgp_types::{Asn, PathAttributes, RouteUpdate};

    fn key(peer: u32) -> SessionKey {
        SessionKey::new("lab", Asn(peer), "192.0.2.9".parse().unwrap())
    }

    fn announce(t: u64) -> RouteUpdate {
        let attrs = PathAttributes {
            as_path: "20205 3356 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        RouteUpdate::announce(t, "84.205.64.0/24".parse().unwrap(), attrs)
    }

    fn write_file(dir: &Path, name: &str, times: &[u64]) {
        let mut a = UpdateArchive::new(0);
        for &t in times {
            a.record(&key(20_205), announce(t));
        }
        let mut bytes = Vec::new();
        a.write_mrt(&mut bytes).unwrap();
        std::fs::write(dir.join(name), bytes).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kcc_dir_source_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn streams_files_in_name_order_under_one_collector() {
        let dir = temp_dir("order");
        write_file(&dir, "updates.00001.mrt", &[10, 11]);
        write_file(&dir, "updates.00000.mrt", &[1, 2]);
        write_file(&dir, "updates.00000.mrt.part", &[99]); // in progress: ignored
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let mut src = MrtDirSource::new(&dir, "rrc00", 0);
        let archive = UpdateArchive::from_source(&mut src, 0).unwrap();
        assert_eq!(src.files_done(), 2);
        assert_eq!(archive.session_count(), 1);
        let k = SessionKey::new("rrc00", Asn(20_205), "192.0.2.9".parse().unwrap());
        let times: Vec<u64> =
            archive.session(&k).unwrap().updates.iter().map(|u| u.time_us).collect();
        assert_eq!(times, [1, 2, 10, 11], "name order, .part and non-mrt files skipped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_announced_once_across_files() {
        let dir = temp_dir("dedup");
        write_file(&dir, "a.mrt", &[1]);
        write_file(&dir, "b.mrt", &[2]);
        let mut src = MrtDirSource::new(&dir, "rrc00", 0);
        let mut sessions: Vec<std::sync::Arc<PeerMeta>> = Vec::new();
        let mut updates = 0;
        while let Some(item) = src.next_item().unwrap() {
            match item {
                SourceItem::Session(m) => sessions.push(m),
                SourceItem::Update(..) => updates += 1,
            }
        }
        assert_eq!(sessions.len(), 1, "same session in both files announced once");
        assert_eq!(updates, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follow_mode_picks_up_late_files_and_drains_on_shutdown() {
        let dir = temp_dir("follow");
        write_file(&dir, "updates.00000.mrt", &[1]);
        let mut src = MrtDirSource::new(&dir, "rrc00", 0).follow(Duration::from_millis(5));
        let flag = src.shutdown_flag();
        let writer_dir = dir.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            write_file(&writer_dir, "updates.00001.mrt", &[2, 3]);
            flag.trigger();
        });
        let mut times = Vec::new();
        while let Some(item) = src.next_item().unwrap() {
            if let SourceItem::Update(_, u) = item {
                times.push(u.time_us);
            }
        }
        writer.join().unwrap();
        assert_eq!(times, [1, 2, 3], "late file drained before end-of-stream");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_shot_mode_ends_without_follow() {
        let dir = temp_dir("oneshot");
        let mut src = MrtDirSource::new(&dir, "rrc00", 0);
        assert!(src.next_item().unwrap().is_none(), "empty dir, no follow: immediate end");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
