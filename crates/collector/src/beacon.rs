//! RIPE-style routing beacons.
//!
//! Routing beacons announce and withdraw prefixes on a fixed public
//! timetable; the paper uses them as ground truth to isolate update
//! behavior. RIPE RIS beacons announce every 4 hours starting 00:00 UTC
//! and withdraw every 4 hours starting 02:00 UTC. The paper labels an
//! update as belonging to a phase if it arrives within 15 minutes of the
//! phase start.

use kcc_bgp_types::Prefix;

/// Microseconds per second.
const US_PER_SEC: u64 = 1_000_000;
/// Seconds per hour.
const SEC_PER_HOUR: u64 = 3_600;

/// One scheduled beacon action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeaconEvent {
    /// The beacon prefix is announced.
    Announce,
    /// The beacon prefix is withdrawn.
    Withdraw,
}

/// Which phase an observation falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeaconPhase {
    /// Within the window after the `i`-th announcement of the day (0-based).
    Announcement(u8),
    /// Within the window after the `i`-th withdrawal of the day.
    Withdrawal(u8),
    /// Outside every window.
    Outside,
}

impl BeaconPhase {
    /// True for any announcement phase.
    pub fn is_announcement(self) -> bool {
        matches!(self, BeaconPhase::Announcement(_))
    }

    /// True for any withdrawal phase.
    pub fn is_withdrawal(self) -> bool {
        matches!(self, BeaconPhase::Withdrawal(_))
    }
}

/// The beacon timetable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconSchedule {
    /// Period between announcements (and between withdrawals).
    pub period_us: u64,
    /// Offset of the first announcement from day start.
    pub announce_offset_us: u64,
    /// Offset of the first withdrawal from day start.
    pub withdraw_offset_us: u64,
    /// Phase-membership window length (the paper: 15 minutes).
    pub window_us: u64,
}

impl Default for BeaconSchedule {
    /// The RIPE RIS schedule: 4 h period, announce at 00:00, withdraw at
    /// 02:00, 15-minute windows.
    fn default() -> Self {
        BeaconSchedule {
            period_us: 4 * SEC_PER_HOUR * US_PER_SEC,
            announce_offset_us: 0,
            withdraw_offset_us: 2 * SEC_PER_HOUR * US_PER_SEC,
            window_us: 15 * 60 * US_PER_SEC,
        }
    }
}

impl BeaconSchedule {
    /// Number of announce (== withdraw) phases in a day.
    pub fn phases_per_day(&self) -> u8 {
        (24 * SEC_PER_HOUR * US_PER_SEC / self.period_us) as u8
    }

    /// All events of one day (microseconds from day start), announce and
    /// withdraw interleaved in time order.
    pub fn day_events(&self) -> Vec<(u64, BeaconEvent)> {
        let mut v = Vec::new();
        let phases = self.phases_per_day() as u64;
        for i in 0..phases {
            v.push((self.announce_offset_us + i * self.period_us, BeaconEvent::Announce));
            v.push((self.withdraw_offset_us + i * self.period_us, BeaconEvent::Withdraw));
        }
        v.sort_unstable_by_key(|(t, _)| *t);
        v
    }

    /// Classifies a time-of-day (microseconds from day start) into a
    /// phase, using the schedule's window.
    pub fn phase_of(&self, time_of_day_us: u64) -> BeaconPhase {
        let phases = self.phases_per_day();
        for i in 0..phases {
            let a = self.announce_offset_us + i as u64 * self.period_us;
            if time_of_day_us >= a && time_of_day_us < a + self.window_us {
                return BeaconPhase::Announcement(i);
            }
            let w = self.withdraw_offset_us + i as u64 * self.period_us;
            if time_of_day_us >= w && time_of_day_us < w + self.window_us {
                return BeaconPhase::Withdrawal(i);
            }
        }
        BeaconPhase::Outside
    }
}

/// The 15 RIPE-style beacon prefixes the paper selects (one per
/// collector): `84.205.64.0/24` … `84.205.78.0/24`.
pub fn ripe_beacon_prefixes() -> Vec<Prefix> {
    (0u8..15).map(|i| Prefix::v4_unchecked(84, 205, 64 + i, 0, 24)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_phases_per_day() {
        let s = BeaconSchedule::default();
        assert_eq!(s.phases_per_day(), 6);
        assert_eq!(s.day_events().len(), 12);
    }

    #[test]
    fn events_alternate_announce_withdraw() {
        let events = BeaconSchedule::default().day_events();
        for pair in events.chunks(2) {
            assert_eq!(pair[0].1, BeaconEvent::Announce);
            assert_eq!(pair[1].1, BeaconEvent::Withdraw);
        }
        // First announce at 00:00, first withdraw at 02:00.
        assert_eq!(events[0].0, 0);
        assert_eq!(events[1].0, 2 * 3600 * 1_000_000);
    }

    #[test]
    fn phase_classification() {
        let s = BeaconSchedule::default();
        let hour = 3600 * 1_000_000u64;
        // 02:00–02:15 is the first withdrawal phase (paper's example).
        assert_eq!(s.phase_of(2 * hour), BeaconPhase::Withdrawal(0));
        assert_eq!(s.phase_of(2 * hour + 14 * 60 * 1_000_000), BeaconPhase::Withdrawal(0));
        assert_eq!(s.phase_of(2 * hour + 16 * 60 * 1_000_000), BeaconPhase::Outside);
        assert_eq!(s.phase_of(0), BeaconPhase::Announcement(0));
        assert_eq!(s.phase_of(4 * hour + 1), BeaconPhase::Announcement(1));
        assert_eq!(s.phase_of(22 * hour), BeaconPhase::Withdrawal(5));
        assert_eq!(s.phase_of(3 * hour), BeaconPhase::Outside);
    }

    #[test]
    fn phase_kind_predicates() {
        assert!(BeaconPhase::Announcement(0).is_announcement());
        assert!(BeaconPhase::Withdrawal(3).is_withdrawal());
        assert!(!BeaconPhase::Outside.is_announcement());
        assert!(!BeaconPhase::Outside.is_withdrawal());
    }

    #[test]
    fn fifteen_beacon_prefixes() {
        let v = ripe_beacon_prefixes();
        assert_eq!(v.len(), 15);
        assert_eq!(v[0].to_string(), "84.205.64.0/24");
        assert_eq!(v[14].to_string(), "84.205.78.0/24");
        // All distinct.
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }
}
