//! Multi-collector corpora — the input side of cross-vantage analysis.
//!
//! The paper's measurements are not single-vantage: Tables 1–3 aggregate
//! update streams from many RIPE RIS and RouteViews collectors, with the
//! §4 cleaning rules applied per collector before any cross-collector
//! comparison. A [`Corpus`] is the unit that workload comes in: N
//! *named* [`UpdateSource`]s — MRT files, directories of MRT files,
//! in-memory archives, generated vantages, live feeds — one per
//! collector. `kcc_core::pipeline::run_corpus` pulls each member through
//! its own full pipeline (stages + sinks built per collector) in
//! parallel and merges the results **in name order**, so the outcome is
//! independent of both member insertion order and thread count.

use std::fs::File;
use std::io::BufReader;
use std::net::IpAddr;
use std::path::Path;

use kcc_bgp_types::Asn;

use crate::source::{SourceError, SourceItem, UpdateSource};
use crate::MrtSource;

/// Per-file options for [`Corpus::push_mrt_file_with`].
#[derive(Debug, Clone, Default)]
pub struct MrtFileOptions {
    /// Accept records timestamped before the epoch by clamping them onto
    /// it (counted on the source) instead of failing the stream — see
    /// [`MrtSource::with_pre_epoch_clamp`].
    pub clamp_pre_epoch: bool,
    /// This collector's IXP route-server endpoints — session metadata
    /// MRT cannot carry (see [`MrtSource::with_route_servers`]).
    pub route_servers: Vec<(Asn, IpAddr)>,
}

/// One collector's feed in a corpus: a display/merge name plus any
/// boxed [`UpdateSource`].
pub struct NamedSource<'a> {
    /// The collector name — the merge key. Unique within a corpus.
    pub name: String,
    /// The feed.
    pub source: Box<dyn UpdateSource + Send + 'a>,
}

impl<'a> NamedSource<'a> {
    /// Wraps a source under a name.
    pub fn new<S: UpdateSource + Send + 'a>(name: &str, source: S) -> Self {
        NamedSource { name: name.to_owned(), source: Box::new(source) }
    }
}

impl std::fmt::Debug for NamedSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamedSource").field("name", &self.name).finish_non_exhaustive()
    }
}

impl UpdateSource for NamedSource<'_> {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        self.source.next_item()
    }
}

/// A set of named collector feeds analyzed together. Names must be
/// unique — they key the deterministic merge order.
#[derive(Debug, Default)]
pub struct Corpus<'a> {
    members: Vec<NamedSource<'a>>,
}

impl<'a> Corpus<'a> {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Adds a named source. Fails on a duplicate name: two feeds under
    /// one name would silently interleave into one per-collector result.
    pub fn push<S: UpdateSource + Send + 'a>(
        &mut self,
        name: &str,
        source: S,
    ) -> Result<(), SourceError> {
        if self.members.iter().any(|m| m.name == name) {
            return Err(SourceError::Other(format!("duplicate corpus member name: {name:?}")));
        }
        self.members.push(NamedSource::new(name, source));
        Ok(())
    }

    /// Builder form of [`Corpus::push`].
    pub fn with<S: UpdateSource + Send + 'a>(
        mut self,
        name: &str,
        source: S,
    ) -> Result<Self, SourceError> {
        self.push(name, source)?;
        Ok(self)
    }

    /// Adds one MRT file as a collector named after its file stem
    /// (`rrc00.mrt` → `rrc00`) with default [`MrtFileOptions`]. The file
    /// is streamed record-at-a-time; update times become microseconds
    /// since `epoch_seconds`.
    pub fn push_mrt_file(&mut self, path: &Path, epoch_seconds: u32) -> Result<(), SourceError> {
        self.push_mrt_file_with(path, epoch_seconds, &MrtFileOptions::default())
    }

    /// [`Corpus::push_mrt_file`] with explicit per-file options (pre-epoch
    /// clamp, route-server metadata MRT cannot carry).
    pub fn push_mrt_file_with(
        &mut self,
        path: &Path,
        epoch_seconds: u32,
        options: &MrtFileOptions,
    ) -> Result<(), SourceError> {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| SourceError::Other(format!("unnameable MRT path: {path:?}")))?
            .to_owned();
        let file = File::open(path)
            .map_err(|e| SourceError::Other(format!("open {}: {e}", path.display())))?;
        let mut source = MrtSource::new(BufReader::new(file), &name, epoch_seconds)
            .with_route_servers(options.route_servers.iter().copied());
        if options.clamp_pre_epoch {
            source = source.with_pre_epoch_clamp();
        }
        self.push(&name, source)
    }

    /// Adds every `*.mrt` file of a directory, each as its own collector
    /// (sorted by file name, though member order never affects results).
    pub fn push_mrt_dir(&mut self, dir: &Path, epoch_seconds: u32) -> Result<usize, SourceError> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| SourceError::Other(format!("read dir {}: {e}", dir.display())))?;
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "mrt"))
            .collect();
        paths.sort();
        let added = paths.len();
        for p in &paths {
            self.push_mrt_file(p, epoch_seconds)?;
        }
        Ok(added)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the corpus has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name.as_str()).collect()
    }

    /// Dismantles the corpus into its members (insertion order).
    pub fn into_members(self) -> Vec<NamedSource<'a>> {
        self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::UpdateArchive;
    use crate::session::SessionKey;
    use kcc_bgp_types::{Asn, RouteUpdate};

    fn archive(collector: &str) -> UpdateArchive {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new(collector, Asn(20_205), "192.0.2.9".parse().unwrap());
        a.record(&k, RouteUpdate::withdraw(5, "84.205.64.0/24".parse().unwrap()));
        a
    }

    #[test]
    fn duplicate_names_rejected() {
        let a = archive("rrc00");
        let b = archive("rrc00");
        let mut c = Corpus::new();
        c.push("rrc00", crate::source::ArchiveSource::new(&a)).unwrap();
        let err = c.push("rrc00", crate::source::ArchiveSource::new(&b));
        assert!(err.is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn mrt_dir_expansion() {
        let dir = std::env::temp_dir().join("kcc_corpus_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["rrc00", "rrc01"] {
            let mut bytes = Vec::new();
            archive(name).write_mrt(&mut bytes).unwrap();
            std::fs::write(dir.join(format!("{name}.mrt")), bytes).unwrap();
        }
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let mut c = Corpus::new();
        let added = c.push_mrt_dir(&dir, 0).unwrap();
        assert_eq!(added, 2);
        assert_eq!(c.names(), vec!["rrc00", "rrc01"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
