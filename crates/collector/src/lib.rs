//! # kcc-collector — route collector infrastructure
//!
//! Route collectors (RouteViews, RIPE RIS) are passive BGP speakers that
//! archive every update their peers send. This crate models the pieces of
//! that infrastructure the paper's methodology depends on:
//!
//! * [`session`]: collector/peer session identities — the unit the paper
//!   groups announcements by — including IXP route-server peers that omit
//!   their own ASN,
//! * [`archive`]: per-session update archives with MRT import/export, so
//!   simulated and generated data take the same path a RouteViews download
//!   would,
//! * [`beacon`]: the RIPE routing-beacon schedule (announce every 4 h from
//!   00:00 UTC, withdraw every 4 h from 02:00 UTC) and phase
//!   classification with the paper's ±15-minute windows,
//! * [`timestamps`]: the paper's normalization rule for collectors that
//!   record at single-second granularity (preserve order, space
//!   same-second arrivals 0.01 ms apart),
//! * [`source`]: the [`UpdateSource`] abstraction the streaming analysis
//!   pipeline pulls from — materialized archives and record-at-a-time MRT
//!   byte streams behind one trait,
//! * [`corpus`]: named multi-collector corpora — N [`UpdateSource`]s
//!   (MRT files/dirs, archives, live feeds) grouped under collector
//!   names for the parallel cross-vantage engine in
//!   `kcc_core::pipeline::run_corpus`,
//! * [`live`]: the live end of that abstraction — a channel-backed
//!   [`LiveSource`] fed by a running collector daemon (`kcc_peer`), plus
//!   the [`ShutdownFlag`] that lets unbounded runs finish gracefully,
//! * [`dir_source`]: a directory of rotated MRT dumps streamed as one
//!   collector feed ([`MrtDirSource`]), optionally following the
//!   directory for new files — the bridge between a daemon's on-disk
//!   capture and an always-on analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod beacon;
pub mod corpus;
pub mod dir_source;
pub mod live;
pub mod session;
pub mod source;
pub mod timestamps;

pub use archive::UpdateArchive;
pub use beacon::{BeaconEvent, BeaconPhase, BeaconSchedule};
pub use corpus::{Corpus, MrtFileOptions, NamedSource};
pub use dir_source::MrtDirSource;
pub use live::{LiveSource, ShutdownFlag};
pub use session::{PeerMeta, SessionKey};
pub use source::{ArchiveSource, MrtSource, SourceError, SourceItem, UpdateSource};
pub use timestamps::normalize_timestamps;
