//! Collector/peer session identities.
//!
//! The paper groups announcements "by the prefix and the BGP session of a
//! peer AS / next-hop". [`SessionKey`] is that identity: collector, peer
//! AS, peer address. A peer may hold sessions to several collectors and a
//! collector has hundreds of peers (Table 1: 1,504 sessions over 581
//! peers).

use std::fmt;
use std::net::IpAddr;

use kcc_bgp_types::Asn;

/// Identity of one BGP session at one collector.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionKey {
    /// Collector name, e.g. `rrc00` or `route-views2`.
    pub collector: String,
    /// The peer's AS.
    pub peer_asn: Asn,
    /// The peer's session address (distinguishes parallel sessions).
    pub peer_ip: IpAddr,
}

impl SessionKey {
    /// Convenience constructor.
    pub fn new(collector: &str, peer_asn: Asn, peer_ip: IpAddr) -> Self {
        SessionKey { collector: collector.to_owned(), peer_asn, peer_ip }
    }
}

impl fmt::Display for SessionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:AS{}@{}", self.collector, self.peer_asn, self.peer_ip)
    }
}

/// Metadata about a collector peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerMeta {
    /// The session identity.
    pub key: SessionKey,
    /// True if the peer is an IXP route server that does *not* insert its
    /// own ASN into the AS path — the data-cleaning stage compensates by
    /// prepending it (paper §4).
    pub route_server: bool,
    /// True if this collector records only whole-second timestamps, which
    /// triggers the 0.01 ms disambiguation rule.
    pub second_granularity: bool,
}

impl PeerMeta {
    /// A normal (non-route-server, microsecond-stamped) peer.
    pub fn normal(key: SessionKey) -> Self {
        PeerMeta { key, route_server: false, second_granularity: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SessionKey {
        SessionKey::new("rrc00", Asn(20_205), "192.0.2.9".parse().unwrap())
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(key().to_string(), "rrc00:AS20205@192.0.2.9");
    }

    #[test]
    fn keys_distinguish_parallel_sessions() {
        let a = key();
        let b = SessionKey::new("rrc00", Asn(20_205), "192.0.2.10".parse().unwrap());
        assert_ne!(a, b);
        let c = SessionKey::new("rrc01", Asn(20_205), "192.0.2.9".parse().unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = [
            SessionKey::new("rrc01", Asn(2), "10.0.0.1".parse().unwrap()),
            SessionKey::new("rrc00", Asn(1), "10.0.0.1".parse().unwrap()),
            SessionKey::new("rrc00", Asn(1), "10.0.0.2".parse().unwrap()),
        ];
        v.sort();
        assert_eq!(v[0].collector, "rrc00");
        assert_eq!(v[0].peer_ip.to_string(), "10.0.0.1");
    }

    #[test]
    fn normal_peer_defaults() {
        let m = PeerMeta::normal(key());
        assert!(!m.route_server);
        assert!(!m.second_granularity);
    }
}
