//! Per-session update archives with MRT import/export.
//!
//! An [`UpdateArchive`] is the in-memory form of "one day of updates at
//! one collector": per-session streams of per-prefix updates in arrival
//! order. Archives round-trip through MRT so simulated and generated data
//! flow through exactly the pipeline a RouteViews/RIS download would.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr};

use kcc_bgp_types::{Asn, MessageKind, RouteUpdate};
use kcc_bgp_wire::{Message, UpdatePacket};
use kcc_mrt::{Bgp4mpMessage, MrtError, MrtRecord, MrtTimestamp, MrtWriter};

use crate::session::{PeerMeta, SessionKey};

/// The collector's own ASN used in exported MRT records (value is
/// irrelevant to the analysis; RIPE NCC's AS3333 is used for flavor).
pub const COLLECTOR_ASN: Asn = Asn(3333);

/// One session's stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Peer metadata.
    pub meta: PeerMeta,
    /// Updates in arrival order.
    pub updates: Vec<RouteUpdate>,
}

/// A collector-day of updates, organized per session.
#[derive(Debug, Clone, Default)]
pub struct UpdateArchive {
    /// UNIX epoch (seconds) of archive time zero; update `time_us` fields
    /// are relative to it.
    pub epoch_seconds: u32,
    sessions: BTreeMap<SessionKey, SessionRecord>,
}

impl UpdateArchive {
    /// An empty archive anchored at `epoch_seconds`.
    pub fn new(epoch_seconds: u32) -> Self {
        UpdateArchive { epoch_seconds, sessions: BTreeMap::new() }
    }

    /// Registers a session with metadata (idempotent).
    pub fn add_session(&mut self, meta: PeerMeta) {
        self.sessions
            .entry(meta.key.clone())
            .or_insert_with(|| SessionRecord { meta: meta.clone(), updates: Vec::new() });
    }

    /// Appends an update to a session, creating it with default metadata
    /// if needed.
    pub fn record(&mut self, key: &SessionKey, update: RouteUpdate) {
        self.sessions
            .entry(key.clone())
            .or_insert_with(|| SessionRecord {
                meta: PeerMeta::normal(key.clone()),
                updates: Vec::new(),
            })
            .updates
            .push(update);
    }

    /// All sessions in key order.
    pub fn sessions(&self) -> impl Iterator<Item = (&SessionKey, &SessionRecord)> {
        self.sessions.iter()
    }

    /// Mutable session iteration (cleaning passes).
    pub fn sessions_mut(&mut self) -> impl Iterator<Item = (&SessionKey, &mut SessionRecord)> {
        self.sessions.iter_mut()
    }

    /// One session's record.
    pub fn session(&self, key: &SessionKey) -> Option<&SessionRecord> {
        self.sessions.get(key)
    }

    /// Number of sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of distinct peer ASes.
    pub fn peer_count(&self) -> usize {
        let mut asns: Vec<Asn> = self.sessions.keys().map(|k| k.peer_asn).collect();
        asns.sort_unstable();
        asns.dedup();
        asns.len()
    }

    /// Total updates across sessions.
    pub fn update_count(&self) -> usize {
        self.sessions.values().map(|s| s.updates.len()).sum()
    }

    /// Writes the archive as an MRT stream: all sessions' updates merged
    /// in time order. Sessions flagged `second_granularity` are written as
    /// plain `BGP4MP` (whole seconds); the rest as `BGP4MP_ET`.
    pub fn write_mrt<W: Write>(&self, w: W) -> Result<u64, MrtError> {
        let mut writer = MrtWriter::new(w);
        // Merge by (time, session order) without materializing per-session
        // copies: collect (time, key, index) triples.
        let mut index: Vec<(u64, &SessionKey, usize)> = Vec::with_capacity(self.update_count());
        for (key, rec) in &self.sessions {
            for (i, u) in rec.updates.iter().enumerate() {
                index.push((u.time_us, key, i));
            }
        }
        index.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(b.1)).then(a.2.cmp(&b.2)));
        for (_, key, i) in index {
            let rec = &self.sessions[key];
            writer.write_record(&mrt_record_for(&rec.meta, self.epoch_seconds, &rec.updates[i]))?;
        }
        writer.flush()?;
        Ok(writer.records_written())
    }

    /// Reads an MRT stream back into an archive. `collector` names the
    /// collector the stream came from; `epoch_seconds` anchors relative
    /// time. Implemented over [`kcc_mrt::UpdateStream`], so the batch and
    /// streaming readers cannot diverge: records timestamped before the
    /// epoch surface [`kcc_mrt::MrtError::PreEpochRecord`] here too
    /// instead of silently collapsing onto relative time 0 (callers that
    /// knowingly use a mid-day epoch stream through
    /// `MrtSource::with_pre_epoch_clamp` instead).
    pub fn read_mrt<R: Read>(r: R, collector: &str, epoch_seconds: u32) -> Result<Self, MrtError> {
        let mut archive = UpdateArchive::new(epoch_seconds);
        let mut stream = kcc_mrt::UpdateStream::new(r, epoch_seconds);
        while let Some(streamed) = stream.next_update()? {
            let key = SessionKey::new(collector, streamed.peer_asn, streamed.peer_ip);
            if !archive.sessions.contains_key(&key) {
                archive.add_session(PeerMeta {
                    key: key.clone(),
                    route_server: false,
                    second_granularity: streamed.second_granularity,
                });
            }
            archive.record(&key, streamed.update);
        }
        Ok(archive)
    }

    /// Flattens to `(key, update)` pairs in global time order.
    pub fn all_updates(&self) -> Vec<(SessionKey, RouteUpdate)> {
        let mut v: Vec<(SessionKey, RouteUpdate)> = self
            .sessions
            .iter()
            .flat_map(|(k, rec)| rec.updates.iter().map(move |u| (k.clone(), u.clone())))
            .collect();
        v.sort_by(|a, b| a.1.time_us.cmp(&b.1.time_us).then(a.0.cmp(&b.0)));
        v
    }

    /// Counts announcements (vs. withdrawals).
    pub fn announcement_count(&self) -> usize {
        self.sessions
            .values()
            .flat_map(|s| &s.updates)
            .filter(|u| matches!(u.kind, MessageKind::Announcement(_)))
            .count()
    }

    /// Counts withdrawals.
    pub fn withdrawal_count(&self) -> usize {
        self.update_count() - self.announcement_count()
    }
}

/// Builds the MRT record for one update on one session — the unit the
/// streaming writers emit without materializing an archive. Sessions
/// flagged `second_granularity` become plain `BGP4MP` records (whole
/// seconds); the rest `BGP4MP_ET`.
pub fn mrt_record_for(meta: &PeerMeta, epoch_seconds: u32, update: &RouteUpdate) -> MrtRecord {
    let key = &meta.key;
    let seconds = epoch_seconds + (update.time_us / 1_000_000) as u32;
    let timestamp = if meta.second_granularity {
        MrtTimestamp::seconds(seconds)
    } else {
        MrtTimestamp::micros(seconds, (update.time_us % 1_000_000) as u32)
    };
    let local_ip = collector_ip(&key.collector);
    MrtRecord::Message(Bgp4mpMessage {
        timestamp,
        peer_asn: key.peer_asn,
        local_asn: COLLECTOR_ASN,
        ifindex: 0,
        peer_ip: key.peer_ip,
        local_ip: ip_family_match(local_ip, key.peer_ip),
        message: Message::Update(UpdatePacket::from_route_update(update)),
    })
}

/// A deterministic collector address from its name.
fn collector_ip(name: &str) -> IpAddr {
    let h: u32 = name.bytes().fold(5381u32, |acc, b| acc.wrapping_mul(33).wrapping_add(b as u32));
    IpAddr::V4(Ipv4Addr::new(198, 51, ((h >> 8) & 0xFF) as u8, (h & 0xFF) as u8))
}

/// MRT BGP4MP requires both addresses in one family; coerce the collector
/// side to match the peer.
fn ip_family_match(local: IpAddr, peer: IpAddr) -> IpAddr {
    match (local, peer) {
        (IpAddr::V4(v4), IpAddr::V6(_)) => IpAddr::V6(v4.to_ipv6_mapped()),
        (l, _) => l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::PathAttributes;

    fn key(peer: u32, ip: &str) -> SessionKey {
        SessionKey::new("rrc00", Asn(peer), ip.parse().unwrap())
    }

    fn announce(t: u64, path: &str) -> RouteUpdate {
        let attrs = PathAttributes {
            as_path: path.parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        };
        RouteUpdate::announce(t, "84.205.64.0/24".parse().unwrap(), attrs)
    }

    fn sample_archive() -> UpdateArchive {
        let mut a = UpdateArchive::new(1_584_230_400); // 2020-03-15 00:00 UTC
        let k1 = key(20_205, "192.0.2.9");
        let k2 = key(20_811, "192.0.2.10");
        a.record(&k1, announce(1_000_000, "20205 3356 12654"));
        a.record(&k1, RouteUpdate::withdraw(2_000_000, "84.205.64.0/24".parse().unwrap()));
        a.record(&k2, announce(1_500_000, "20811 3356 12654"));
        a
    }

    #[test]
    fn counts() {
        let a = sample_archive();
        assert_eq!(a.session_count(), 2);
        assert_eq!(a.peer_count(), 2);
        assert_eq!(a.update_count(), 3);
        assert_eq!(a.announcement_count(), 2);
        assert_eq!(a.withdrawal_count(), 1);
    }

    #[test]
    fn all_updates_in_time_order() {
        let a = sample_archive();
        let all = a.all_updates();
        let times: Vec<u64> = all.iter().map(|(_, u)| u.time_us).collect();
        assert_eq!(times, vec![1_000_000, 1_500_000, 2_000_000]);
    }

    #[test]
    fn mrt_roundtrip_preserves_streams() {
        let a = sample_archive();
        let mut buf = Vec::new();
        let written = a.write_mrt(&mut buf).unwrap();
        assert_eq!(written, 3);

        let b = UpdateArchive::read_mrt(&buf[..], "rrc00", a.epoch_seconds).unwrap();
        assert_eq!(b.session_count(), 2);
        assert_eq!(b.update_count(), 3);
        let k1 = key(20_205, "192.0.2.9");
        assert_eq!(b.session(&k1).unwrap().updates, a.session(&k1).unwrap().updates);
    }

    #[test]
    fn second_granularity_sessions_lose_micros() {
        let mut a = UpdateArchive::new(100);
        let k = key(20_205, "192.0.2.9");
        a.add_session(PeerMeta { key: k.clone(), route_server: false, second_granularity: true });
        a.record(&k, announce(1_234_567, "20205 12654"));
        let mut buf = Vec::new();
        a.write_mrt(&mut buf).unwrap();
        let b = UpdateArchive::read_mrt(&buf[..], "rrc00", 100).unwrap();
        let u = &b.session(&k).unwrap().updates[0];
        assert_eq!(u.time_us, 1_000_000, "micros truncated by the collector");
        assert!(b.session(&k).unwrap().meta.second_granularity);
    }

    #[test]
    fn v6_peer_sessions_roundtrip() {
        let mut a = UpdateArchive::new(0);
        let k = SessionKey::new("rrc00", Asn(20_205), "2001:db8::9".parse().unwrap());
        let attrs = PathAttributes {
            as_path: "20205 12654".parse().unwrap(),
            next_hop: "2001:db8::1".parse().unwrap(),
            ..Default::default()
        };
        a.record(&k, RouteUpdate::announce(500, "2001:7fb:fe00::/48".parse().unwrap(), attrs));
        let mut buf = Vec::new();
        a.write_mrt(&mut buf).unwrap();
        let b = UpdateArchive::read_mrt(&buf[..], "rrc00", 0).unwrap();
        assert_eq!(b.session(&k).unwrap().updates.len(), 1);
        assert!(b.session(&k).unwrap().updates[0].prefix.is_ipv6());
    }

    #[test]
    fn empty_archive_roundtrips() {
        let a = UpdateArchive::new(7);
        let mut buf = Vec::new();
        assert_eq!(a.write_mrt(&mut buf).unwrap(), 0);
        let b = UpdateArchive::read_mrt(&buf[..], "rrc00", 7).unwrap();
        assert_eq!(b.update_count(), 0);
    }
}
