//! Timestamp normalization for second-granularity collectors.
//!
//! Paper §4: "some BGP collectors only record messages at the single
//! second granularity. When multiple messages arrive in the same second
//! for these collectors, we preserve the message ordering and assume that
//! each subsequent message arrives 0.01 ms after the last."

use kcc_bgp_types::RouteUpdate;

/// 0.01 ms in microseconds.
pub const DISAMBIGUATION_STEP_US: u64 = 10;

/// Applies the disambiguation rule in place. `updates` must already be in
/// arrival order; every run of equal timestamps is spread by
/// [`DISAMBIGUATION_STEP_US`] while preserving order.
pub fn normalize_timestamps(updates: &mut [RouteUpdate]) {
    let mut i = 0;
    while i < updates.len() {
        let t = updates[i].time_us;
        let mut j = i + 1;
        while j < updates.len() && updates[j].time_us == t {
            updates[j].time_us = t + (j - i) as u64 * DISAMBIGUATION_STEP_US;
            j += 1;
        }
        i = j;
    }
}

/// Truncates all timestamps to whole seconds — what a second-granularity
/// collector does to the data in the first place. Used by the trace
/// generator to emulate such collectors before the pipeline re-normalizes.
pub fn truncate_to_seconds(updates: &mut [RouteUpdate]) {
    for u in updates {
        u.time_us -= u.time_us % 1_000_000;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{PathAttributes, Prefix};

    fn upd(t: u64) -> RouteUpdate {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        RouteUpdate::announce(t, p, PathAttributes::default())
    }

    #[test]
    fn same_second_run_spread_by_10us() {
        let mut v = vec![upd(5_000_000), upd(5_000_000), upd(5_000_000), upd(6_000_000)];
        normalize_timestamps(&mut v);
        let times: Vec<u64> = v.iter().map(|u| u.time_us).collect();
        assert_eq!(times, vec![5_000_000, 5_000_010, 5_000_020, 6_000_000]);
    }

    #[test]
    fn distinct_times_untouched() {
        let mut v = vec![upd(1), upd(2), upd(3)];
        normalize_timestamps(&mut v);
        let times: Vec<u64> = v.iter().map(|u| u.time_us).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn ordering_preserved() {
        let mut v: Vec<RouteUpdate> = (0..100).map(|_| upd(7_000_000)).collect();
        normalize_timestamps(&mut v);
        for w in v.windows(2) {
            assert!(w[0].time_us < w[1].time_us);
        }
    }

    #[test]
    fn empty_and_single_are_fine() {
        let mut none: Vec<RouteUpdate> = Vec::new();
        normalize_timestamps(&mut none);
        let mut one = vec![upd(9)];
        normalize_timestamps(&mut one);
        assert_eq!(one[0].time_us, 9);
    }

    #[test]
    fn truncation_then_normalization_roundtrip() {
        let mut v = vec![upd(5_100_000), upd(5_200_000), upd(5_900_000)];
        truncate_to_seconds(&mut v);
        assert!(v.iter().all(|u| u.time_us == 5_000_000));
        normalize_timestamps(&mut v);
        assert_eq!(
            v.iter().map(|u| u.time_us).collect::<Vec<_>>(),
            vec![5_000_000, 5_000_010, 5_000_020]
        );
    }

    #[test]
    fn multiple_runs_handled_independently() {
        let mut v = vec![upd(1_000_000), upd(1_000_000), upd(2_000_000), upd(2_000_000)];
        normalize_timestamps(&mut v);
        let times: Vec<u64> = v.iter().map(|u| u.time_us).collect();
        assert_eq!(times, vec![1_000_000, 1_000_010, 2_000_000, 2_000_010]);
    }
}
