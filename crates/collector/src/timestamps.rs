//! Timestamp normalization for second-granularity collectors.
//!
//! Paper §4: "some BGP collectors only record messages at the single
//! second granularity. When multiple messages arrive in the same second
//! for these collectors, we preserve the message ordering and assume that
//! each subsequent message arrives 0.01 ms after the last."

use kcc_bgp_types::RouteUpdate;

/// 0.01 ms in microseconds.
pub const DISAMBIGUATION_STEP_US: u64 = 10;

/// Microseconds per second.
const SECOND_US: u64 = 1_000_000;

/// One step of the disambiguation rule: given the previously *emitted*
/// time of a session (`None` before its first update) and the raw arrival
/// time of the next update, returns the time to emit.
///
/// Raw times that advance pass through untouched. A run of repeated (or
/// regressed) raw times is spread forward by [`DISAMBIGUATION_STEP_US`],
/// but the spread is **clamped to the update's own second**: the emitted
/// time never reaches `⌈raw⌉ + 1 s`, so a long run (≥ 100,000 same-second
/// updates at 10 µs would otherwise cross the boundary) can never
/// overtake the next distinct timestamp of a second-granularity stream.
/// Near the boundary the step subdivides down to 1 µs and finally to 0
/// (ties), keeping the output monotonic.
///
/// Both the batch rule ([`normalize_timestamps`]) and the streaming
/// cleaning stage (`kcc_core::clean::CleaningStage`, one `u64` per
/// session) are folds over this single function, so they cannot diverge.
pub fn disambiguated(prev: Option<u64>, raw_us: u64) -> u64 {
    match prev {
        None => raw_us,
        Some(p) if raw_us > p => raw_us,
        Some(p) => {
            // Last representable microsecond of the raw time's second —
            // the next distinct raw value of a second-granularity stream
            // is at least one full second later, so staying at or below
            // this limit guarantees the run never crosses it.
            let limit = (raw_us / SECOND_US) * SECOND_US + (SECOND_US - 1);
            if p >= limit {
                p
            } else {
                (p + DISAMBIGUATION_STEP_US).min(limit)
            }
        }
    }
}

/// Applies the disambiguation rule in place. `updates` must already be in
/// arrival order; every run of equal timestamps is spread by
/// [`DISAMBIGUATION_STEP_US`] while preserving order, clamped so that a
/// run never leaves its own second (see [`disambiguated`]).
pub fn normalize_timestamps(updates: &mut [RouteUpdate]) {
    let mut prev: Option<u64> = None;
    for u in updates {
        u.time_us = disambiguated(prev, u.time_us);
        prev = Some(u.time_us);
    }
}

/// Truncates all timestamps to whole seconds — what a second-granularity
/// collector does to the data in the first place. Used by the trace
/// generator to emulate such collectors before the pipeline re-normalizes.
pub fn truncate_to_seconds(updates: &mut [RouteUpdate]) {
    for u in updates {
        u.time_us -= u.time_us % 1_000_000;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_types::{PathAttributes, Prefix};

    fn upd(t: u64) -> RouteUpdate {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        RouteUpdate::announce(t, p, PathAttributes::default())
    }

    #[test]
    fn same_second_run_spread_by_10us() {
        let mut v = vec![upd(5_000_000), upd(5_000_000), upd(5_000_000), upd(6_000_000)];
        normalize_timestamps(&mut v);
        let times: Vec<u64> = v.iter().map(|u| u.time_us).collect();
        assert_eq!(times, vec![5_000_000, 5_000_010, 5_000_020, 6_000_000]);
    }

    #[test]
    fn distinct_times_untouched() {
        let mut v = vec![upd(1), upd(2), upd(3)];
        normalize_timestamps(&mut v);
        let times: Vec<u64> = v.iter().map(|u| u.time_us).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn ordering_preserved() {
        let mut v: Vec<RouteUpdate> = (0..100).map(|_| upd(7_000_000)).collect();
        normalize_timestamps(&mut v);
        for w in v.windows(2) {
            assert!(w[0].time_us < w[1].time_us);
        }
    }

    #[test]
    fn empty_and_single_are_fine() {
        let mut none: Vec<RouteUpdate> = Vec::new();
        normalize_timestamps(&mut none);
        let mut one = vec![upd(9)];
        normalize_timestamps(&mut one);
        assert_eq!(one[0].time_us, 9);
    }

    #[test]
    fn truncation_then_normalization_roundtrip() {
        let mut v = vec![upd(5_100_000), upd(5_200_000), upd(5_900_000)];
        truncate_to_seconds(&mut v);
        assert!(v.iter().all(|u| u.time_us == 5_000_000));
        normalize_timestamps(&mut v);
        assert_eq!(
            v.iter().map(|u| u.time_us).collect::<Vec<_>>(),
            vec![5_000_000, 5_000_010, 5_000_020]
        );
    }

    /// Regression: a ≥100,000-update same-second run at 10 µs spacing
    /// used to cross the 1 s boundary and overtake the next distinct
    /// second. The spread must stay inside the run's own second.
    #[test]
    fn long_run_never_crosses_next_second() {
        for run_len in [99_999usize, 100_000, 100_001, 250_000] {
            let mut v: Vec<RouteUpdate> = (0..run_len).map(|_| upd(5_000_000)).collect();
            v.push(upd(6_000_000));
            normalize_timestamps(&mut v);
            for w in v.windows(2) {
                assert!(w[0].time_us <= w[1].time_us, "order violated at run_len={run_len}");
            }
            let last_of_run = v[run_len - 1].time_us;
            assert!(
                last_of_run < 6_000_000,
                "run_len={run_len}: run reached the next second ({last_of_run})"
            );
            assert_eq!(v[run_len].time_us, 6_000_000, "the following second must be untouched");
        }
    }

    /// Near the boundary the 10 µs step subdivides (10 → remaining gap →
    /// ties) instead of crossing.
    #[test]
    fn step_subdivides_at_the_boundary() {
        let mut prev = Some(5_999_985u64);
        let mut emitted = Vec::new();
        for _ in 0..4 {
            let e = disambiguated(prev, 5_000_000);
            emitted.push(e);
            prev = Some(e);
        }
        assert_eq!(emitted, vec![5_999_995, 5_999_999, 5_999_999, 5_999_999]);
    }

    #[test]
    fn disambiguated_passes_advancing_times_through() {
        assert_eq!(disambiguated(None, 42), 42);
        assert_eq!(disambiguated(Some(10), 42), 42);
        assert_eq!(disambiguated(Some(42), 42), 52);
    }

    #[test]
    fn multiple_runs_handled_independently() {
        let mut v = vec![upd(1_000_000), upd(1_000_000), upd(2_000_000), upd(2_000_000)];
        normalize_timestamps(&mut v);
        let times: Vec<u64> = v.iter().map(|u| u.time_us).collect();
        assert_eq!(times, vec![1_000_000, 1_000_010, 2_000_000, 2_000_010]);
    }
}
