//! IP prefixes (NLRI).
//!
//! A [`Prefix`] is an address plus a mask length, stored in *canonical* form
//! (host bits zeroed) so that two textual spellings of the same route compare
//! equal. Both IPv4 and IPv6 are supported — the paper's data set is
//! "inclusive of both IPv4 and IPv6 prefixes".

use std::cmp::Ordering;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// An IP prefix in canonical form.
///
/// Canonical means all bits beyond `len` are zero; the constructors enforce
/// this by masking. The derived equality/hash therefore match routing
/// semantics: `10.0.0.1/8` and `10.0.0.0/8` are the same prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prefix {
    /// An IPv4 prefix.
    V4 {
        /// Network address with host bits cleared.
        addr: Ipv4Addr,
        /// Mask length, 0–32.
        len: u8,
    },
    /// An IPv6 prefix.
    V6 {
        /// Network address with host bits cleared.
        addr: Ipv6Addr,
        /// Mask length, 0–128.
        len: u8,
    },
}

/// Error constructing or parsing a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Mask length exceeds the address family's maximum.
    LengthOutOfRange {
        /// The offending length.
        len: u8,
        /// The family maximum (32 or 128).
        max: u8,
    },
    /// The text could not be parsed as `addr/len`.
    Syntax(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange { len, max } => {
                write!(f, "prefix length {len} exceeds maximum {max}")
            }
            PrefixError::Syntax(s) => write!(f, "invalid prefix syntax: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

fn mask_v4(addr: Ipv4Addr, len: u8) -> Ipv4Addr {
    let raw = u32::from(addr);
    let masked = if len == 0 { 0 } else { raw & (u32::MAX << (32 - len as u32)) };
    Ipv4Addr::from(masked)
}

fn mask_v6(addr: Ipv6Addr, len: u8) -> Ipv6Addr {
    let raw = u128::from(addr);
    let masked = if len == 0 { 0 } else { raw & (u128::MAX << (128 - len as u32)) };
    Ipv6Addr::from(masked)
}

impl Prefix {
    /// Creates a canonical IPv4 prefix; host bits are masked off.
    ///
    /// # Errors
    /// Returns [`PrefixError::LengthOutOfRange`] if `len > 32`.
    pub fn v4(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange { len, max: 32 });
        }
        Ok(Prefix::V4 { addr: mask_v4(addr, len), len })
    }

    /// Creates a canonical IPv6 prefix; host bits are masked off.
    ///
    /// # Errors
    /// Returns [`PrefixError::LengthOutOfRange`] if `len > 128`.
    pub fn v6(addr: Ipv6Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 128 {
            return Err(PrefixError::LengthOutOfRange { len, max: 128 });
        }
        Ok(Prefix::V6 { addr: mask_v6(addr, len), len })
    }

    /// Convenience constructor from dotted-quad octets, panicking on a bad
    /// length. Intended for tests and topology builders with literal input.
    pub fn v4_unchecked(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Prefix::v4(Ipv4Addr::new(a, b, c, d), len).expect("literal prefix length")
    }

    /// The mask length.
    #[allow(clippy::len_without_is_empty)] // a mask length, not a container
    pub fn len(&self) -> u8 {
        match self {
            Prefix::V4 { len, .. } | Prefix::V6 { len, .. } => *len,
        }
    }

    /// True if this is the zero-length default route (`0.0.0.0/0` or `::/0`).
    pub fn is_default_route(&self) -> bool {
        self.len() == 0
    }

    /// True for IPv4 prefixes.
    pub fn is_ipv4(&self) -> bool {
        matches!(self, Prefix::V4 { .. })
    }

    /// True for IPv6 prefixes.
    pub fn is_ipv6(&self) -> bool {
        matches!(self, Prefix::V6 { .. })
    }

    /// The network address as a generic [`IpAddr`].
    pub fn addr(&self) -> IpAddr {
        match self {
            Prefix::V4 { addr, .. } => IpAddr::V4(*addr),
            Prefix::V6 { addr, .. } => IpAddr::V6(*addr),
        }
    }

    /// True if `self` contains `other` (same family, `self` no longer,
    /// and `other`'s network falls inside `self`). A prefix contains itself.
    pub fn contains(&self, other: &Prefix) -> bool {
        match (self, other) {
            (Prefix::V4 { len: l1, .. }, Prefix::V4 { addr: a2, len: l2 }) => {
                l1 <= l2 && mask_v4(*a2, *l1) == mask_v4(self.v4_addr(), *l1)
            }
            (Prefix::V6 { len: l1, .. }, Prefix::V6 { addr: a2, len: l2 }) => {
                l1 <= l2 && mask_v6(*a2, *l1) == mask_v6(self.v6_addr(), *l1)
            }
            _ => false,
        }
    }

    /// True if the prefix is *more specific than* the conventional /24 (v4)
    /// or /48 (v6) routing-table cut-off. The paper keeps prefixes with
    /// length *smaller* than /24 and does not aggregate; this predicate lets
    /// the cleaning stage express either choice.
    pub fn is_more_specific_than_conventional(&self) -> bool {
        match self {
            Prefix::V4 { len, .. } => *len > 24,
            Prefix::V6 { len, .. } => *len > 48,
        }
    }

    fn v4_addr(&self) -> Ipv4Addr {
        match self {
            Prefix::V4 { addr, .. } => *addr,
            Prefix::V6 { .. } => unreachable!("v4_addr on v6 prefix"),
        }
    }

    fn v6_addr(&self) -> Ipv6Addr {
        match self {
            Prefix::V6 { addr, .. } => *addr,
            Prefix::V4 { .. } => unreachable!("v6_addr on v4 prefix"),
        }
    }
}

impl Ord for Prefix {
    /// IPv4 sorts before IPv6; within a family, by address then length —
    /// a stable order for reports and RIB dumps.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Prefix::V4 { addr: a, len: l }, Prefix::V4 { addr: b, len: m }) => {
                a.cmp(b).then(l.cmp(m))
            }
            (Prefix::V6 { addr: a, len: l }, Prefix::V6 { addr: b, len: m }) => {
                a.cmp(b).then(l.cmp(m))
            }
            (Prefix::V4 { .. }, Prefix::V6 { .. }) => Ordering::Less,
            (Prefix::V6 { .. }, Prefix::V4 { .. }) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4 { addr, len } => write!(f, "{addr}/{len}"),
            Prefix::V6 { addr, len } => write!(f, "{addr}/{len}"),
        }
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| PrefixError::Syntax(s.into()))?;
        let len: u8 = len.parse().map_err(|_| PrefixError::Syntax(s.into()))?;
        if let Ok(v4) = addr.parse::<Ipv4Addr>() {
            return Prefix::v4(v4, len);
        }
        if let Ok(v6) = addr.parse::<Ipv6Addr>() {
            return Prefix::v6(v6, len);
        }
        Err(PrefixError::Syntax(s.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_host_bits() {
        let a: Prefix = "10.1.2.3/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn parse_roundtrip_v4() {
        // The beacon prefix from the paper's Figures 3-5.
        let p: Prefix = "84.205.64.0/24".parse().unwrap();
        assert_eq!(p.to_string(), "84.205.64.0/24");
        assert_eq!(p.len(), 24);
        assert!(p.is_ipv4());
    }

    #[test]
    fn parse_roundtrip_v6() {
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(p.to_string(), "2001:db8::/32");
        assert!(p.is_ipv6());
        let q: Prefix = "2001:db8:1:2:3::/40".parse().unwrap();
        assert_eq!(q.to_string(), "2001:db8::/40");
    }

    #[test]
    fn invalid_lengths_rejected() {
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
    }

    #[test]
    fn invalid_syntax_rejected() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/abc".parse::<Prefix>().is_err());
        assert!("nonsense/8".parse::<Prefix>().is_err());
        assert!("/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn zero_length_default_route() {
        let p: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(p.is_default_route());
        let p6: Prefix = "::/0".parse().unwrap();
        assert!(p6.is_default_route());
    }

    #[test]
    fn containment() {
        let big: Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Prefix = "10.20.0.0/16".parse().unwrap();
        let other: Prefix = "11.0.0.0/16".parse().unwrap();
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(!big.contains(&other));
        assert!(big.contains(&big));
    }

    #[test]
    fn containment_cross_family_is_false() {
        let v4: Prefix = "0.0.0.0/0".parse().unwrap();
        let v6: Prefix = "::/0".parse().unwrap();
        assert!(!v4.contains(&v6));
        assert!(!v6.contains(&v4));
    }

    #[test]
    fn default_route_contains_everything_in_family() {
        let v4_default: Prefix = "0.0.0.0/0".parse().unwrap();
        let p: Prefix = "84.205.64.0/24".parse().unwrap();
        assert!(v4_default.contains(&p));
    }

    #[test]
    fn conventional_cutoff() {
        assert!(!"84.205.64.0/24".parse::<Prefix>().unwrap().is_more_specific_than_conventional());
        assert!("84.205.64.0/25".parse::<Prefix>().unwrap().is_more_specific_than_conventional());
        assert!(!"2001:db8::/48".parse::<Prefix>().unwrap().is_more_specific_than_conventional());
        assert!("2001:db8::/49".parse::<Prefix>().unwrap().is_more_specific_than_conventional());
    }

    #[test]
    fn ordering_v4_before_v6() {
        let v4: Prefix = "255.255.255.255/32".parse().unwrap();
        let v6: Prefix = "::/0".parse().unwrap();
        assert!(v4 < v6);
    }

    #[test]
    fn ordering_within_family() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/16".parse().unwrap();
        let c: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
