//! The route-update model used throughout the pipeline.
//!
//! A [`RouteUpdate`] is one *logical* BGP event for one prefix as observed
//! on one BGP session: an announcement carrying attributes, or a
//! withdrawal. Wire-level UPDATE messages can pack many prefixes; the
//! analysis (like the paper's) operates per prefix, so collectors and
//! parsers explode messages into per-prefix updates while preserving
//! arrival order.

use std::fmt;
use std::sync::Arc;

use crate::attrs::PathAttributes;
use crate::prefix::Prefix;

/// Announcement or withdrawal.
///
/// Announcement attributes are shared behind an [`Arc`]: a wire UPDATE
/// packs many prefixes onto one attribute set, and the classifier retains
/// one set per `(prefix, session)` stream — hash-consing those into
/// pointer copies is what keeps the hot path allocation-free.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A reachability announcement with (shared) path attributes.
    Announcement(Arc<PathAttributes>),
    /// An explicit withdrawal.
    Withdrawal,
}

impl MessageKind {
    /// True for announcements.
    pub fn is_announcement(&self) -> bool {
        matches!(self, MessageKind::Announcement(_))
    }

    /// The attributes, if this is an announcement.
    pub fn attributes(&self) -> Option<&PathAttributes> {
        match self {
            MessageKind::Announcement(a) => Some(a),
            MessageKind::Withdrawal => None,
        }
    }

    /// The shared attribute handle, if this is an announcement — a
    /// pointer copy away from retaining or forwarding the attributes.
    pub fn attributes_shared(&self) -> Option<&Arc<PathAttributes>> {
        match self {
            MessageKind::Announcement(a) => Some(a),
            MessageKind::Withdrawal => None,
        }
    }
}

/// One per-prefix update as recorded at a collector.
///
/// `time_us` is microseconds since the epoch of the observation window
/// (simulated or generated). Collectors that only record second granularity
/// are normalized by the cleaning stage, which preserves ordering and
/// spaces same-second arrivals 0.01 ms apart, exactly as the paper does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteUpdate {
    /// Microsecond timestamp.
    pub time_us: u64,
    /// The affected prefix.
    pub prefix: Prefix,
    /// Announcement (with attributes) or withdrawal.
    pub kind: MessageKind,
}

impl RouteUpdate {
    /// Creates an announcement update. Accepts owned attributes (wrapped
    /// on the spot) or an existing `Arc` handle (a pointer copy).
    pub fn announce(time_us: u64, prefix: Prefix, attrs: impl Into<Arc<PathAttributes>>) -> Self {
        RouteUpdate { time_us, prefix, kind: MessageKind::Announcement(attrs.into()) }
    }

    /// Creates a withdrawal update.
    pub fn withdraw(time_us: u64, prefix: Prefix) -> Self {
        RouteUpdate { time_us, prefix, kind: MessageKind::Withdrawal }
    }

    /// True for announcements.
    pub fn is_announcement(&self) -> bool {
        self.kind.is_announcement()
    }

    /// True for withdrawals.
    pub fn is_withdrawal(&self) -> bool {
        !self.is_announcement()
    }

    /// The attributes, if this is an announcement.
    pub fn attributes(&self) -> Option<&PathAttributes> {
        self.kind.attributes()
    }

    /// The shared attribute handle, if this is an announcement.
    pub fn attributes_shared(&self) -> Option<&Arc<PathAttributes>> {
        self.kind.attributes_shared()
    }
}

impl fmt::Display for RouteUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            MessageKind::Announcement(a) => write!(
                f,
                "{:>12}us A {} path [{}] comms [{}]",
                self.time_us, self.prefix, a.as_path, a.communities
            ),
            MessageKind::Withdrawal => {
                write!(f, "{:>12}us W {}", self.time_us, self.prefix)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Prefix {
        "84.205.64.0/24".parse().unwrap()
    }

    #[test]
    fn announce_and_withdraw_constructors() {
        let a = RouteUpdate::announce(10, p(), PathAttributes::default());
        assert!(a.is_announcement());
        assert!(!a.is_withdrawal());
        assert!(a.attributes().is_some());

        let w = RouteUpdate::withdraw(20, p());
        assert!(w.is_withdrawal());
        assert!(w.attributes().is_none());
    }

    #[test]
    fn display_shows_kind() {
        let a = RouteUpdate::announce(10, p(), PathAttributes::default());
        assert!(a.to_string().contains(" A "));
        let w = RouteUpdate::withdraw(20, p());
        assert!(w.to_string().contains(" W "));
    }
}
