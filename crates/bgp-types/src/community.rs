//! Classic BGP communities (RFC 1997).
//!
//! A classic community is a 32-bit value conventionally written
//! `asn:value`, where the high 16 bits identify the AS that defined the
//! semantics and the low 16 bits carry the AS-specific meaning. Because
//! each AS defines its own semantics, routers that do not recognize a
//! community are expected to propagate it unchanged — the transitivity at
//! the heart of the paper's findings.

use std::fmt;
use std::str::FromStr;

/// A classic 32-bit BGP community (RFC 1997).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Community(pub u32);

/// Well-known communities from the IANA registry, relevant to the paper.
pub mod well_known {
    use super::Community;

    /// `GRACEFUL_SHUTDOWN` (RFC 8326).
    pub const GRACEFUL_SHUTDOWN: Community = Community(0xFFFF_0000);
    /// `ACCEPT_OWN` (RFC 7611).
    pub const ACCEPT_OWN: Community = Community(0xFFFF_0001);
    /// `BLACKHOLE` (RFC 7999) — the DDoS-mitigation action community.
    pub const BLACKHOLE: Community = Community(0xFFFF_029A);
    /// `NO_EXPORT` (RFC 1997).
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// `NO_ADVERTISE` (RFC 1997).
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// `NO_EXPORT_SUBCONFED` / `LOCAL-AS` (RFC 1997).
    pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);
    /// `NOPEER` (RFC 3765).
    pub const NOPEER: Community = Community(0xFFFF_FF04);
}

impl Community {
    /// Builds a community from its conventional `asn:value` halves.
    pub const fn from_parts(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits: the AS that defined this community's semantics.
    pub const fn asn_part(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits: the AS-specific value.
    pub const fn value_part(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// True if the community lies in the reserved well-known range
    /// `0xFFFF0000–0xFFFFFFFF` (high half == 65535).
    pub const fn is_well_known(self) -> bool {
        self.asn_part() == 0xFFFF
    }

    /// True if the community lies in the reserved range with high half 0
    /// (`0x00000000–0x0000FFFF`), also not usable by real ASes.
    pub const fn is_reserved_low(self) -> bool {
        self.asn_part() == 0
    }

    /// The IANA name for registered well-known values, if any.
    pub fn well_known_name(self) -> Option<&'static str> {
        use well_known::*;
        Some(match self {
            GRACEFUL_SHUTDOWN => "GRACEFUL_SHUTDOWN",
            ACCEPT_OWN => "ACCEPT_OWN",
            BLACKHOLE => "BLACKHOLE",
            NO_EXPORT => "NO_EXPORT",
            NO_ADVERTISE => "NO_ADVERTISE",
            NO_EXPORT_SUBCONFED => "NO_EXPORT_SUBCONFED",
            NOPEER => "NOPEER",
            _ => return None,
        })
    }
}

impl From<u32> for Community {
    fn from(v: u32) -> Self {
        Community(v)
    }
}

impl fmt::Display for Community {
    /// Canonical `asn:value` notation, e.g. `3356:2065`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

/// Error parsing a community from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommunityError(String);

impl fmt::Display for ParseCommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid community: {:?}", self.0)
    }
}

impl std::error::Error for ParseCommunityError {}

impl FromStr for Community {
    type Err = ParseCommunityError;

    /// Accepts `asn:value` (e.g. `"3356:2065"`) or a bare 32-bit decimal.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((a, v)) = s.split_once(':') {
            let a: u16 = a.parse().map_err(|_| ParseCommunityError(s.into()))?;
            let v: u16 = v.parse().map_err(|_| ParseCommunityError(s.into()))?;
            Ok(Community::from_parts(a, v))
        } else {
            s.parse::<u32>().map(Community).map_err(|_| ParseCommunityError(s.into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_roundtrip() {
        let c = Community::from_parts(3356, 2065);
        assert_eq!(c.asn_part(), 3356);
        assert_eq!(c.value_part(), 2065);
        assert_eq!(c.0, (3356u32 << 16) | 2065);
    }

    #[test]
    fn display_is_colon_notation() {
        assert_eq!(Community::from_parts(65000, 300).to_string(), "65000:300");
        assert_eq!(Community(0xFFFF_FF01).to_string(), "65535:65281");
    }

    #[test]
    fn parse_colon_notation() {
        assert_eq!("3356:2065".parse::<Community>().unwrap(), Community::from_parts(3356, 2065));
        assert_eq!("0:0".parse::<Community>().unwrap(), Community(0));
    }

    #[test]
    fn parse_bare_decimal() {
        assert_eq!("4294901762".parse::<Community>().unwrap(), Community(0xFFFF_0002));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("3356".parse::<Community>().is_ok()); // bare decimal
        assert!("3356:".parse::<Community>().is_err());
        assert!(":10".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
        assert!("1:70000".parse::<Community>().is_err());
        assert!("a:b".parse::<Community>().is_err());
    }

    #[test]
    fn well_known_detection() {
        assert!(well_known::NO_EXPORT.is_well_known());
        assert!(well_known::BLACKHOLE.is_well_known());
        assert!(!Community::from_parts(3356, 2065).is_well_known());
        assert_eq!(well_known::BLACKHOLE.well_known_name(), Some("BLACKHOLE"));
        assert_eq!(Community::from_parts(3356, 1).well_known_name(), None);
    }

    #[test]
    fn blackhole_is_65535_666() {
        assert_eq!(well_known::BLACKHOLE, Community::from_parts(65535, 666));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Community::from_parts(1, 5) < Community::from_parts(2, 0));
        assert!(Community::from_parts(2, 0) < Community::from_parts(2, 1));
    }
}
