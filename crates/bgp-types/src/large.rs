//! Large BGP communities (RFC 8092).
//!
//! Large communities are three 32-bit words — `global:data1:data2` — created
//! so that 4-octet ASNs can define community semantics (the classic 16-bit
//! `asn:value` form cannot express an AS above 65535). RFC 8195 documents
//! the informational/action usage conventions the paper's taxonomy follows.

use std::fmt;
use std::str::FromStr;

/// A large BGP community `global:data1:data2` (RFC 8092).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LargeCommunity {
    /// Global administrator — the ASN defining the semantics.
    pub global: u32,
    /// First data word (often a function selector, RFC 8195 §4).
    pub data1: u32,
    /// Second data word (often a parameter such as a location id).
    pub data2: u32,
}

impl LargeCommunity {
    /// Creates a large community from its three words.
    pub const fn new(global: u32, data1: u32, data2: u32) -> Self {
        LargeCommunity { global, data1, data2 }
    }
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global, self.data1, self.data2)
    }
}

/// Error parsing a large community from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLargeCommunityError(String);

impl fmt::Display for ParseLargeCommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid large community: {:?}", self.0)
    }
}

impl std::error::Error for ParseLargeCommunityError {}

impl FromStr for LargeCommunity {
    type Err = ParseLargeCommunityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split(':');
        let err = || ParseLargeCommunityError(s.to_owned());
        let global = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let data1 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let data2 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if it.next().is_some() {
            return Err(err());
        }
        Ok(LargeCommunity { global, data1, data2 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let lc = LargeCommunity::new(206_924, 1, 44);
        assert_eq!(lc.to_string(), "206924:1:44");
        assert_eq!("206924:1:44".parse::<LargeCommunity>().unwrap(), lc);
    }

    #[test]
    fn four_octet_global_admin() {
        // The whole point of RFC 8092: ASNs > 65535 as global administrator.
        let lc: LargeCommunity = "4200000001:0:0".parse().unwrap();
        assert_eq!(lc.global, 4_200_000_001);
    }

    #[test]
    fn parse_rejects_bad_shapes() {
        assert!("1:2".parse::<LargeCommunity>().is_err());
        assert!("1:2:3:4".parse::<LargeCommunity>().is_err());
        assert!("a:2:3".parse::<LargeCommunity>().is_err());
        assert!("1:2:4294967296".parse::<LargeCommunity>().is_err());
        assert!("".parse::<LargeCommunity>().is_err());
    }

    #[test]
    fn ordering_lexicographic_by_words() {
        let a = LargeCommunity::new(1, 0, 9);
        let b = LargeCommunity::new(1, 1, 0);
        let c = LargeCommunity::new(2, 0, 0);
        assert!(a < b && b < c);
    }
}
