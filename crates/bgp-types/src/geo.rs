//! Geolocation community encoding.
//!
//! The paper identifies *informational geolocation communities* — tags that
//! large transit ASes attach on ingress to encode **where** a route entered
//! the network ("North America, Dallas, TX") — as the primary source of
//! community exploration. Real ASes each use private encodings (e.g.
//! Level 3 / AS3356 uses 3356:2000-series values); this module defines one
//! concrete, documented scheme that the simulator's taggers and the
//! analysis decoder share, mirroring the three scopes the paper observes:
//! geographical region (continent), country, and city.
//!
//! Layout of the 16-bit community value:
//!
//! | range           | meaning                        |
//! |-----------------|--------------------------------|
//! | 2001–2007       | continent (1–7)                |
//! | 2100–2499       | country id (0–399)             |
//! | 2500–5999       | city id (0–3499)               |
//!
//! The high 16 bits are the tagging AS's number, so a decoded tag also
//! names *who* tagged — which the analysis uses to attribute exploration
//! to a neighbor (the paper's AS3356 example).

use std::fmt;

use crate::community::Community;
use crate::community_set::CommunitySet;

/// Base value for continent codes.
pub const CONTINENT_BASE: u16 = 2000;
/// Number of continent codes (1–7: AF, AN, AS, EU, NA, OC, SA).
pub const CONTINENT_COUNT: u16 = 7;
/// Base value for country codes.
pub const COUNTRY_BASE: u16 = 2100;
/// Number of country ids.
pub const COUNTRY_COUNT: u16 = 400;
/// Base value for city codes.
pub const CITY_BASE: u16 = 2500;
/// Number of city ids.
pub const CITY_COUNT: u16 = 3500;

/// The geographic scope a single community encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GeoScope {
    /// Geographical region / continent.
    Continent,
    /// Country.
    Country,
    /// City / metro.
    City,
}

impl fmt::Display for GeoScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GeoScope::Continent => "continent",
            GeoScope::Country => "country",
            GeoScope::City => "city",
        })
    }
}

/// A full ingress location: continent + country + city.
///
/// Continent ids are 1-based (1–7); country and city ids are 0-based and
/// bounded by [`COUNTRY_COUNT`] / [`CITY_COUNT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeoTag {
    /// Continent id, 1–7.
    pub continent: u8,
    /// Country id, < 400.
    pub country: u16,
    /// City id, < 3500.
    pub city: u16,
}

impl GeoTag {
    /// Creates a tag, clamping ids into their valid ranges.
    pub fn new(continent: u8, country: u16, city: u16) -> Self {
        GeoTag {
            continent: continent.clamp(1, CONTINENT_COUNT as u8),
            country: country % COUNTRY_COUNT,
            city: city % CITY_COUNT,
        }
    }

    /// The three communities a geo-tagging AS (`asn16`) attaches on
    /// ingress: one continent, one country, one city community — matching
    /// the mix the paper decodes ("9 city communities, two country and two
    /// geographical regions").
    pub fn to_communities(self, asn16: u16) -> [Community; 3] {
        [
            Community::from_parts(asn16, CONTINENT_BASE + self.continent as u16),
            Community::from_parts(asn16, COUNTRY_BASE + self.country),
            Community::from_parts(asn16, CITY_BASE + self.city),
        ]
    }

    /// Inserts the three location communities into a set.
    pub fn tag(self, asn16: u16, set: &mut CommunitySet) {
        for c in self.to_communities(asn16) {
            set.insert(c);
        }
    }
}

impl fmt::Display for GeoTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "geo(c{} n{} y{})", self.continent, self.country, self.city)
    }
}

/// Decodes one community as a location community, returning the scope and
/// the id, if its value lies in the geo ranges.
pub fn decode_geo(c: Community) -> Option<(GeoScope, u16)> {
    let v = c.value_part();
    if (CONTINENT_BASE + 1..=CONTINENT_BASE + CONTINENT_COUNT).contains(&v) {
        Some((GeoScope::Continent, v - CONTINENT_BASE))
    } else if (COUNTRY_BASE..COUNTRY_BASE + COUNTRY_COUNT).contains(&v) {
        Some((GeoScope::Country, v - COUNTRY_BASE))
    } else if (CITY_BASE..CITY_BASE + CITY_COUNT).contains(&v) {
        Some((GeoScope::City, v - CITY_BASE))
    } else {
        None
    }
}

/// Removes the geo communities of `asn16` from a set and decodes them —
/// what an analysis pass does to recover ingress locations from a stream.
pub fn extract_locations(set: &CommunitySet, asn16: u16) -> Vec<(GeoScope, u16)> {
    set.iter_classic().filter(|c| c.asn_part() == asn16).filter_map(|c| decode_geo(*c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_produces_three_scopes() {
        let tag = GeoTag::new(5, 42, 137); // North America-ish
        let comms = tag.to_communities(3356);
        assert_eq!(comms.len(), 3);
        assert_eq!(decode_geo(comms[0]), Some((GeoScope::Continent, 5)));
        assert_eq!(decode_geo(comms[1]), Some((GeoScope::Country, 42)));
        assert_eq!(decode_geo(comms[2]), Some((GeoScope::City, 137)));
        for c in comms {
            assert_eq!(c.asn_part(), 3356);
        }
    }

    #[test]
    fn clamping_keeps_ids_in_range() {
        let t = GeoTag::new(0, COUNTRY_COUNT + 5, CITY_COUNT + 9);
        assert_eq!(t.continent, 1);
        assert_eq!(t.country, 5);
        assert_eq!(t.city, 9);
        let t2 = GeoTag::new(200, 0, 0);
        assert_eq!(t2.continent, CONTINENT_COUNT as u8);
    }

    #[test]
    fn non_geo_values_decode_to_none() {
        assert_eq!(decode_geo(Community::from_parts(3356, 100)), None);
        assert_eq!(decode_geo(Community::from_parts(3356, 1999)), None);
        assert_eq!(decode_geo(Community::from_parts(3356, 2000)), None); // base itself invalid
        assert_eq!(decode_geo(Community::from_parts(3356, 6000)), None);
    }

    #[test]
    fn boundaries() {
        assert_eq!(decode_geo(Community::from_parts(1, 2001)), Some((GeoScope::Continent, 1)));
        assert_eq!(decode_geo(Community::from_parts(1, 2007)), Some((GeoScope::Continent, 7)));
        assert_eq!(decode_geo(Community::from_parts(1, 2100)), Some((GeoScope::Country, 0)));
        assert_eq!(decode_geo(Community::from_parts(1, 2499)), Some((GeoScope::Country, 399)));
        assert_eq!(decode_geo(Community::from_parts(1, 2500)), Some((GeoScope::City, 0)));
        assert_eq!(decode_geo(Community::from_parts(1, 5999)), Some((GeoScope::City, 3499)));
    }

    #[test]
    fn extract_locations_filters_by_tagger() {
        let mut set = CommunitySet::new();
        GeoTag::new(4, 10, 20).tag(3356, &mut set);
        GeoTag::new(5, 11, 21).tag(174, &mut set);
        set.insert(Community::from_parts(3356, 70)); // non-geo
        let locs_3356 = extract_locations(&set, 3356);
        assert_eq!(locs_3356.len(), 3);
        assert!(locs_3356.contains(&(GeoScope::Continent, 4)));
        let locs_174 = extract_locations(&set, 174);
        assert_eq!(locs_174.len(), 3);
        assert!(locs_174.contains(&(GeoScope::City, 21)));
    }

    #[test]
    fn distinct_cities_distinct_attributes() {
        // Community exploration: different ingress cities must yield
        // different community attributes.
        let mut a = CommunitySet::new();
        GeoTag::new(4, 10, 100).tag(3356, &mut a);
        let mut b = CommunitySet::new();
        GeoTag::new(4, 10, 101).tag(3356, &mut b);
        assert_ne!(a, b);
    }
}
