//! Community taxonomy: informational vs. action communities.
//!
//! Following Donnet & Bonaventure's taxonomy and the RFC 8195 convention
//! the paper cites, communities divide into **informational** tags (added on
//! *ingress* to record facts — where/from whom a route was learned) and
//! **action** signals (added on *egress* to request behavior — blackhole,
//! prepend, selective advertisement). The classifier here combines
//! structural knowledge (well-known values, the geo encoding) with an
//! optional per-AS scheme registry populated by the topology generator.

use std::collections::HashMap;

use crate::community::Community;
use crate::geo::decode_geo;

/// What kind of information a community conveys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommunityClass {
    /// Informational: ingress geolocation tag.
    InfoGeo,
    /// Informational: relation/type-of-peer tag (customer/peer/provider).
    InfoRelation,
    /// Action: well-known (NO_EXPORT, BLACKHOLE, ...).
    ActionWellKnown,
    /// Action: AS-specific signaling (prepend requests, selective
    /// advertisement, local-pref steering).
    ActionSignal,
    /// Not classifiable.
    Unknown,
}

impl CommunityClass {
    /// True for the informational side of the taxonomy.
    pub fn is_informational(self) -> bool {
        matches!(self, CommunityClass::InfoGeo | CommunityClass::InfoRelation)
    }

    /// True for the action side of the taxonomy.
    pub fn is_action(self) -> bool {
        matches!(self, CommunityClass::ActionWellKnown | CommunityClass::ActionSignal)
    }
}

/// Value range an AS devotes to one class of communities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeRange {
    /// Inclusive low bound of the 16-bit value.
    pub lo: u16,
    /// Inclusive high bound.
    pub hi: u16,
    /// What the range means.
    pub class: CommunityClass,
}

/// A registry of per-AS community schemes plus structural defaults.
///
/// Lookup order: well-known registry → per-AS scheme ranges → the shared
/// geo encoding → `Unknown`.
#[derive(Debug, Clone, Default)]
pub struct CommunityTaxonomy {
    schemes: HashMap<u16, Vec<SchemeRange>>,
}

impl CommunityTaxonomy {
    /// An empty taxonomy (structural rules only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a value range for an AS's scheme.
    pub fn register(&mut self, asn16: u16, range: SchemeRange) {
        self.schemes.entry(asn16).or_default().push(range);
    }

    /// Registers the conventional scheme of a transit AS that geo-tags:
    /// geo ranges (classified by the shared encoding), a relation range
    /// (100–199), and an action range (7000–7999, e.g. prepend requests).
    pub fn register_transit_defaults(&mut self, asn16: u16) {
        self.register(asn16, SchemeRange { lo: 100, hi: 199, class: CommunityClass::InfoRelation });
        self.register(
            asn16,
            SchemeRange { lo: 7000, hi: 7999, class: CommunityClass::ActionSignal },
        );
    }

    /// Classifies one community.
    pub fn classify(&self, c: Community) -> CommunityClass {
        if c.well_known_name().is_some() {
            return CommunityClass::ActionWellKnown;
        }
        if let Some(ranges) = self.schemes.get(&c.asn_part()) {
            let v = c.value_part();
            for r in ranges {
                if (r.lo..=r.hi).contains(&v) {
                    return r.class;
                }
            }
        }
        if decode_geo(c).is_some() {
            return CommunityClass::InfoGeo;
        }
        CommunityClass::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::well_known;
    use crate::geo::GeoTag;

    #[test]
    fn well_known_are_actions() {
        let t = CommunityTaxonomy::new();
        assert_eq!(t.classify(well_known::BLACKHOLE), CommunityClass::ActionWellKnown);
        assert_eq!(t.classify(well_known::NO_EXPORT), CommunityClass::ActionWellKnown);
        assert!(t.classify(well_known::NO_EXPORT).is_action());
    }

    #[test]
    fn geo_ranges_are_informational() {
        let t = CommunityTaxonomy::new();
        let [cont, country, city] = GeoTag::new(4, 1, 2).to_communities(3356);
        for c in [cont, country, city] {
            assert_eq!(t.classify(c), CommunityClass::InfoGeo);
            assert!(t.classify(c).is_informational());
        }
    }

    #[test]
    fn scheme_ranges_override_structure() {
        let mut t = CommunityTaxonomy::new();
        t.register_transit_defaults(3356);
        assert_eq!(t.classify(Community::from_parts(3356, 150)), CommunityClass::InfoRelation);
        assert_eq!(t.classify(Community::from_parts(3356, 7001)), CommunityClass::ActionSignal);
        // Outside registered ranges and geo ranges: unknown.
        assert_eq!(t.classify(Community::from_parts(3356, 50)), CommunityClass::Unknown);
    }

    #[test]
    fn scheme_is_per_as() {
        let mut t = CommunityTaxonomy::new();
        t.register(174, SchemeRange { lo: 0, hi: 99, class: CommunityClass::ActionSignal });
        assert_eq!(t.classify(Community::from_parts(174, 50)), CommunityClass::ActionSignal);
        assert_eq!(t.classify(Community::from_parts(175, 50)), CommunityClass::Unknown);
    }
}
