//! The community *attribute*: an ordered, deduplicated set of communities.
//!
//! The paper's classifier asks one question of two successive announcements:
//! *did the community attribute change?* [`CommunitySet`] makes that a plain
//! `==`: communities are stored sorted and deduplicated across all three
//! families (classic, extended, large), so set equality is value equality.
//!
//! The set also hosts the *cleaning* operations the paper studies —
//! stripping all communities, or only those whose high half matches a
//! neighbor — which the simulator's import/export policies call.

use std::fmt;

use crate::community::Community;
use crate::extended::ExtendedCommunity;
use crate::large::LargeCommunity;

/// An ordered, deduplicated set of classic + extended + large communities.
///
/// Equality across the full attribute is the paper's "community changed"
/// predicate. An absent attribute and an empty attribute compare equal on
/// purpose: the paper counts "two empty community attributes in succession"
/// as *no change* (`nn`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CommunitySet {
    classic: Vec<Community>,
    extended: Vec<ExtendedCommunity>,
    large: Vec<LargeCommunity>,
}

impl CommunitySet {
    /// Creates an empty community set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from classic communities only (the common case in the
    /// paper's data).
    pub fn from_classic<I: IntoIterator<Item = Community>>(iter: I) -> Self {
        let mut s = Self::new();
        for c in iter {
            s.insert(c);
        }
        s
    }

    /// Builds a set from possibly unsorted, possibly duplicated vectors of
    /// all three families — one sort + dedup per family instead of a
    /// `binary_search` + `Vec::insert` shuffle per element. This is the
    /// decode-path constructor: a wire attribute's communities arrive as a
    /// run, so building in bulk is O(n log n) with no mid-vector moves.
    pub fn from_unsorted(
        classic: Vec<Community>,
        extended: Vec<ExtendedCommunity>,
        large: Vec<LargeCommunity>,
    ) -> Self {
        let mut s = CommunitySet { classic, extended, large };
        s.classic.sort_unstable();
        s.classic.dedup();
        s.extended.sort_unstable();
        s.extended.dedup();
        s.large.sort_unstable();
        s.large.dedup();
        s
    }

    /// Heap bytes held by the three family vectors, counted at capacity.
    pub fn heap_bytes(&self) -> usize {
        self.classic.capacity() * std::mem::size_of::<Community>()
            + self.extended.capacity() * std::mem::size_of::<ExtendedCommunity>()
            + self.large.capacity() * std::mem::size_of::<LargeCommunity>()
    }

    /// True if no community of any family is present.
    pub fn is_empty(&self) -> bool {
        self.classic.is_empty() && self.extended.is_empty() && self.large.is_empty()
    }

    /// Total number of communities across all families.
    pub fn len(&self) -> usize {
        self.classic.len() + self.extended.len() + self.large.len()
    }

    /// Inserts a classic community, keeping the set sorted and unique.
    /// Returns true if it was newly inserted.
    pub fn insert(&mut self, c: Community) -> bool {
        match self.classic.binary_search(&c) {
            Ok(_) => false,
            Err(pos) => {
                self.classic.insert(pos, c);
                true
            }
        }
    }

    /// Inserts an extended community. Returns true if newly inserted.
    pub fn insert_extended(&mut self, c: ExtendedCommunity) -> bool {
        match self.extended.binary_search(&c) {
            Ok(_) => false,
            Err(pos) => {
                self.extended.insert(pos, c);
                true
            }
        }
    }

    /// Inserts a large community. Returns true if newly inserted.
    pub fn insert_large(&mut self, c: LargeCommunity) -> bool {
        match self.large.binary_search(&c) {
            Ok(_) => false,
            Err(pos) => {
                self.large.insert(pos, c);
                true
            }
        }
    }

    /// Removes a classic community. Returns true if it was present.
    pub fn remove(&mut self, c: &Community) -> bool {
        match self.classic.binary_search(c) {
            Ok(pos) => {
                self.classic.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// True if the classic community is present.
    pub fn contains(&self, c: &Community) -> bool {
        self.classic.binary_search(c).is_ok()
    }

    /// True if the large community is present.
    pub fn contains_large(&self, c: &LargeCommunity) -> bool {
        self.large.binary_search(c).is_ok()
    }

    /// The classic communities, sorted.
    pub fn classic(&self) -> &[Community] {
        &self.classic
    }

    /// The extended communities, sorted.
    pub fn extended(&self) -> &[ExtendedCommunity] {
        &self.extended
    }

    /// The large communities, sorted.
    pub fn large(&self) -> &[LargeCommunity] {
        &self.large
    }

    /// Removes *all* communities — the paper's "remove all communities on
    /// egress" cleaning policy (Exp3).
    pub fn clear(&mut self) {
        self.classic.clear();
        self.extended.clear();
        self.large.clear();
    }

    /// Keeps only classic communities satisfying the predicate (and applies
    /// the matching global-administrator predicate to large communities).
    /// This expresses selective cleaning such as "drop communities whose
    /// high half names my neighbor".
    pub fn retain_classic<F: FnMut(&Community) -> bool>(&mut self, mut f: F) {
        self.classic.retain(|c| f(c));
    }

    /// Removes every community (classic high half / large global
    /// administrator) owned by `asn16`.
    pub fn strip_owned_by(&mut self, asn16: u16) {
        self.classic.retain(|c| c.asn_part() != asn16);
        self.large.retain(|l| l.global != asn16 as u32);
    }

    /// Merges another set into this one.
    pub fn merge(&mut self, other: &CommunitySet) {
        for c in &other.classic {
            self.insert(*c);
        }
        for e in &other.extended {
            self.insert_extended(*e);
        }
        for l in &other.large {
            self.insert_large(*l);
        }
    }

    /// Iterates over classic communities.
    pub fn iter_classic(&self) -> impl Iterator<Item = &Community> {
        self.classic.iter()
    }

    /// A canonical string key for the whole attribute, used by the paper's
    /// "unique community attributes" counting (Fig. 6). Two sets have equal
    /// keys iff they are equal.
    pub fn canonical_key(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for CommunitySet {
    /// Space-separated canonical forms, classic then extended then large;
    /// empty set renders as `-`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, s: String| -> fmt::Result {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{s}")
        };
        for c in &self.classic {
            put(f, c.to_string())?;
        }
        for e in &self.extended {
            put(f, e.to_string())?;
        }
        for l in &self.large {
            put(f, l.to_string())?;
        }
        Ok(())
    }
}

impl FromIterator<Community> for CommunitySet {
    fn from_iter<T: IntoIterator<Item = Community>>(iter: T) -> Self {
        Self::from_classic(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(a: u16, v: u16) -> Community {
        Community::from_parts(a, v)
    }

    #[test]
    fn insertion_sorts_and_dedups() {
        let mut s = CommunitySet::new();
        assert!(s.insert(c(3356, 2065)));
        assert!(s.insert(c(3356, 3)));
        assert!(!s.insert(c(3356, 2065)));
        assert_eq!(s.classic(), &[c(3356, 3), c(3356, 2065)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let a = CommunitySet::from_classic([c(1, 1), c(2, 2), c(3, 3)]);
        let b = CommunitySet::from_classic([c(3, 3), c(1, 1), c(2, 2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_equals_empty() {
        // The paper: "nn announcements also include two empty community
        // attributes in succession" — empty == empty must hold.
        assert_eq!(CommunitySet::new(), CommunitySet::default());
    }

    #[test]
    fn change_detection() {
        let before = CommunitySet::from_classic([c(65000, 300)]);
        let after = CommunitySet::from_classic([c(65000, 400)]);
        assert_ne!(before, after); // Exp2: community-only change
    }

    #[test]
    fn clear_is_egress_cleaning() {
        let mut s = CommunitySet::from_classic([c(3356, 2065), c(3356, 901)]);
        s.insert_large(LargeCommunity::new(3356, 1, 2));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s, CommunitySet::new());
    }

    #[test]
    fn strip_owned_by_asn() {
        let mut s = CommunitySet::from_classic([c(3356, 2065), c(174, 21_000), c(65535, 666)]);
        s.insert_large(LargeCommunity::new(3356, 9, 9));
        s.insert_large(LargeCommunity::new(174, 9, 9));
        s.strip_owned_by(3356);
        assert!(!s.contains(&c(3356, 2065)));
        assert!(s.contains(&c(174, 21_000)));
        assert!(s.contains(&c(65535, 666)));
        assert!(!s.contains_large(&LargeCommunity::new(3356, 9, 9)));
        assert!(s.contains_large(&LargeCommunity::new(174, 9, 9)));
    }

    #[test]
    fn merge_unions() {
        let mut a = CommunitySet::from_classic([c(1, 1)]);
        let b = CommunitySet::from_classic([c(1, 1), c(2, 2)]);
        a.merge(&b);
        assert_eq!(a, CommunitySet::from_classic([c(1, 1), c(2, 2)]));
    }

    #[test]
    fn canonical_key_distinguishes_families() {
        let mut a = CommunitySet::new();
        a.insert(c(1, 2));
        let mut b = CommunitySet::new();
        b.insert_large(LargeCommunity::new(1, 2, 0));
        assert_ne!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn display_empty_and_nonempty() {
        assert_eq!(CommunitySet::new().to_string(), "-");
        let s = CommunitySet::from_classic([c(3356, 3), c(3356, 2065)]);
        assert_eq!(s.to_string(), "3356:3 3356:2065");
    }

    #[test]
    fn remove_and_contains() {
        let mut s = CommunitySet::from_classic([c(1, 1), c(2, 2)]);
        assert!(s.remove(&c(1, 1)));
        assert!(!s.remove(&c(1, 1)));
        assert!(!s.contains(&c(1, 1)));
        assert!(s.contains(&c(2, 2)));
    }

    #[test]
    fn retain_classic_predicate() {
        let mut s = CommunitySet::from_classic([c(1, 1), c(2, 2), c(3, 3)]);
        s.retain_classic(|cm| cm.asn_part() != 2);
        assert_eq!(s.classic(), &[c(1, 1), c(3, 3)]);
    }
}
