//! A prefix-keyed map backed by a path-compressed binary trie.
//!
//! [`PrefixMap`] replaces `HashMap<Prefix, V>` on the classifier hot
//! path: keys are the prefix *bits*, so an exact-match lookup walks a
//! handful of path-compressed nodes instead of hashing a 24-byte enum,
//! iteration is in canonical prefix order ([`Prefix`]'s `Ord`: IPv4
//! before IPv6, then address, then length) with no sorting step, and the
//! trie shape gives longest-prefix matching for free.
//!
//! Nodes live in a flat arena indexed by `u32` — no per-node boxing, no
//! parent pointers — and each family (v4/v6) gets its own sub-trie so
//! the two keyspaces never interleave.

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::prefix::Prefix;

/// Arena sentinel for "no child".
const NIL: u32 = u32::MAX;

/// One trie node: a left-aligned bit prefix of `len` bits, an optional
/// value (internal fork nodes created by splitting carry none), and two
/// children selected by the first bit after `len`.
#[derive(Debug, Clone)]
struct Node<V> {
    bits: u128,
    len: u8,
    value: Option<V>,
    child: [u32; 2],
}

/// The bit after position `len` (0-indexed from the most significant).
#[inline]
fn bit_at(key: u128, i: u8) -> usize {
    ((key >> (127 - i as u32)) & 1) as usize
}

/// A mask covering the first `len` bits.
#[inline]
fn mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

/// One family's trie (keys are left-aligned in a `u128`).
#[derive(Debug, Clone)]
struct SubTrie<V> {
    nodes: Vec<Node<V>>,
    root: u32,
}

impl<V> Default for SubTrie<V> {
    fn default() -> Self {
        SubTrie { nodes: Vec::new(), root: NIL }
    }
}

impl<V> SubTrie<V> {
    fn push(&mut self, node: Node<V>) -> u32 {
        let idx = u32::try_from(self.nodes.len()).expect("prefix trie exceeds u32 arena");
        self.nodes.push(node);
        idx
    }

    /// Index of the node holding exactly `(key, len)`, if present.
    fn find(&self, key: u128, len: u8) -> Option<usize> {
        let mut idx = self.root;
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            if node.len > len || key & mask(node.len) != node.bits {
                return None;
            }
            if node.len == len {
                return node.value.is_some().then_some(idx as usize);
            }
            idx = node.child[bit_at(key, node.len)];
        }
        None
    }

    fn get(&self, key: u128, len: u8) -> Option<&V> {
        self.find(key, len).and_then(|i| self.nodes[i].value.as_ref())
    }

    fn get_mut(&mut self, key: u128, len: u8) -> Option<&mut V> {
        self.find(key, len).and_then(|i| self.nodes[i].value.as_mut())
    }

    /// Inserts, returning the displaced value for an existing key.
    fn insert(&mut self, key: u128, len: u8, value: V) -> Option<V> {
        if self.root == NIL {
            self.root = self.push(Node { bits: key, len, value: Some(value), child: [NIL, NIL] });
            return None;
        }
        let mut parent: Option<(u32, usize)> = None;
        let mut idx = self.root;
        loop {
            let (node_bits, node_len) = {
                let n = &self.nodes[idx as usize];
                (n.bits, n.len)
            };
            let common = ((key ^ node_bits).leading_zeros() as u8).min(node_len).min(len);
            if common < node_len {
                // The walk diverged inside this node's compressed run:
                // splice a new node above it.
                let new_idx = if common == len {
                    // The inserted key is an ancestor of the node.
                    let mut child = [NIL, NIL];
                    child[bit_at(node_bits, common)] = idx;
                    self.push(Node { bits: key, len, value: Some(value), child })
                } else {
                    // Fork: a valueless junction with the old node on one
                    // side and the new leaf on the other.
                    let leaf =
                        self.push(Node { bits: key, len, value: Some(value), child: [NIL, NIL] });
                    let mut child = [NIL, NIL];
                    child[bit_at(node_bits, common)] = idx;
                    child[bit_at(key, common)] = leaf;
                    self.push(Node { bits: key & mask(common), len: common, value: None, child })
                };
                match parent {
                    None => self.root = new_idx,
                    Some((p, b)) => self.nodes[p as usize].child[b] = new_idx,
                }
                return None;
            }
            // The node's bits fully prefix the key.
            if len == node_len {
                return self.nodes[idx as usize].value.replace(value);
            }
            let b = bit_at(key, node_len);
            let next = self.nodes[idx as usize].child[b];
            if next == NIL {
                let leaf =
                    self.push(Node { bits: key, len, value: Some(value), child: [NIL, NIL] });
                self.nodes[idx as usize].child[b] = leaf;
                return None;
            }
            parent = Some((idx, b));
            idx = next;
        }
    }

    /// The covering-chain walk shared by [`Covering`]: starts at the
    /// root and descends toward `(key, len)`.
    fn covering(&self, key: u128, len: u8) -> Covering<'_, V> {
        Covering { nodes: &self.nodes, idx: self.root, key, len }
    }

    /// The longest stored prefix covering `(key, len)`.
    fn longest_match(&self, key: u128, len: u8) -> Option<(u128, u8, &V)> {
        let mut best = None;
        let mut idx = self.root;
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            if node.len > len || key & mask(node.len) != node.bits {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((node.bits, node.len, v));
            }
            if node.len == len {
                break;
            }
            idx = node.child[bit_at(key, node.len)];
        }
        best
    }
}

/// Iterator over every stored value whose prefix covers the query —
/// shortest covering prefix first, exact match (if stored) last. The
/// walk is a single root-to-leaf descent, so it costs O(stored
/// ancestors), not O(map size).
pub struct Covering<'a, V> {
    nodes: &'a [Node<V>],
    idx: u32,
    key: u128,
    len: u8,
}

impl<'a, V> Iterator for Covering<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        while self.idx != NIL {
            let node = &self.nodes[self.idx as usize];
            if node.len > self.len || self.key & mask(node.len) != node.bits {
                self.idx = NIL;
                return None;
            }
            self.idx =
                if node.len == self.len { NIL } else { node.child[bit_at(self.key, node.len)] };
            if let Some(v) = &node.value {
                return Some(v);
            }
        }
        None
    }
}

/// Pre-order walk: a node's own prefix sorts before everything in its
/// subtrees, and the 0-child subtree before the 1-child subtree — so the
/// yield order is exactly `(address, length)` lexicographic.
struct SubIter<'a, V> {
    nodes: &'a [Node<V>],
    stack: Vec<u32>,
}

impl<'a, V> SubIter<'a, V> {
    fn new(trie: &'a SubTrie<V>) -> Self {
        let mut stack = Vec::new();
        if trie.root != NIL {
            stack.push(trie.root);
        }
        SubIter { nodes: &trie.nodes, stack }
    }
}

impl<'a, V> Iterator for SubIter<'a, V> {
    type Item = (u128, u8, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(idx) = self.stack.pop() {
            let node = &self.nodes[idx as usize];
            if node.child[1] != NIL {
                self.stack.push(node.child[1]);
            }
            if node.child[0] != NIL {
                self.stack.push(node.child[0]);
            }
            if let Some(v) = &node.value {
                return Some((node.bits, node.len, v));
            }
        }
        None
    }
}

/// Splits a prefix into `(left-aligned bits, length, is_v4)`.
#[inline]
fn key_of(prefix: &Prefix) -> (u128, u8, bool) {
    match prefix {
        Prefix::V4 { addr, len } => ((u32::from(*addr) as u128) << 96, *len, true),
        Prefix::V6 { addr, len } => (u128::from(*addr), *len, false),
    }
}

fn prefix_from(bits: u128, len: u8, v4: bool) -> Prefix {
    if v4 {
        Prefix::v4(Ipv4Addr::from((bits >> 96) as u32), len).expect("trie keys are canonical")
    } else {
        Prefix::v6(Ipv6Addr::from(bits), len).expect("trie keys are canonical")
    }
}

/// A map from [`Prefix`] to `V`, stored as two path-compressed binary
/// tries (one per address family).
///
/// Exact-match [`get`](PrefixMap::get)/[`insert`](PrefixMap::insert) are
/// the classifier's per-update operations; [`iter`](PrefixMap::iter)
/// yields entries in canonical prefix order without sorting, and
/// [`longest_match`](PrefixMap::longest_match) exposes the trie's native
/// covering-route query.
#[derive(Debug, Clone, Default)]
pub struct PrefixMap<V> {
    v4: SubTrie<V>,
    v6: SubTrie<V>,
    len: usize,
}

impl<V> PrefixMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        PrefixMap { v4: SubTrie::default(), v6: SubTrie::default(), len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value stored for exactly this prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let (bits, len, v4) = key_of(prefix);
        if v4 {
            self.v4.get(bits, len)
        } else {
            self.v6.get(bits, len)
        }
    }

    /// Mutable access to the value stored for exactly this prefix.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        let (bits, len, v4) = key_of(prefix);
        if v4 {
            self.v4.get_mut(bits, len)
        } else {
            self.v6.get_mut(bits, len)
        }
    }

    /// True if an entry is stored for exactly this prefix.
    pub fn contains_key(&self, prefix: &Prefix) -> bool {
        self.get(prefix).is_some()
    }

    /// Inserts a value, returning the previous one for an existing key.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let (bits, len, v4) = key_of(&prefix);
        let displaced =
            if v4 { self.v4.insert(bits, len, value) } else { self.v6.insert(bits, len, value) };
        if displaced.is_none() {
            self.len += 1;
        }
        displaced
    }

    /// The longest stored prefix that covers `prefix` (including an exact
    /// match), with its value.
    pub fn longest_match(&self, prefix: &Prefix) -> Option<(Prefix, &V)> {
        let (bits, len, v4) = key_of(prefix);
        let sub = if v4 { &self.v4 } else { &self.v6 };
        sub.longest_match(bits, len).map(|(b, l, v)| (prefix_from(b, l, v4), v))
    }

    /// Every stored value whose prefix covers `prefix` — shortest
    /// covering prefix first, exact match (if stored) last. A single
    /// root-to-leaf descent: O(stored ancestors), not O(map size).
    pub fn covering(&self, prefix: &Prefix) -> Covering<'_, V> {
        let (bits, len, v4) = key_of(prefix);
        let sub = if v4 { &self.v4 } else { &self.v6 };
        sub.covering(bits, len)
    }

    /// Entries in canonical prefix order (IPv4 before IPv6, then address,
    /// then length).
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        SubIter::new(&self.v4)
            .map(|(b, l, v)| (prefix_from(b, l, true), v))
            .chain(SubIter::new(&self.v6).map(|(b, l, v)| (prefix_from(b, l, false), v)))
    }

    /// The stored values, in the same order as [`iter`](PrefixMap::iter).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

impl<V> FromIterator<(Prefix, V)> for PrefixMap<V> {
    fn from_iter<T: IntoIterator<Item = (Prefix, V)>>(iter: T) -> Self {
        let mut map = PrefixMap::new();
        for (p, v) in iter {
            map.insert(p, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_replace() {
        let mut m = PrefixMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(p("84.205.64.0/24"), 1), None);
        assert_eq!(m.insert(p("84.205.65.0/24"), 2), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&p("84.205.64.0/24")), Some(&1));
        assert_eq!(m.insert(p("84.205.64.0/24"), 3), Some(1));
        assert_eq!(m.len(), 2, "replacement does not grow the map");
        assert_eq!(m.get(&p("84.205.64.0/24")), Some(&3));
        assert_eq!(m.get(&p("84.205.66.0/24")), None);
    }

    #[test]
    fn nested_prefixes_are_distinct_keys() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), "eight");
        m.insert(p("10.0.0.0/16"), "sixteen");
        m.insert(p("10.0.0.0/24"), "twentyfour");
        assert_eq!(m.get(&p("10.0.0.0/8")), Some(&"eight"));
        assert_eq!(m.get(&p("10.0.0.0/16")), Some(&"sixteen"));
        assert_eq!(m.get(&p("10.0.0.0/24")), Some(&"twentyfour"));
        assert_eq!(m.get(&p("10.0.0.0/12")), None, "no value stored at /12");
    }

    #[test]
    fn ancestor_inserted_after_descendant() {
        // Exercises the "key is an ancestor of an existing node" split.
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/24"), 24);
        m.insert(p("10.0.0.0/8"), 8);
        assert_eq!(m.get(&p("10.0.0.0/8")), Some(&8));
        assert_eq!(m.get(&p("10.0.0.0/24")), Some(&24));
    }

    #[test]
    fn fork_nodes_carry_no_value() {
        // 10.0.0.0/24 and 10.0.1.0/24 share a /23; looking up the /23
        // must miss even though a junction node exists there.
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/24"), 0);
        m.insert(p("10.0.1.0/24"), 1);
        assert_eq!(m.get(&p("10.0.0.0/23")), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn families_do_not_collide() {
        let mut m = PrefixMap::new();
        m.insert(p("0.0.0.0/0"), "v4 default");
        m.insert(p("::/0"), "v6 default");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&p("0.0.0.0/0")), Some(&"v4 default"));
        assert_eq!(m.get(&p("::/0")), Some(&"v6 default"));
    }

    #[test]
    fn iteration_is_canonical_prefix_order() {
        let prefixes = [
            "2001:db8::/32",
            "10.0.1.0/24",
            "84.205.64.0/24",
            "10.0.0.0/8",
            "2001:db8::/48",
            "10.0.0.0/24",
            "0.0.0.0/0",
        ];
        let mut m = PrefixMap::new();
        for (i, s) in prefixes.iter().enumerate() {
            m.insert(p(s), i);
        }
        let got: Vec<Prefix> = m.iter().map(|(k, _)| k).collect();
        let mut want: Vec<Prefix> = prefixes.iter().map(|s| p(s)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn longest_match_walks_covering_chain() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), 8);
        m.insert(p("10.0.0.0/16"), 16);
        let (best, v) = m.longest_match(&p("10.0.0.0/24")).unwrap();
        assert_eq!((best, *v), (p("10.0.0.0/16"), 16));
        let (best, v) = m.longest_match(&p("10.1.0.0/16")).unwrap();
        assert_eq!((best, *v), (p("10.0.0.0/8"), 8));
        assert!(m.longest_match(&p("11.0.0.0/8")).is_none());
        let (best, _) = m.longest_match(&p("10.0.0.0/8")).unwrap();
        assert_eq!(best, p("10.0.0.0/8"), "exact match counts");
    }

    #[test]
    fn covering_yields_every_stored_ancestor() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), 8);
        m.insert(p("10.0.0.0/16"), 16);
        m.insert(p("10.0.0.0/24"), 24);
        m.insert(p("10.0.1.0/24"), 124); // sibling — must not appear
        let chain: Vec<i32> = m.covering(&p("10.0.0.0/24")).copied().collect();
        assert_eq!(chain, [8, 16, 24], "shortest first, exact match included");
        let chain: Vec<i32> = m.covering(&p("10.0.0.128/25")).copied().collect();
        assert_eq!(chain, [8, 16, 24], "strict descendants see the whole chain");
        let chain: Vec<i32> = m.covering(&p("10.1.0.0/16")).copied().collect();
        assert_eq!(chain, [8]);
        assert_eq!(m.covering(&p("11.0.0.0/8")).next(), None);
        assert_eq!(PrefixMap::<i32>::new().covering(&p("10.0.0.0/8")).next(), None);
    }

    #[test]
    fn host_routes_and_default_route() {
        let mut m = PrefixMap::new();
        m.insert(p("192.0.2.1/32"), "host");
        m.insert(p("0.0.0.0/0"), "default");
        assert_eq!(m.get(&p("192.0.2.1/32")), Some(&"host"));
        let (best, v) = m.longest_match(&p("198.51.100.0/24")).unwrap();
        assert_eq!((best, *v), (p("0.0.0.0/0"), "default"));
    }

    #[test]
    fn matches_hashmap_on_dense_keyspace() {
        // Every /28 under 10.0.0.0/20, inserted in a scrambled order,
        // against a HashMap reference.
        use std::collections::HashMap;
        let mut reference = HashMap::new();
        let mut m = PrefixMap::new();
        for i in 0..256u32 {
            let scrambled = (i * 167) % 256;
            let addr = Ipv4Addr::from(0x0a00_0000u32 | (scrambled << 4));
            let prefix = Prefix::v4(addr, 28).unwrap();
            assert_eq!(m.insert(prefix, scrambled), reference.insert(prefix, scrambled));
        }
        assert_eq!(m.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
        let iterated: Vec<Prefix> = m.iter().map(|(k, _)| k).collect();
        let mut sorted = iterated.clone();
        sorted.sort();
        assert_eq!(iterated, sorted);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), 1);
        *m.get_mut(&p("10.0.0.0/8")).unwrap() += 10;
        assert_eq!(m.get(&p("10.0.0.0/8")), Some(&11));
        assert!(m.get_mut(&p("11.0.0.0/8")).is_none());
    }

    #[test]
    fn collects_from_iterator() {
        let m: PrefixMap<u32> =
            [(p("10.0.0.0/8"), 1), (p("2001:db8::/32"), 2)].into_iter().collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&p("2001:db8::/32")), Some(&2));
    }
}
