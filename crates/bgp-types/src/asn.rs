//! Autonomous System Numbers.
//!
//! BGP originally carried 2-octet AS numbers; RFC 6793 widened them to
//! 4 octets, with `AS_TRANS` (23456) standing in for 4-octet ASNs on
//! sessions that have not negotiated the capability. The paper's data
//! cleaning step removes updates whose ASNs were *unallocated* at message
//! time, so [`Asn`] also exposes the structural (reserved/private/
//! documentation) classification that any allocation registry builds on.

use std::fmt;
use std::str::FromStr;

/// A 4-octet autonomous system number (RFC 6793).
///
/// `Asn` is a transparent newtype over `u32`; ordering and hashing follow
/// the numeric value. Construction is infallible — every `u32` is a
/// syntactically valid ASN — but many values are *reserved* and will be
/// rejected by the allocation registry used during data cleaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

/// `AS_TRANS`, the 2-octet stand-in for 4-octet ASNs (RFC 6793 §9).
pub const AS_TRANS: Asn = Asn(23456);

impl Asn {
    /// The reserved ASN 0 (RFC 7607): must never appear in an AS path.
    pub const RESERVED_ZERO: Asn = Asn(0);
    /// Last 2-octet ASN value.
    pub const MAX_16BIT: u32 = 65_535;

    /// Creates an ASN from a raw value.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// Returns the raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// True if the ASN fits in the original 2-octet space.
    pub const fn is_16bit(self) -> bool {
        self.0 <= Self::MAX_16BIT
    }

    /// True for `AS_TRANS` (23456), the RFC 6793 placeholder.
    pub const fn is_as_trans(self) -> bool {
        self.0 == AS_TRANS.0
    }

    /// True for ASNs reserved for private use
    /// (64512–65534 and 4200000000–4294967294, RFC 6996).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64_512 && self.0 <= 65_534)
            || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// True for ASNs reserved for documentation
    /// (64496–64511 and 65536–65551, RFC 5398).
    pub const fn is_documentation(self) -> bool {
        (self.0 >= 64_496 && self.0 <= 64_511) || (self.0 >= 65_536 && self.0 <= 65_551)
    }

    /// True for structurally reserved values that can never be allocated:
    /// 0 (RFC 7607), 65535 (RFC 7300), 4294967295 (RFC 7300), and `AS_TRANS`.
    pub const fn is_reserved(self) -> bool {
        self.0 == 0 || self.0 == 65_535 || self.0 == u32::MAX || self.is_as_trans()
    }

    /// True if the ASN could be allocated to a real network by an RIR:
    /// not reserved, not private, not documentation.
    pub const fn is_allocatable(self) -> bool {
        !self.is_reserved() && !self.is_private() && !self.is_documentation()
    }

    /// Encodes the ASN for a 2-octet session: 4-octet values collapse to
    /// `AS_TRANS` (RFC 6793 §4.2.2).
    pub const fn to_16bit_wire(self) -> u16 {
        if self.0 > Self::MAX_16BIT {
            AS_TRANS.0 as u16
        } else {
            self.0 as u16
        }
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<u16> for Asn {
    fn from(v: u16) -> Self {
        Asn(v as u32)
    }
}

impl From<Asn> for u32 {
    fn from(a: Asn) -> Self {
        a.0
    }
}

impl fmt::Display for Asn {
    /// Plain decimal ("asplain", RFC 5396): `65550`, never `1.14`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Error parsing an ASN from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsnError(String);

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {:?}", self.0)
    }
}

impl std::error::Error for ParseAsnError {}

impl FromStr for Asn {
    type Err = ParseAsnError;

    /// Accepts `asplain` (`"3356"`), an optional `AS` prefix (`"AS3356"`),
    /// and `asdot` (`"1.10"` = 65546) notation (RFC 5396).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix("AS").or_else(|| s.strip_prefix("as")).unwrap_or(s);
        if let Some((hi, lo)) = body.split_once('.') {
            let hi: u32 = hi.parse().map_err(|_| ParseAsnError(s.into()))?;
            let lo: u32 = lo.parse().map_err(|_| ParseAsnError(s.into()))?;
            if hi > 0xFFFF || lo > 0xFFFF {
                return Err(ParseAsnError(s.into()));
            }
            return Ok(Asn((hi << 16) | lo));
        }
        body.parse::<u32>().map(Asn).map_err(|_| ParseAsnError(s.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_asplain() {
        assert_eq!(Asn(3356).to_string(), "3356");
        assert_eq!(Asn(65_546).to_string(), "65546");
    }

    #[test]
    fn parse_asplain_and_prefix() {
        assert_eq!("3356".parse::<Asn>().unwrap(), Asn(3356));
        assert_eq!("AS3356".parse::<Asn>().unwrap(), Asn(3356));
        assert_eq!("as20205".parse::<Asn>().unwrap(), Asn(20205));
    }

    #[test]
    fn parse_asdot() {
        assert_eq!("1.10".parse::<Asn>().unwrap(), Asn(65_546));
        assert_eq!("0.23456".parse::<Asn>().unwrap(), AS_TRANS);
        assert!("1.70000".parse::<Asn>().is_err());
        assert!("70000.1".parse::<Asn>().is_err());
    }

    #[test]
    fn parse_garbage_fails() {
        assert!("".parse::<Asn>().is_err());
        assert!("AS".parse::<Asn>().is_err());
        assert!("-5".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn sixteen_bit_boundary() {
        assert!(Asn(65_535).is_16bit());
        assert!(!Asn(65_536).is_16bit());
        assert_eq!(Asn(65_536).to_16bit_wire(), 23_456);
        assert_eq!(Asn(174).to_16bit_wire(), 174);
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64_512).is_private());
        assert!(Asn(65_534).is_private());
        assert!(!Asn(65_535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(Asn(4_294_967_294).is_private());
        assert!(!Asn(u32::MAX).is_private());
        assert!(!Asn(3356).is_private());
    }

    #[test]
    fn documentation_ranges() {
        assert!(Asn(64_496).is_documentation());
        assert!(Asn(64_511).is_documentation());
        assert!(Asn(65_536).is_documentation());
        assert!(Asn(65_551).is_documentation());
        assert!(!Asn(65_552).is_documentation());
    }

    #[test]
    fn reserved_values() {
        assert!(Asn(0).is_reserved());
        assert!(Asn(65_535).is_reserved());
        assert!(Asn(u32::MAX).is_reserved());
        assert!(AS_TRANS.is_reserved());
        assert!(!Asn(12_654).is_reserved());
    }

    #[test]
    fn allocatable() {
        // RIPE RIS beacon origin (AS12654) and big transits are allocatable.
        for asn in [12_654u32, 3356, 174, 20_205, 6939] {
            assert!(Asn(asn).is_allocatable(), "AS{asn} should be allocatable");
        }
        assert!(!Asn(0).is_allocatable());
        assert!(!Asn(64_512).is_allocatable());
        assert!(!Asn(64_500).is_allocatable());
    }
}
