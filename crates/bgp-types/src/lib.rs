//! # kcc-bgp-types — BGP data model
//!
//! Core data types shared by every other crate in the *Keep your Communities
//! Clean* reproduction: autonomous system numbers, IP prefixes, the three
//! BGP community families (classic RFC 1997, extended RFC 4360, large
//! RFC 8092), AS paths with segment semantics, path attributes, and the
//! route-update model the analysis pipeline operates on.
//!
//! The types are deliberately simple, owned values (no lifetimes, no interior
//! mutability) so that they can be freely stored in RIBs, archives and
//! analysis state. Hot-path types (`Asn`, `Prefix`, `Community`) are `Copy`.
//!
//! ## Implemented
//!
//! * 2-byte and 4-byte ASNs, AS_TRANS, reserved/private/documentation ranges
//!   (RFC 6996, RFC 5398, RFC 7300).
//! * IPv4/IPv6 prefixes with canonical (host-bits-zeroed) representation,
//!   containment tests, and text parsing/formatting.
//! * Classic communities with the full IANA well-known registry subset used
//!   by the paper (NO_EXPORT, NO_ADVERTISE, BLACKHOLE, GRACEFUL_SHUTDOWN, …).
//! * Extended communities (two-octet-AS route-target/origin subset) and
//!   large communities.
//! * [`CommunitySet`]: the *community attribute* as an ordered, deduplicated
//!   set — equality of two sets is exactly the paper's "did the community
//!   attribute change" predicate.
//! * AS paths with AS_SEQUENCE / AS_SET / confederation segments, prepend
//!   detection (the paper's `x*` types compare the *set* of ASes), origin AS
//!   extraction and loop detection.
//! * The geo-community encoding scheme used by large transit ASes to tag
//!   ingress location (continent / country / city), which the paper
//!   identifies as the dominant source of community exploration.
//!
//! ## Omitted
//!
//! * IPv6-specific extended communities (RFC 5701) — not needed by the paper.
//! * Accumulated IGP metric, AIGP — never observed in the studied data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod as_path;
pub mod asn;
pub mod attrs;
pub mod community;
pub mod community_set;
pub mod extended;
pub mod fast_hash;
pub mod geo;
pub mod intern;
pub mod large;
pub mod prefix;
pub mod prefix_map;
pub mod taxonomy;
pub mod update;

pub use as_path::{AsPath, PathSegment, SegmentKind};
pub use asn::Asn;
pub use attrs::{Origin, PathAttributes};
pub use community::Community;
pub use community_set::CommunitySet;
pub use extended::ExtendedCommunity;
pub use fast_hash::{FastBuildHasher, FastHashMap, FastHashSet};
pub use geo::{GeoScope, GeoTag};
pub use intern::AttrStore;
pub use large::LargeCommunity;
pub use prefix::Prefix;
pub use prefix_map::PrefixMap;
pub use taxonomy::CommunityClass;
pub use update::{MessageKind, RouteUpdate};
