//! Hash-consed [`PathAttributes`] interning.
//!
//! One attribute set announced to 75k neighbors should be one allocation,
//! not 75k. [`AttrStore`] is the shared-ownership registry that makes that
//! true: every distinct attribute set is held once behind an
//! `Arc<PathAttributes>`, callers hold refcounted handles, and the store
//! tracks the exact deep footprint of everything it retains.
//!
//! Grown out of the streaming classifier (PR 7), where it kept per-stream
//! state constant; the simulator's RIBs now intern through the same store
//! so that Adj-RIB-In, Loc-RIB, Adj-RIB-Out and in-flight messages all
//! share one allocation per distinct attribute set.
//!
//! Refcounts are explicit (`Cell`, bumped on a shared `get_key_value`
//! probe) rather than `Arc::strong_count` guesses, so callers retaining
//! extra `Arc` clones (captures, in-flight events) never distort the
//! byte accounting.

use std::borrow::Borrow;
use std::cell::Cell;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::attrs::PathAttributes;
use crate::fast_hash::FastHashMap;

/// Hash-consing key: an `Arc<PathAttributes>` that hashes and compares
/// by **value**, and can be probed with a plain `&PathAttributes`
/// (via `Borrow`) so lookups never allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ArcAttrs(Arc<PathAttributes>);

impl Hash for ArcAttrs {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (*self.0).hash(state);
    }
}

impl Borrow<PathAttributes> for ArcAttrs {
    fn borrow(&self) -> &PathAttributes {
        &self.0
    }
}

/// A hash-consed attribute store. Every distinct attribute set is held
/// once; [`bytes`](Self::bytes) is the exact deep footprint of the
/// distinct sets currently referenced by live slots.
#[derive(Debug, Default)]
pub struct AttrStore {
    entries: FastHashMap<ArcAttrs, Cell<usize>>,
    bytes: usize,
}

impl AttrStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical shared handle for `attrs`, refcount bumped. One hash
    /// lookup when the value is already interned.
    pub fn acquire(&mut self, attrs: &Arc<PathAttributes>) -> Arc<PathAttributes> {
        if let Some((key, count)) = self.entries.get_key_value(&**attrs) {
            count.set(count.get() + 1);
            return Arc::clone(&key.0);
        }
        self.bytes += attrs.deep_footprint();
        self.entries.insert(ArcAttrs(Arc::clone(attrs)), Cell::new(1));
        Arc::clone(attrs)
    }

    /// Like [`acquire`](Self::acquire), but takes ownership — when the
    /// value is new the caller's allocation becomes the canonical one
    /// (no extra clone), and when it is already interned the caller's
    /// copy is dropped in favor of the shared handle.
    pub fn acquire_owned(&mut self, attrs: Arc<PathAttributes>) -> Arc<PathAttributes> {
        if let Some((key, count)) = self.entries.get_key_value(&*attrs) {
            count.set(count.get() + 1);
            return Arc::clone(&key.0);
        }
        self.bytes += attrs.deep_footprint();
        self.entries.insert(ArcAttrs(Arc::clone(&attrs)), Cell::new(1));
        attrs
    }

    /// The canonical handle for a value-equal interned set, if any,
    /// **without** bumping its refcount — for callers that want pointer
    /// collapse on transient values (in-flight messages) but must not
    /// retain a store reference they cannot release.
    pub fn canonical(&self, attrs: &PathAttributes) -> Option<Arc<PathAttributes>> {
        self.entries.get_key_value(attrs).map(|(key, _)| Arc::clone(&key.0))
    }

    /// Drops one reference; the entry (and its bytes) leave the store
    /// when the last slot stops pointing at it.
    ///
    /// # Panics
    ///
    /// Panics if `attrs` was never interned — releasing a handle the
    /// store does not know about is a refcount bug at the call site.
    pub fn release(&mut self, attrs: &Arc<PathAttributes>) {
        let count = self.entries.get(&**attrs).expect("released attrs must be interned");
        let n = count.get();
        if n > 1 {
            count.set(n - 1);
        } else {
            self.bytes -= attrs.deep_footprint();
            self.entries.remove(&**attrs);
        }
    }

    /// Exact deep footprint (bytes) of the distinct attribute sets the
    /// store currently retains.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of distinct attribute sets currently interned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(path: &str) -> Arc<PathAttributes> {
        Arc::new(PathAttributes { as_path: path.parse().unwrap(), ..Default::default() })
    }

    #[test]
    fn acquire_dedups_by_value() {
        let mut store = AttrStore::new();
        let a = store.acquire(&attrs("1 2 3"));
        let b = store.acquire(&attrs("1 2 3"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn release_removes_on_last_handle() {
        let mut store = AttrStore::new();
        let a = store.acquire(&attrs("1 2"));
        let b = store.acquire(&attrs("1 2"));
        assert!(store.bytes() > 0);
        store.release(&a);
        assert_eq!(store.len(), 1);
        store.release(&b);
        assert_eq!(store.len(), 0);
        assert_eq!(store.bytes(), 0);
    }

    #[test]
    fn acquire_owned_keeps_callers_allocation_when_new() {
        let mut store = AttrStore::new();
        let fresh = attrs("6 5 4");
        let ptr = Arc::as_ptr(&fresh);
        let canonical = store.acquire_owned(fresh);
        assert_eq!(Arc::as_ptr(&canonical), ptr);
        // A second, value-equal allocation resolves to the first.
        let again = store.acquire_owned(attrs("6 5 4"));
        assert!(Arc::ptr_eq(&canonical, &again));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn bytes_track_distinct_sets_only() {
        let mut store = AttrStore::new();
        let a = store.acquire(&attrs("1"));
        let one = store.bytes();
        let _b = store.acquire(&attrs("1"));
        assert_eq!(store.bytes(), one, "duplicate acquire adds no bytes");
        let _c = store.acquire(&attrs("2 3"));
        assert!(store.bytes() > one);
        store.release(&a);
        assert!(store.bytes() >= one, "one handle left keeps the entry");
    }

    #[test]
    #[should_panic(expected = "released attrs must be interned")]
    fn releasing_unknown_attrs_panics() {
        let mut store = AttrStore::new();
        store.release(&attrs("9 9"));
    }
}
