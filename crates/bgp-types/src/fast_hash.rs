//! A fast, non-cryptographic hasher for internal hot-path maps.
//!
//! The classifier interner, allocation registry, overview sinks and
//! session tables key on small values (u32 ASNs, short AS paths, prefix
//! tuples) that they probe once per update. The std `HashMap` default
//! (SipHash-1-3) is DoS-resistant but pays ~2× on such keys; these maps
//! hold internal state derived from data we already fully parse and
//! bound, so collision-flooding is not part of their threat model.
//!
//! [`FastHasher`] is a word-at-a-time multiply-rotate mixer (the
//! FxHash family): each 8-byte chunk is rotated into the state and
//! multiplied by a Weyl constant. Deterministic across runs and
//! platforms of the same endianness — but *not* a stable hash to
//! persist; use it only for in-memory tables.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier: the golden-ratio Weyl constant (2^64 / φ), odd so the
/// multiply permutes the 64-bit state.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Word-at-a-time multiply-rotate hasher. See the module docs for when
/// (not) to use it.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits (what HashMap masks on) depend on
        // every input word.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(K);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] maps.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_within_process() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"as path"), hash_of(&"as path"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a collision-resistance claim — just a sanity check that
        // the mixer doesn't collapse the patterns these maps actually
        // store (small integers, short byte strings).
        let hashes: HashSet<u64> = (0u32..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000, "sequential u32 keys must not collide");
    }

    #[test]
    fn low_bits_spread() {
        // HashMap masks the low bits for the bucket index; sequential
        // keys must not all land in a handful of buckets.
        let mut buckets = [0u32; 64];
        for i in 0u32..6_400 {
            buckets[(hash_of(&i) & 63) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 400, "bucket skew too high: {max}/6400 in one of 64 buckets");
    }

    #[test]
    fn chunked_write_covers_all_tails() {
        // 8-byte, 4-byte and 1-byte tails must all contribute.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13];
        for cut in 0..a.len() {
            let mut changed = a.to_vec();
            changed[cut] ^= 0xff;
            assert_ne!(hash_of(&a.to_vec()), hash_of(&changed), "byte {cut} ignored");
        }
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FastHashMap<String, u32> = FastHashMap::default();
        m.insert("10 3356 12654".into(), 1);
        m.insert("10 174 12654".into(), 2);
        assert_eq!(m.get("10 3356 12654"), Some(&1));
        let mut s: FastHashSet<u32> = FastHashSet::default();
        s.insert(3356);
        assert!(s.contains(&3356));
    }
}
