//! Extended BGP communities (RFC 4360).
//!
//! Extended communities are 8-octet values with a type/sub-type header.
//! The paper's data contains them but its analysis treats them opaquely as
//! part of the community attribute; we model the common two-octet-AS
//! specific forms (route target / route origin) precisely and preserve all
//! other types as raw bytes so nothing is lost in an encode/decode
//! round-trip.

use std::fmt;

/// High-order type byte values (RFC 4360 §2, IANA registry subset).
pub mod types {
    /// Two-octet AS specific, transitive.
    pub const TWO_OCTET_AS_TRANSITIVE: u8 = 0x00;
    /// IPv4 address specific, transitive.
    pub const IPV4_TRANSITIVE: u8 = 0x01;
    /// Four-octet AS specific, transitive (RFC 5668).
    pub const FOUR_OCTET_AS_TRANSITIVE: u8 = 0x02;
    /// Opaque, transitive.
    pub const OPAQUE_TRANSITIVE: u8 = 0x03;
    /// Bit marking a type as non-transitive across ASes.
    pub const NON_TRANSITIVE_BIT: u8 = 0x40;
}

/// Sub-type byte values for AS-specific types.
pub mod subtypes {
    /// Route Target (RFC 4360 §4).
    pub const ROUTE_TARGET: u8 = 0x02;
    /// Route Origin (RFC 4360 §5).
    pub const ROUTE_ORIGIN: u8 = 0x03;
}

/// An extended community, decoded where the paper's data needs it and
/// otherwise preserved bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExtendedCommunity {
    /// Two-octet-AS specific route target `rt:asn:value`.
    RouteTarget {
        /// Administrator ASN (16-bit form).
        asn: u16,
        /// Local administrator value.
        value: u32,
    },
    /// Two-octet-AS specific route origin `soo:asn:value`.
    RouteOrigin {
        /// Administrator ASN (16-bit form).
        asn: u16,
        /// Local administrator value.
        value: u32,
    },
    /// Any other extended community, kept as its raw 8 octets.
    Raw([u8; 8]),
}

impl ExtendedCommunity {
    /// Encodes to the 8-octet wire form.
    pub fn to_bytes(self) -> [u8; 8] {
        match self {
            ExtendedCommunity::RouteTarget { asn, value } => {
                encode_two_octet_as(subtypes::ROUTE_TARGET, asn, value)
            }
            ExtendedCommunity::RouteOrigin { asn, value } => {
                encode_two_octet_as(subtypes::ROUTE_ORIGIN, asn, value)
            }
            ExtendedCommunity::Raw(b) => b,
        }
    }

    /// Decodes from the 8-octet wire form; unknown types become `Raw`.
    pub fn from_bytes(b: [u8; 8]) -> Self {
        if b[0] == types::TWO_OCTET_AS_TRANSITIVE {
            let asn = u16::from_be_bytes([b[2], b[3]]);
            let value = u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
            match b[1] {
                subtypes::ROUTE_TARGET => return ExtendedCommunity::RouteTarget { asn, value },
                subtypes::ROUTE_ORIGIN => return ExtendedCommunity::RouteOrigin { asn, value },
                _ => {}
            }
        }
        ExtendedCommunity::Raw(b)
    }

    /// True if the community is transitive across AS boundaries
    /// (the non-transitive bit of the type byte is clear).
    pub fn is_transitive(self) -> bool {
        self.to_bytes()[0] & types::NON_TRANSITIVE_BIT == 0
    }
}

fn encode_two_octet_as(subtype: u8, asn: u16, value: u32) -> [u8; 8] {
    let a = asn.to_be_bytes();
    let v = value.to_be_bytes();
    [types::TWO_OCTET_AS_TRANSITIVE, subtype, a[0], a[1], v[0], v[1], v[2], v[3]]
}

impl fmt::Display for ExtendedCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtendedCommunity::RouteTarget { asn, value } => write!(f, "rt:{asn}:{value}"),
            ExtendedCommunity::RouteOrigin { asn, value } => write!(f, "soo:{asn}:{value}"),
            ExtendedCommunity::Raw(b) => {
                write!(f, "raw:")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_target_roundtrip() {
        let rt = ExtendedCommunity::RouteTarget { asn: 65000, value: 100 };
        let bytes = rt.to_bytes();
        assert_eq!(bytes[0], 0x00);
        assert_eq!(bytes[1], 0x02);
        assert_eq!(ExtendedCommunity::from_bytes(bytes), rt);
    }

    #[test]
    fn route_origin_roundtrip() {
        let soo = ExtendedCommunity::RouteOrigin { asn: 3356, value: 7 };
        assert_eq!(ExtendedCommunity::from_bytes(soo.to_bytes()), soo);
    }

    #[test]
    fn unknown_types_preserved() {
        let raw = [0x43, 0x99, 1, 2, 3, 4, 5, 6];
        let ec = ExtendedCommunity::from_bytes(raw);
        assert_eq!(ec, ExtendedCommunity::Raw(raw));
        assert_eq!(ec.to_bytes(), raw);
    }

    #[test]
    fn transitivity_bit() {
        assert!(ExtendedCommunity::RouteTarget { asn: 1, value: 1 }.is_transitive());
        assert!(!ExtendedCommunity::Raw([0x40, 0, 0, 0, 0, 0, 0, 0]).is_transitive());
        assert!(ExtendedCommunity::Raw([0x03, 0, 0, 0, 0, 0, 0, 0]).is_transitive());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            ExtendedCommunity::RouteTarget { asn: 65000, value: 100 }.to_string(),
            "rt:65000:100"
        );
        assert_eq!(
            ExtendedCommunity::Raw([0xff, 0, 0, 0, 0, 0, 0, 1]).to_string(),
            "raw:ff00000000000001"
        );
    }
}
