//! AS paths.
//!
//! An AS path is a list of segments (RFC 4271 §4.3); in practice almost all
//! paths are a single `AS_SEQUENCE`. The paper's classifier needs three
//! notions of path comparison:
//!
//! 1. **identity** — the wire-level path, including prepending;
//! 2. **AS-set equality** — "the set of ASes are equal", which turns a path
//!    change into a *prepend-only* change (`xc`/`xn` types);
//! 3. **origin/peer extraction** — for grouping by origin and for the data
//!    cleaning step that inserts a route server's ASN when missing.

use std::fmt;
use std::str::FromStr;

use crate::asn::Asn;

/// Kind of a path segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Ordered `AS_SEQUENCE`.
    Sequence,
    /// Unordered `AS_SET` (result of aggregation).
    Set,
    /// `AS_CONFED_SEQUENCE` (RFC 5065), confined to a confederation.
    ConfedSequence,
    /// `AS_CONFED_SET` (RFC 5065).
    ConfedSet,
}

/// One AS-path segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathSegment {
    /// The segment kind.
    pub kind: SegmentKind,
    /// The ASNs in the segment (order meaningful only for sequences).
    pub asns: Vec<Asn>,
}

impl PathSegment {
    /// Creates an `AS_SEQUENCE` segment.
    pub fn sequence<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        PathSegment { kind: SegmentKind::Sequence, asns: asns.into_iter().collect() }
    }

    /// Creates an `AS_SET` segment.
    pub fn set<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        PathSegment { kind: SegmentKind::Set, asns: asns.into_iter().collect() }
    }
}

/// A full AS path: a list of segments.
///
/// The common single-sequence case is constructed with [`AsPath::from_asns`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AsPath {
    segments: Vec<PathSegment>,
}

impl AsPath {
    /// An empty path (as sent between iBGP peers for locally originated
    /// routes).
    pub fn empty() -> Self {
        AsPath { segments: Vec::new() }
    }

    /// Builds the common single-`AS_SEQUENCE` path. The *first* ASN is the
    /// neighbor the route was heard from (leftmost), the *last* is the
    /// origin.
    pub fn from_asns<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        let v: Vec<Asn> = asns.into_iter().collect();
        if v.is_empty() {
            return Self::empty();
        }
        AsPath { segments: vec![PathSegment::sequence(v)] }
    }

    /// Builds a path from raw segments.
    pub fn from_segments(segments: Vec<PathSegment>) -> Self {
        AsPath { segments }
    }

    /// The segments.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// True if the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.asns.is_empty())
    }

    /// All ASNs in wire order (sets contribute their members in stored
    /// order).
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns.iter().copied())
    }

    /// The sorted, deduplicated set of ASNs on the path — the paper's
    /// "set of ASes" used to detect prepend-only changes.
    pub fn as_set(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.asns().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True if `self` and `other` differ as paths but cover the same set of
    /// ASes — i.e. the difference is (de-)prepending.
    pub fn same_as_set(&self, other: &AsPath) -> bool {
        self.as_set() == other.as_set()
    }

    /// The leftmost ASN: the peer the route was heard from.
    pub fn first(&self) -> Option<Asn> {
        self.asns().next()
    }

    /// The rightmost ASN: the origin of the route.
    pub fn origin(&self) -> Option<Asn> {
        self.asns().last()
    }

    /// True if `asn` appears anywhere on the path (loop detection, RFC 4271
    /// §9.1.2).
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns().any(|a| a == asn)
    }

    /// Path length for the BGP decision process: each sequence member
    /// counts 1, an entire `AS_SET` counts 1 (RFC 4271 §9.1.2.2 a).
    pub fn decision_length(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s.kind {
                SegmentKind::Sequence => s.asns.len(),
                SegmentKind::Set => usize::from(!s.asns.is_empty()),
                // Confederation segments do not count (RFC 5065 §5.3).
                SegmentKind::ConfedSequence | SegmentKind::ConfedSet => 0,
            })
            .sum()
    }

    /// Number of hops including repeats — the raw visual length.
    pub fn hop_count(&self) -> usize {
        self.asns().count()
    }

    /// Returns a new path with `asn` prepended `times` times, as a router
    /// does when advertising to an eBGP peer (possibly with export
    /// prepending).
    pub fn prepend(&self, asn: Asn, times: usize) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(seg) if seg.kind == SegmentKind::Sequence => {
                for _ in 0..times {
                    seg.asns.insert(0, asn);
                }
            }
            _ => {
                segments.insert(0, PathSegment::sequence(std::iter::repeat_n(asn, times)));
            }
        }
        AsPath { segments }
    }

    /// The path with consecutive duplicate ASNs collapsed — the "core" path
    /// with prepending removed. Two paths with equal cores and equal AS sets
    /// are prepend variants.
    pub fn core_path(&self) -> AsPath {
        let mut segments = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            match seg.kind {
                SegmentKind::Sequence | SegmentKind::ConfedSequence => {
                    let mut asns: Vec<Asn> = Vec::with_capacity(seg.asns.len());
                    for &a in &seg.asns {
                        if asns.last() != Some(&a) {
                            asns.push(a);
                        }
                    }
                    segments.push(PathSegment { kind: seg.kind, asns });
                }
                _ => segments.push(seg.clone()),
            }
        }
        AsPath { segments }
    }

    /// Heap bytes held by the path: the segment vector plus every
    /// segment's ASN vector, counted at capacity.
    pub fn heap_bytes(&self) -> usize {
        self.segments.capacity() * std::mem::size_of::<PathSegment>()
            + self
                .segments
                .iter()
                .map(|s| s.asns.capacity() * std::mem::size_of::<Asn>())
                .sum::<usize>()
    }

    /// True if the path contains any prepending (a consecutive repeat).
    pub fn has_prepending(&self) -> bool {
        self.segments.iter().any(|s| {
            matches!(s.kind, SegmentKind::Sequence | SegmentKind::ConfedSequence)
                && s.asns.windows(2).any(|w| w[0] == w[1])
        })
    }
}

impl fmt::Display for AsPath {
    /// Space-separated ASNs; `AS_SET`s in braces: `20205 3356 {174 209}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg.kind {
                SegmentKind::Sequence | SegmentKind::ConfedSequence => {
                    let mut inner_first = true;
                    for a in &seg.asns {
                        if !inner_first {
                            write!(f, " ")?;
                        }
                        inner_first = false;
                        write!(f, "{a}")?;
                    }
                }
                SegmentKind::Set | SegmentKind::ConfedSet => {
                    write!(f, "{{")?;
                    let mut inner_first = true;
                    for a in &seg.asns {
                        if !inner_first {
                            write!(f, " ")?;
                        }
                        inner_first = false;
                        write!(f, "{a}")?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

/// Error parsing an AS path from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsPathError(String);

impl fmt::Display for ParseAsPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS path: {:?}", self.0)
    }
}

impl std::error::Error for ParseAsPathError {}

impl FromStr for AsPath {
    type Err = ParseAsPathError;

    /// Parses the `Display` form: space-separated ASNs with `{...}` sets.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAsPathError(s.to_owned());
        let mut segments: Vec<PathSegment> = Vec::new();
        let mut seq: Vec<Asn> = Vec::new();
        let mut rest = s.trim();
        while !rest.is_empty() {
            if let Some(after) = rest.strip_prefix('{') {
                if !seq.is_empty() {
                    segments.push(PathSegment::sequence(std::mem::take(&mut seq)));
                }
                let (inner, tail) = after.split_once('}').ok_or_else(err)?;
                let asns: Result<Vec<Asn>, _> =
                    inner.split_whitespace().map(|t| t.parse::<Asn>()).collect();
                segments.push(PathSegment::set(asns.map_err(|_| err())?));
                rest = tail.trim_start();
            } else {
                let (tok, tail) = match rest.find(|c: char| c.is_whitespace() || c == '{') {
                    Some(pos) => rest.split_at(pos),
                    None => (rest, ""),
                };
                seq.push(tok.trim().parse::<Asn>().map_err(|_| err())?);
                rest = tail.trim_start();
            }
        }
        if !seq.is_empty() {
            segments.push(PathSegment::sequence(seq));
        }
        Ok(AsPath { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(asns: &[u32]) -> AsPath {
        AsPath::from_asns(asns.iter().map(|&a| Asn(a)))
    }

    #[test]
    fn display_and_parse_roundtrip() {
        // The path from the paper's Figure 4.
        let p = path(&[20_205, 3356, 174, 12_654]);
        assert_eq!(p.to_string(), "20205 3356 174 12654");
        assert_eq!("20205 3356 174 12654".parse::<AsPath>().unwrap(), p);
    }

    #[test]
    fn parse_with_as_set() {
        let p: AsPath = "20205 3356 {174 209}".parse().unwrap();
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.segments()[1].kind, SegmentKind::Set);
        assert_eq!(p.to_string(), "20205 3356 {174 209}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("20205 x 174".parse::<AsPath>().is_err());
        assert!("20205 {174".parse::<AsPath>().is_err());
    }

    #[test]
    fn empty_path_parses() {
        let p: AsPath = "".parse().unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn first_and_origin() {
        let p = path(&[20_205, 3356, 174, 12_654]);
        assert_eq!(p.first(), Some(Asn(20_205)));
        assert_eq!(p.origin(), Some(Asn(12_654)));
        assert_eq!(AsPath::empty().origin(), None);
    }

    #[test]
    fn loop_detection() {
        let p = path(&[1, 2, 3]);
        assert!(p.contains(Asn(2)));
        assert!(!p.contains(Asn(9)));
    }

    #[test]
    fn decision_length_counts_set_as_one() {
        let p = AsPath::from_segments(vec![
            PathSegment::sequence([Asn(1), Asn(2)]),
            PathSegment::set([Asn(3), Asn(4), Asn(5)]),
        ]);
        assert_eq!(p.decision_length(), 3);
        assert_eq!(p.hop_count(), 5);
    }

    #[test]
    fn confed_segments_do_not_count() {
        let p = AsPath::from_segments(vec![
            PathSegment { kind: SegmentKind::ConfedSequence, asns: vec![Asn(65001), Asn(65002)] },
            PathSegment::sequence([Asn(1)]),
        ]);
        assert_eq!(p.decision_length(), 1);
    }

    #[test]
    fn prepend_repeats_head() {
        let p = path(&[3356, 12_654]);
        let q = p.prepend(Asn(20_205), 3);
        assert_eq!(q.to_string(), "20205 20205 20205 3356 12654");
        assert!(q.has_prepending());
        assert!(!p.has_prepending());
    }

    #[test]
    fn prepend_onto_empty_path() {
        let p = AsPath::empty().prepend(Asn(7), 2);
        assert_eq!(p.to_string(), "7 7");
    }

    #[test]
    fn core_path_collapses_prepending() {
        let p: AsPath = "20205 3356 3356 3356 12654".parse().unwrap();
        assert_eq!(p.core_path().to_string(), "20205 3356 12654");
    }

    #[test]
    fn same_as_set_detects_prepend_only_change() {
        // The paper's x* rule: paths differ, AS sets equal.
        let a: AsPath = "20205 3356 12654".parse().unwrap();
        let b: AsPath = "20205 3356 3356 12654".parse().unwrap();
        let c: AsPath = "20205 174 12654".parse().unwrap();
        assert_ne!(a, b);
        assert!(a.same_as_set(&b));
        assert!(!a.same_as_set(&c));
    }

    #[test]
    fn as_set_sorted_unique() {
        let p: AsPath = "5 5 3 1 3".parse().unwrap();
        assert_eq!(p.as_set(), vec![Asn(1), Asn(3), Asn(5)]);
    }
}
