//! BGP path attributes.
//!
//! [`PathAttributes`] bundles the attributes the paper's analysis and the
//! simulator's decision process care about. It derives `PartialEq`, so
//! "anything changed?" is `!=`; the classifier refines that into the paper's
//! per-attribute questions (path? communities? MED?).

use std::fmt;
use std::net::{IpAddr, Ipv4Addr};

use crate::as_path::AsPath;
use crate::asn::Asn;
use crate::community_set::CommunitySet;

/// The ORIGIN attribute (RFC 4271 §4.3 / §5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Origin {
    /// Learned from an IGP — preferred by the decision process.
    #[default]
    Igp,
    /// Learned from EGP (historic).
    Egp,
    /// Unknown provenance.
    Incomplete,
}

impl Origin {
    /// Wire value (0/1/2).
    pub const fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// From wire value.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Igp => "IGP",
            Origin::Egp => "EGP",
            Origin::Incomplete => "INCOMPLETE",
        })
    }
}

/// The AGGREGATOR attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Aggregator {
    /// The aggregating AS.
    pub asn: Asn,
    /// The aggregating router's id.
    pub router_id: Ipv4Addr,
}

/// The set of path attributes carried by an announcement.
///
/// `local_pref` is only meaningful on iBGP sessions and is excluded from
/// eBGP wire encoding; `med` is optional and, per the paper, a possible
/// cause of `nn` announcements that must be checked before blaming
/// communities.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathAttributes {
    /// ORIGIN (mandatory).
    pub origin: Origin,
    /// AS_PATH (mandatory).
    pub as_path: AsPath,
    /// NEXT_HOP (mandatory for IPv4 unicast).
    pub next_hop: IpAddr,
    /// MULTI_EXIT_DISC (optional non-transitive).
    pub med: Option<u32>,
    /// LOCAL_PREF (iBGP only).
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE flag.
    pub atomic_aggregate: bool,
    /// AGGREGATOR.
    pub aggregator: Option<Aggregator>,
    /// The community attribute (all three families).
    pub communities: CommunitySet,
}

impl Default for PathAttributes {
    fn default() -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: CommunitySet::new(),
        }
    }
}

impl PathAttributes {
    /// Attributes for a route as announced by its origin AS.
    pub fn originated(next_hop: IpAddr) -> Self {
        PathAttributes { next_hop, ..Default::default() }
    }

    /// True if everything *except* the community attribute is equal —
    /// i.e. a community-only (`nc`) difference when communities differ,
    /// or a pure duplicate (`nn`) when they are equal too.
    pub fn equal_ignoring_communities(&self, other: &PathAttributes) -> bool {
        self.origin == other.origin
            && self.as_path == other.as_path
            && self.next_hop == other.next_hop
            && self.med == other.med
            && self.local_pref == other.local_pref
            && self.atomic_aggregate == other.atomic_aggregate
            && self.aggregator == other.aggregator
    }

    /// Resident bytes of one owned attribute set: the struct itself plus
    /// every heap allocation it holds (AS-path segments and all three
    /// community families), counted at **capacity**, not length — this is
    /// what the allocator actually reserved. The honest input to the
    /// pipeline's constant-memory accounting.
    pub fn deep_footprint(&self) -> usize {
        std::mem::size_of::<Self>() + self.as_path.heap_bytes() + self.communities.heap_bytes()
    }

    /// True if the attributes differ *only* in MED — the paper acknowledges
    /// MED changes as an alternative `nn` explanation at the wire level
    /// (MED is non-transitive and may be stripped before the collector).
    pub fn differs_only_in_med(&self, other: &PathAttributes) -> bool {
        self.med != other.med
            && self.origin == other.origin
            && self.as_path == other.as_path
            && self.next_hop == other.next_hop
            && self.local_pref == other.local_pref
            && self.atomic_aggregate == other.atomic_aggregate
            && self.aggregator == other.aggregator
            && self.communities == other.communities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::Community;

    fn base() -> PathAttributes {
        PathAttributes {
            as_path: "20205 3356 174 12654".parse().unwrap(),
            next_hop: "192.0.2.1".parse().unwrap(),
            ..Default::default()
        }
    }

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(3), None);
    }

    #[test]
    fn origin_ordering_prefers_igp() {
        // Decision process: lower origin code wins.
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn equal_ignoring_communities_detects_nc() {
        let a = base();
        let mut b = base();
        b.communities.insert(Community::from_parts(65000, 400));
        assert!(a.equal_ignoring_communities(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn equal_ignoring_communities_rejects_path_change() {
        let a = base();
        let mut b = base();
        b.as_path = "20205 6939 50304 12654".parse().unwrap();
        assert!(!a.equal_ignoring_communities(&b));
    }

    #[test]
    fn med_only_difference() {
        let a = base();
        let mut b = base();
        b.med = Some(50);
        assert!(a.differs_only_in_med(&b));
        b.communities.insert(Community::from_parts(1, 1));
        assert!(!a.differs_only_in_med(&b));
    }

    #[test]
    fn default_is_empty_route() {
        let d = PathAttributes::default();
        assert!(d.as_path.is_empty());
        assert!(d.communities.is_empty());
        assert_eq!(d.origin, Origin::Igp);
    }
}
