//! Per-stream event processes.
//!
//! Each `(session, prefix)` stream has a template: a small set of
//! candidate routes (paths through transits, each with the geo-tagging
//! transits' ingress-city pools) and a behavior class. Events mutate the
//! stream state and emit announcements whose classifier label *emerges*
//! from what changed:
//!
//! | event        | tagged stream | cleaned/untagged stream |
//! |--------------|---------------|-------------------------|
//! | path change  | `pc`          | `pn`                    |
//! | comm churn   | `nc`          | `nn`                    |
//! | duplicate    | `nn`          | `nn`                    |
//! | prepend      | `xn`/`xc`     | `xn`                    |

use kcc_bgp_types::{AsPath, Asn, Community, CommunitySet, GeoTag, PathAttributes, RouteUpdate};
use rand::prelude::*;
use rand::rngs::StdRng;

#[cfg(test)]
use crate::universe::Universe;
use crate::universe::{PeerSpec, PrefixSpec, TransitSpec};

/// Maps a city id to its full geo tag (continent/country derived
/// deterministically, consistent with the topology generator's blocking).
pub fn city_geo(city: u16) -> GeoTag {
    let country = (city / 8) % 400;
    let continent = (country / 50 + 1).min(7) as u8;
    GeoTag::new(continent, country, city)
}

/// One candidate route of a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PathVariant {
    /// Full AS path from the peer to the origin.
    pub as_path: AsPath,
    /// Geo-tagging transits on the path: `(asn16, city pool)`.
    pub taggers: Vec<(u16, Vec<u16>)>,
}

/// Behavior class of a stream (drives which label its events produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamClass {
    /// Communities visible at the collector (class A).
    TaggedVisible,
    /// Tagged upstream but stripped by the peer on egress (class B).
    TaggedCleaned,
    /// No communities anywhere on the path (class C).
    Untagged,
}

/// A stream's static description.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamTemplate {
    /// Candidate routes (index 0 is the primary).
    pub paths: Vec<PathVariant>,
    /// Behavior class.
    pub class: StreamClass,
    /// Static non-geo communities (relation tags etc.) present on tagged
    /// streams.
    pub base_communities: CommunitySet,
    /// True if the peer omits its own ASN (route server).
    pub route_server_peer: bool,
    /// The peer's ASN (first hop of every path).
    pub peer_asn: Asn,
    /// Next hop presented to the collector.
    pub next_hop: std::net::IpAddr,
}

/// Mutable state of a stream as events unfold.
#[derive(Debug, Clone)]
pub struct StreamState {
    /// Current candidate route index.
    pub path_idx: usize,
    /// Current city choice per tagger of the current path.
    pub cities: Vec<u16>,
    /// Current prepend toggle.
    pub prepended: bool,
    /// Current MED.
    pub med: Option<u32>,
}

/// Event process weights (must sum to ~1; normalized on use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventWeights {
    /// Path-change events.
    pub path: f64,
    /// Community-churn events.
    pub comm: f64,
    /// Duplicate events.
    pub dup: f64,
    /// Prepend toggles.
    pub prepend: f64,
}

/// Stream process configuration. Defaults are calibrated so the emergent
/// type mix lands near the paper's Table 2 (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamProcessConfig {
    /// Weights on tagged (A/B) streams.
    pub weights_tagged: EventWeights,
    /// Weights on untagged (C) streams.
    pub weights_untagged: EventWeights,
    /// Probability a path change is preceded by an explicit withdrawal
    /// (origin flap rather than silent reroute).
    pub withdraw_given_path: f64,
    /// Probability a duplicate wiggles the MED (visible `nn_med_only`).
    pub med_wiggle_prob: f64,
    /// Probability a prepend toggle also rotates a community (`xc`).
    pub xc_given_prepend: f64,
}

impl Default for StreamProcessConfig {
    fn default() -> Self {
        StreamProcessConfig {
            weights_tagged: EventWeights { path: 0.48, comm: 0.35, dup: 0.16, prepend: 0.01 },
            weights_untagged: EventWeights { path: 0.48, comm: 0.0, dup: 0.51, prepend: 0.01 },
            withdraw_given_path: 0.08,
            med_wiggle_prob: 0.3,
            xc_given_prepend: 0.3,
        }
    }
}

impl StreamTemplate {
    /// Builds a template for `(peer, prefix)` given the universe's transit
    /// pool. `class_roll` decides the behavior class.
    pub fn build(
        rng: &mut StdRng,
        peer: &PeerSpec,
        prefix_spec: &PrefixSpec,
        transits: &[TransitSpec],
        class: StreamClass,
        next_hop: std::net::IpAddr,
    ) -> StreamTemplate {
        let n_paths = rng.gen_range(2..=3);
        let mut paths = Vec::with_capacity(n_paths);
        let tagging: Vec<&TransitSpec> = transits.iter().filter(|t| t.tags_geo).collect();
        let plain: Vec<&TransitSpec> = transits.iter().filter(|t| !t.tags_geo).collect();
        for _ in 0..n_paths {
            let hops = rng.gen_range(1..=2);
            let mut asns = vec![peer.asn];
            let mut taggers = Vec::new();
            for _ in 0..hops {
                let use_tagger = class != StreamClass::Untagged && !tagging.is_empty();
                let t = if use_tagger {
                    tagging[rng.gen_range(0..tagging.len())]
                } else if !plain.is_empty() {
                    plain[rng.gen_range(0..plain.len())]
                } else {
                    tagging[rng.gen_range(0..tagging.len())]
                };
                if asns.contains(&t.asn) {
                    continue;
                }
                asns.push(t.asn);
                if use_tagger && t.tags_geo {
                    taggers.push((t.asn.value() as u16, t.cities.clone()));
                }
            }
            asns.push(prefix_spec.origin);
            paths.push(PathVariant { as_path: AsPath::from_asns(asns), taggers });
        }
        let mut base_communities = CommunitySet::new();
        if class != StreamClass::Untagged {
            // A static relation tag from the first transit.
            if let Some(first) = paths[0].as_path.asns().nth(1) {
                base_communities.insert(Community::from_parts(
                    first.value() as u16,
                    100 + (peer.asn.value() % 50) as u16,
                ));
            }
        }
        StreamTemplate {
            paths,
            class,
            base_communities,
            route_server_peer: peer.route_server,
            peer_asn: peer.asn,
            next_hop,
        }
    }

    /// Fresh state with randomized city choices.
    pub fn initial_state(&self, rng: &mut StdRng) -> StreamState {
        let cities = self.paths[0]
            .taggers
            .iter()
            .map(|(_, pool)| pool[rng.gen_range(0..pool.len())])
            .collect();
        StreamState { path_idx: 0, cities, prepended: false, med: None }
    }

    /// Renders the current state into wire-visible attributes, applying
    /// route-server omission and peer egress cleaning.
    pub fn attrs(&self, state: &StreamState) -> PathAttributes {
        let variant = &self.paths[state.path_idx];
        let mut as_path = variant.as_path.clone();
        if state.prepended {
            if let Some(first) = as_path.first() {
                as_path = as_path.prepend(first, 2);
            }
        }
        if self.route_server_peer {
            // Route server: drop the peer's own ASN from the front.
            let rest: Vec<Asn> = as_path.asns().skip(1).collect();
            as_path = AsPath::from_asns(rest);
        }
        let mut communities = self.base_communities.clone();
        for ((asn16, _pool), city) in variant.taggers.iter().zip(&state.cities) {
            city_geo(*city).tag(*asn16, &mut communities);
        }
        if self.class == StreamClass::TaggedCleaned {
            communities.clear();
        }
        PathAttributes {
            as_path,
            next_hop: self.next_hop,
            med: state.med,
            communities,
            ..Default::default()
        }
    }

    /// Applies a path-change event.
    pub fn advance_path(&self, rng: &mut StdRng, state: &mut StreamState) {
        state.path_idx = (state.path_idx + 1) % self.paths.len();
        state.cities = self.paths[state.path_idx]
            .taggers
            .iter()
            .map(|(_, pool)| pool[rng.gen_range(0..pool.len())])
            .collect();
    }

    /// Applies a community-churn event: rotate one tagger's city. Returns
    /// false when the current path has no taggers (nothing to churn).
    pub fn churn_community(&self, rng: &mut StdRng, state: &mut StreamState) -> bool {
        if state.cities.is_empty() {
            return false;
        }
        let i = rng.gen_range(0..state.cities.len());
        let pool = &self.paths[state.path_idx].taggers[i].1;
        if pool.len() < 2 {
            return false;
        }
        let current = state.cities[i];
        let mut next = pool[rng.gen_range(0..pool.len())];
        let mut guard = 0;
        while next == current && guard < 8 {
            next = pool[rng.gen_range(0..pool.len())];
            guard += 1;
        }
        if next == current {
            return false;
        }
        state.cities[i] = next;
        true
    }
}

/// Samples a heavy-tailed per-stream event count with the given mean
/// (exponential, capped).
pub fn sample_event_count(rng: &mut StdRng, mean: f64, cap: usize) -> usize {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    ((-mean * (1.0 - u).ln()) as usize).min(cap)
}

/// Generates one stream's day of updates into `out`.
#[allow(clippy::too_many_arguments)]
pub fn generate_stream(
    rng: &mut StdRng,
    template: &StreamTemplate,
    cfg: &StreamProcessConfig,
    prefix: kcc_bgp_types::Prefix,
    n_events: usize,
    day_us: u64,
    out: &mut Vec<RouteUpdate>,
) {
    let mut state = template.initial_state(rng);
    // Stream-initial announcement near day start.
    let t0 = rng.gen_range(0..60_000_000u64);
    out.push(RouteUpdate::announce(t0, prefix, template.attrs(&state)));

    let mut times: Vec<u64> = (0..n_events).map(|_| rng.gen_range(60_000_000..day_us)).collect();
    times.sort_unstable();

    let weights = match template.class {
        StreamClass::Untagged => cfg.weights_untagged,
        _ => cfg.weights_tagged,
    };
    let total = weights.path + weights.comm + weights.dup + weights.prepend;

    for t in times {
        let roll: f64 = rng.gen_range(0.0..total);
        if roll < weights.path {
            // Path change, possibly with an explicit withdraw first.
            if rng.gen_bool(cfg.withdraw_given_path) {
                out.push(RouteUpdate::withdraw(t, prefix));
                template.advance_path(rng, &mut state);
                out.push(RouteUpdate::announce(
                    t + rng.gen_range(1_000_000u64..5_000_000),
                    prefix,
                    template.attrs(&state),
                ));
            } else {
                template.advance_path(rng, &mut state);
                out.push(RouteUpdate::announce(t, prefix, template.attrs(&state)));
            }
        } else if roll < weights.path + weights.comm {
            if template.churn_community(rng, &mut state) {
                out.push(RouteUpdate::announce(t, prefix, template.attrs(&state)));
            } else {
                // Nothing to churn: degenerate to a duplicate.
                out.push(RouteUpdate::announce(t, prefix, template.attrs(&state)));
            }
        } else if roll < weights.path + weights.comm + weights.dup {
            if rng.gen_bool(cfg.med_wiggle_prob) {
                state.med = Some(rng.gen_range(0..100));
            }
            out.push(RouteUpdate::announce(t, prefix, template.attrs(&state)));
        } else {
            state.prepended = !state.prepended;
            if template.class == StreamClass::TaggedVisible && rng.gen_bool(cfg.xc_given_prepend) {
                template.churn_community(rng, &mut state);
            }
            out.push(RouteUpdate::announce(t, prefix, template.attrs(&state)));
        }
    }
    // Withdraw/re-announce pairs extend past the next event time; restore
    // global arrival order (stable, so same-time emission order holds).
    out.sort_by_key(|u| u.time_us);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{build_universe, UniverseConfig};
    use kcc_bgp_types::Prefix;

    fn setup() -> (StdRng, Universe) {
        let (u, _) = build_universe(&UniverseConfig::default());
        (StdRng::seed_from_u64(7), u)
    }

    fn template(class: StreamClass) -> (StdRng, StreamTemplate, Prefix) {
        let (mut rng, u) = setup();
        let peer = &u.peers[0];
        let spec = &u.prefixes[0];
        let t = StreamTemplate::build(
            &mut rng,
            peer,
            spec,
            &u.transits,
            class,
            "192.0.2.1".parse().unwrap(),
        );
        (rng, t, spec.prefix)
    }

    #[test]
    fn tagged_attrs_carry_geo_communities() {
        let (mut rng, t, _) = template(StreamClass::TaggedVisible);
        let state = t.initial_state(&mut rng);
        let attrs = t.attrs(&state);
        if !t.paths[0].taggers.is_empty() {
            assert!(!attrs.communities.is_empty());
        }
        assert_eq!(attrs.as_path.first(), Some(t.peer_asn));
    }

    #[test]
    fn cleaned_streams_have_no_visible_communities() {
        let (mut rng, t, _) = template(StreamClass::TaggedCleaned);
        let state = t.initial_state(&mut rng);
        assert!(t.attrs(&state).communities.is_empty());
    }

    #[test]
    fn path_change_changes_path() {
        let (mut rng, t, _) = template(StreamClass::TaggedVisible);
        let mut state = t.initial_state(&mut rng);
        let before = t.attrs(&state).as_path;
        t.advance_path(&mut rng, &mut state);
        let after = t.attrs(&state).as_path;
        assert_ne!(before, after, "candidate paths must differ");
    }

    #[test]
    fn comm_churn_changes_only_communities() {
        let (mut rng, t, _) = template(StreamClass::TaggedVisible);
        let mut state = t.initial_state(&mut rng);
        if t.paths[0].taggers.iter().all(|(_, pool)| pool.len() < 2) {
            return; // degenerate template; other seeds cover this
        }
        let before = t.attrs(&state);
        if t.churn_community(&mut rng, &mut state) {
            let after = t.attrs(&state);
            assert_eq!(before.as_path, after.as_path);
            assert_ne!(before.communities, after.communities);
        }
    }

    #[test]
    fn prepend_keeps_as_set() {
        let (mut rng, t, _) = template(StreamClass::Untagged);
        let mut state = t.initial_state(&mut rng);
        let before = t.attrs(&state).as_path;
        state.prepended = true;
        let after = t.attrs(&state).as_path;
        assert_ne!(before, after);
        assert!(before.same_as_set(&after));
    }

    #[test]
    fn route_server_omits_peer_asn() {
        let (mut rng, u) = setup();
        let mut peer = u.peers[0].clone();
        peer.route_server = true;
        let spec = &u.prefixes[0];
        let t = StreamTemplate::build(
            &mut rng,
            &peer,
            spec,
            &u.transits,
            StreamClass::TaggedVisible,
            "192.0.2.1".parse().unwrap(),
        );
        let state = t.initial_state(&mut rng);
        assert_ne!(t.attrs(&state).as_path.first(), Some(peer.asn));
    }

    #[test]
    fn stream_generation_is_ordered_and_sized() {
        let (mut rng, t, prefix) = template(StreamClass::TaggedVisible);
        let mut out = Vec::new();
        generate_stream(
            &mut rng,
            &t,
            &StreamProcessConfig::default(),
            prefix,
            50,
            86_400_000_000,
            &mut out,
        );
        assert!(out.len() >= 51); // initial + events (+ withdraw pairs)
        for w in out.windows(2) {
            assert!(w[0].time_us <= w[1].time_us, "updates must be time-ordered");
        }
        assert!(out[0].is_announcement());
    }

    #[test]
    fn event_count_sampling_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sample_event_count(&mut rng, 3.0, 50) <= 50);
        }
        // Mean roughly respected.
        let total: usize = (0..5000).map(|_| sample_event_count(&mut rng, 3.0, 1000)).sum();
        let mean = total as f64 / 5000.0;
        assert!(mean > 2.0 && mean < 4.0, "mean {mean} out of band");
    }
}
