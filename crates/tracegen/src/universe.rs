//! The generated measurement universe: collectors, peers, transits,
//! origins, prefixes.

use std::net::{IpAddr, Ipv4Addr};

use kcc_bgp_types::{Asn, Prefix};
use kcc_collector::SessionKey;
use rand::prelude::*;
use rand::rngs::StdRng;

/// One collector peer with its sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerSpec {
    /// The peer's ASN.
    pub asn: Asn,
    /// Sessions this peer maintains (possibly at several collectors).
    pub sessions: Vec<SessionKey>,
    /// True if the peer strips all communities before exporting to the
    /// collector (the class-B behavior behind `nn` streams).
    pub cleans_egress: bool,
    /// True for IXP route servers that omit their own ASN from paths.
    pub route_server: bool,
}

/// One transit AS that may geo-tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitSpec {
    /// The transit's ASN (16-bit by construction).
    pub asn: Asn,
    /// True if it tags ingress geolocation communities.
    pub tags_geo: bool,
    /// The pool of city ids its border routers sit in.
    pub cities: Vec<u16>,
}

/// One origin prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixSpec {
    /// The prefix.
    pub prefix: Prefix,
    /// The originating AS.
    pub origin: Asn,
}

/// The whole universe.
#[derive(Debug, Clone, Default)]
pub struct Universe {
    /// Collector names (`rrc00`…, `route-views…`).
    pub collectors: Vec<String>,
    /// Peers with their sessions.
    pub peers: Vec<PeerSpec>,
    /// Transit ASes.
    pub transits: Vec<TransitSpec>,
    /// Origin ASes (distinct from transits).
    pub origins: Vec<Asn>,
    /// Prefixes.
    pub prefixes: Vec<PrefixSpec>,
}

/// Universe shape parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct UniverseConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of collectors.
    pub n_collectors: usize,
    /// Number of distinct peer ASes.
    pub n_peers: usize,
    /// Target number of sessions (≥ peers; extras are additional sessions
    /// of randomly chosen peers, as in the real collector systems).
    pub n_sessions: usize,
    /// Number of transit ASes.
    pub n_transits: usize,
    /// Number of origin ASes.
    pub n_origins: usize,
    /// Number of IPv4 prefixes.
    pub n_prefixes_v4: usize,
    /// Number of IPv6 prefixes.
    pub n_prefixes_v6: usize,
    /// Probability a transit geo-tags.
    pub transit_tags_prob: f64,
    /// Probability a peer cleans communities on egress.
    pub peer_cleans_prob: f64,
    /// Probability a peer is a route server.
    pub route_server_prob: f64,
    /// Probability a collector records second-granularity timestamps.
    pub second_granularity_prob: f64,
    /// Cities per tagging transit.
    pub cities_per_transit: (u16, u16),
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            seed: 42,
            n_collectors: 8,
            n_peers: 58,
            n_sessions: 150,
            n_transits: 40,
            n_origins: 300,
            n_prefixes_v4: 2_000,
            n_prefixes_v6: 200,
            transit_tags_prob: 0.55,
            peer_cleans_prob: 0.18,
            route_server_prob: 0.08,
            second_granularity_prob: 0.25,
            cities_per_transit: (4, 24),
        }
    }
}

/// Which collectors record second-granularity timestamps (index-aligned
/// with `Universe::collectors`).
#[derive(Debug, Clone, Default)]
pub struct CollectorTraits {
    /// Per-collector second-granularity flag.
    pub second_granularity: Vec<bool>,
}

/// Builds a universe and the per-collector traits.
pub fn build_universe(cfg: &UniverseConfig) -> (Universe, CollectorTraits) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut u = Universe::default();

    for i in 0..cfg.n_collectors {
        u.collectors.push(if i < 16 {
            format!("rrc{i:02}")
        } else {
            format!("route-views{}", i - 15)
        });
    }
    let traits = CollectorTraits {
        second_granularity: (0..cfg.n_collectors)
            .map(|_| rng.gen_bool(cfg.second_granularity_prob))
            .collect(),
    };

    // Transit ASes: 16-bit, from the "famous transit" range upward.
    for i in 0..cfg.n_transits {
        let asn = Asn(2_000 + i as u32 * 7 % 30_000);
        let tags_geo = rng.gen_bool(cfg.transit_tags_prob);
        let n_cities = rng.gen_range(
            cfg.cities_per_transit.0..=cfg.cities_per_transit.1.max(cfg.cities_per_transit.0),
        );
        let cities = (0..n_cities).map(|_| rng.gen_range(0..3_500)).collect();
        u.transits.push(TransitSpec { asn, tags_geo, cities });
    }

    // Peers: distinct ASNs, then distribute sessions.
    for i in 0..cfg.n_peers {
        u.peers.push(PeerSpec {
            asn: Asn(20_100 + i as u32),
            sessions: Vec::new(),
            cleans_egress: rng.gen_bool(cfg.peer_cleans_prob),
            route_server: rng.gen_bool(cfg.route_server_prob),
        });
    }
    for s in 0..cfg.n_sessions {
        let peer_idx = if s < cfg.n_peers { s } else { rng.gen_range(0..cfg.n_peers) };
        let collector = u.collectors[rng.gen_range(0..u.collectors.len())].clone();
        // The session ordinal keys a unique address per session.
        let serial = s as u32;
        let ip = IpAddr::V4(Ipv4Addr::new(
            192,
            ((serial >> 8) & 0xFF) as u8,
            (serial & 0xFF) as u8,
            (peer_idx % 250) as u8 + 1,
        ));
        let asn = u.peers[peer_idx].asn;
        u.peers[peer_idx].sessions.push(SessionKey::new(&collector, asn, ip));
    }

    // Origins and prefixes.
    for i in 0..cfg.n_origins {
        u.origins.push(Asn(50_000 + i as u32 % 14_000));
    }
    for i in 0..cfg.n_prefixes_v4 {
        let origin = u.origins[i % u.origins.len()];
        let a = (i / 65_536) as u8 + 1;
        let b = ((i / 256) % 256) as u8;
        let c = (i % 256) as u8;
        u.prefixes.push(PrefixSpec { prefix: Prefix::v4_unchecked(a, b, c, 0, 24), origin });
    }
    for i in 0..cfg.n_prefixes_v6 {
        let origin = u.origins[(i * 7) % u.origins.len()];
        let prefix: Prefix =
            format!("2001:db8:{:x}::/48", i & 0xFFFF).parse().expect("generated v6 prefix");
        u.prefixes.push(PrefixSpec { prefix, origin });
    }

    (u, traits)
}

impl Universe {
    /// All session keys across peers.
    pub fn all_sessions(&self) -> Vec<(&PeerSpec, &SessionKey)> {
        self.peers.iter().flat_map(|p| p.sessions.iter().map(move |s| (p, s))).collect()
    }

    /// Whether a collector has second-granularity timestamps.
    pub fn collector_index(&self, name: &str) -> Option<usize> {
        self.collectors.iter().position(|c| c == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = UniverseConfig::default();
        let (a, ta) = build_universe(&cfg);
        let (b, tb) = build_universe(&cfg);
        assert_eq!(a.peers, b.peers);
        assert_eq!(a.prefixes, b.prefixes);
        assert_eq!(ta.second_granularity, tb.second_granularity);
    }

    #[test]
    fn session_and_peer_counts() {
        let cfg = UniverseConfig::default();
        let (u, _) = build_universe(&cfg);
        assert_eq!(u.peers.len(), cfg.n_peers);
        let total_sessions: usize = u.peers.iter().map(|p| p.sessions.len()).sum();
        assert_eq!(total_sessions, cfg.n_sessions);
        // Every peer has at least one session.
        assert!(u.peers.iter().all(|p| !p.sessions.is_empty()));
    }

    #[test]
    fn session_keys_unique() {
        let (u, _) = build_universe(&UniverseConfig::default());
        let mut keys: Vec<&SessionKey> = u.peers.iter().flat_map(|p| &p.sessions).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn prefix_counts_and_families() {
        let cfg = UniverseConfig::default();
        let (u, _) = build_universe(&cfg);
        let v4 = u.prefixes.iter().filter(|p| p.prefix.is_ipv4()).count();
        let v6 = u.prefixes.iter().filter(|p| p.prefix.is_ipv6()).count();
        assert_eq!(v4, cfg.n_prefixes_v4);
        assert_eq!(v6, cfg.n_prefixes_v6);
    }

    #[test]
    fn some_transits_tag() {
        let (u, _) = build_universe(&UniverseConfig::default());
        let taggers = u.transits.iter().filter(|t| t.tags_geo).count();
        assert!(taggers > 0 && taggers < u.transits.len());
        for t in u.transits.iter().filter(|t| t.tags_geo) {
            assert!(!t.cities.is_empty());
        }
    }

    #[test]
    fn behavior_mix_present() {
        let (u, _) = build_universe(&UniverseConfig::default());
        assert!(u.peers.iter().any(|p| p.cleans_egress));
        assert!(u.peers.iter().any(|p| !p.cleans_egress));
    }
}
