//! Beacon stream generation.
//!
//! Beacon prefixes follow the RIS timetable exactly; what varies per
//! session is how convergence *looks*: each announcement phase re-installs
//! the primary route (`pc` against the last explored state), and each
//! withdrawal phase triggers path exploration — a few steps across backup
//! routes (`pc`) with community exploration in between (`nc`, or `nn`
//! through cleaning peers) — before the final withdrawal arrives.

use kcc_bgp_types::{Prefix, RouteUpdate};
use kcc_collector::{BeaconEvent, BeaconSchedule};
use rand::prelude::*;
use rand::rngs::StdRng;

#[cfg(test)]
use crate::streams::StreamClass;
use crate::streams::StreamTemplate;

/// Beacon burst shape parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconBurstConfig {
    /// Path-exploration steps per withdrawal phase (inclusive range).
    pub path_steps: (usize, usize),
    /// Community-exploration steps per withdrawal phase.
    pub comm_steps: (usize, usize),
    /// Maximum jitter of the first burst message after the phase start.
    pub start_jitter_us: u64,
    /// Spacing range between burst messages.
    pub step_spacing_us: (u64, u64),
}

impl Default for BeaconBurstConfig {
    fn default() -> Self {
        BeaconBurstConfig {
            path_steps: (1, 3),
            comm_steps: (0, 1),
            start_jitter_us: 45_000_000,              // ≤ 45 s
            step_spacing_us: (5_000_000, 60_000_000), // 5–60 s (MRAI-ish)
        }
    }
}

/// Generates one `(session, beacon prefix)` day following `schedule`.
pub fn generate_beacon_stream(
    rng: &mut StdRng,
    template: &StreamTemplate,
    schedule: &BeaconSchedule,
    burst: &BeaconBurstConfig,
    prefix: Prefix,
    day_offset_us: u64,
    out: &mut Vec<RouteUpdate>,
) {
    let mut state = template.initial_state(rng);
    for (phase_start, event) in schedule.day_events() {
        let t0 = day_offset_us + phase_start + rng.gen_range(1_000_000..burst.start_jitter_us);
        match event {
            BeaconEvent::Announce => {
                // Converge back to the primary route.
                state.path_idx = 0;
                state.cities = template.paths[0]
                    .taggers
                    .iter()
                    .map(|(_, pool)| pool[rng.gen_range(0..pool.len())])
                    .collect();
                out.push(RouteUpdate::announce(t0, prefix, template.attrs(&state)));
            }
            BeaconEvent::Withdraw => {
                let mut t = t0;
                let spacing = |rng: &mut StdRng| {
                    rng.gen_range(burst.step_spacing_us.0..=burst.step_spacing_us.1)
                };
                let path_steps = rng.gen_range(burst.path_steps.0..=burst.path_steps.1);
                let comm_steps = rng.gen_range(burst.comm_steps.0..=burst.comm_steps.1);
                for _ in 0..path_steps {
                    template.advance_path(rng, &mut state);
                    out.push(RouteUpdate::announce(t, prefix, template.attrs(&state)));
                    t += spacing(rng);
                }
                for _ in 0..comm_steps {
                    template.churn_community(rng, &mut state);
                    out.push(RouteUpdate::announce(t, prefix, template.attrs(&state)));
                    t += spacing(rng);
                }
                out.push(RouteUpdate::withdraw(t, prefix));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{build_universe, UniverseConfig};
    use kcc_collector::BeaconPhase;

    fn template(class: StreamClass) -> (StdRng, StreamTemplate, Prefix) {
        let (u, _) = build_universe(&UniverseConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        let spec = crate::universe::PrefixSpec {
            prefix: "84.205.64.0/24".parse().unwrap(),
            origin: kcc_bgp_types::Asn(12_654),
        };
        let t = StreamTemplate::build(
            &mut rng,
            &u.peers[0],
            &spec,
            &u.transits,
            class,
            "192.0.2.1".parse().unwrap(),
        );
        (rng, t, spec.prefix)
    }

    #[test]
    fn six_withdrawals_per_day() {
        let (mut rng, t, prefix) = template(StreamClass::TaggedVisible);
        let mut out = Vec::new();
        generate_beacon_stream(
            &mut rng,
            &t,
            &BeaconSchedule::default(),
            &BeaconBurstConfig::default(),
            prefix,
            0,
            &mut out,
        );
        let withdrawals = out.iter().filter(|u| u.is_withdrawal()).count();
        assert_eq!(withdrawals, 6);
        // At least one announcement per phase: ≥ 6 + 6.
        let announcements = out.iter().filter(|u| u.is_announcement()).count();
        assert!(announcements >= 12);
    }

    #[test]
    fn messages_fall_in_their_phases() {
        let (mut rng, t, prefix) = template(StreamClass::TaggedVisible);
        let schedule = BeaconSchedule::default();
        let mut out = Vec::new();
        generate_beacon_stream(
            &mut rng,
            &t,
            &schedule,
            &BeaconBurstConfig::default(),
            prefix,
            0,
            &mut out,
        );
        // Everything generated lies inside a phase window (bursts fit in
        // 15 minutes by construction with default spacings).
        for u in &out {
            let phase = schedule.phase_of(u.time_us % (24 * 3600 * 1_000_000));
            assert_ne!(phase, BeaconPhase::Outside, "update at {} outside phases", u.time_us);
        }
    }

    #[test]
    fn day_offset_shifts_times() {
        let (mut rng, t, prefix) = template(StreamClass::TaggedVisible);
        let day = 24 * 3600 * 1_000_000u64;
        let mut out = Vec::new();
        generate_beacon_stream(
            &mut rng,
            &t,
            &BeaconSchedule::default(),
            &BeaconBurstConfig::default(),
            prefix,
            day,
            &mut out,
        );
        assert!(out.iter().all(|u| u.time_us >= day && u.time_us < 2 * day));
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed: u64| {
            let (u, _) = build_universe(&UniverseConfig::default());
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = crate::universe::PrefixSpec {
                prefix: "84.205.64.0/24".parse().unwrap(),
                origin: kcc_bgp_types::Asn(12_654),
            };
            let t = StreamTemplate::build(
                &mut rng,
                &u.peers[0],
                &spec,
                &u.transits,
                StreamClass::TaggedVisible,
                "192.0.2.1".parse().unwrap(),
            );
            let mut out = Vec::new();
            generate_beacon_stream(
                &mut rng,
                &t,
                &BeaconSchedule::default(),
                &BeaconBurstConfig::default(),
                spec.prefix,
                0,
                &mut out,
            );
            out
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
    }
}
