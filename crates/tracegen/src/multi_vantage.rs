//! Multi-vantage views of one generated day — the synthetic corpus.
//!
//! The paper's dataset is "the same day, observed from many vantage
//! points": every RIS/RouteViews collector records its own session
//! subset of the global update flood, some of them at second
//! granularity. [`VantageSource`] reproduces that shape from
//! [`Mar20Source`]: each vantage deterministically regenerates the full
//! day (same seed → byte-identical flood) and yields only its own
//! collector's sessions, optionally truncating timestamps to whole
//! seconds — RIS's mixed-granularity fleet, with the truncated subset
//! under test control. The union of all vantages is exactly the single
//! merged day the batch generator produces, which is what makes corpus
//! runs over these sources comparable against single-pipeline runs.

use std::collections::HashMap;
use std::sync::Arc;

use kcc_collector::{Corpus, PeerMeta, SessionKey, SourceError, SourceItem, UpdateSource};
use kcc_core::AllocationRegistry;

use crate::mar20::{Mar20Config, Mar20Source};

/// Configuration of a synthetic multi-vantage corpus.
#[derive(Debug, Clone, Default)]
pub struct MultiVantageConfig {
    /// The shared day. `base.universe.n_collectors` is the vantage count
    /// K; sessions are distributed over the collectors by the universe
    /// builder.
    pub base: Mar20Config,
    /// Collector names whose timestamps are truncated to whole seconds
    /// at the vantage (in addition to any collector the universe already
    /// rolled as second-granularity) — the "mixed granularity" knob.
    pub force_second_granularity: Vec<String>,
}

/// One collector's view of the shared generated day.
#[derive(Debug)]
pub struct VantageSource {
    inner: Mar20Source,
    collector: String,
    truncate: bool,
    /// Metas rewritten to second granularity, per session.
    rewritten: HashMap<SessionKey, Arc<PeerMeta>>,
}

impl VantageSource {
    /// The `collector`-named vantage of the day `cfg` describes. The
    /// whole day is regenerated (deterministically) and filtered, so K
    /// vantages can be built — and pulled — independently in parallel.
    pub fn new(cfg: &MultiVantageConfig, collector: &str) -> Self {
        VantageSource {
            inner: Mar20Source::new(&cfg.base),
            collector: collector.to_owned(),
            truncate: cfg.force_second_granularity.iter().any(|c| c == collector),
            rewritten: HashMap::new(),
        }
    }

    /// The allocation registry of the underlying day (identical across
    /// vantages — allocation is global).
    pub fn registry(&self) -> &AllocationRegistry {
        self.inner.registry()
    }

    /// Route-server endpoints of this vantage's sessions.
    pub fn route_server_peers(&self) -> Vec<(kcc_bgp_types::Asn, std::net::IpAddr)> {
        self.inner
            .universe()
            .peers
            .iter()
            .filter(|p| p.route_server)
            .flat_map(|p| p.sessions.iter())
            .filter(|k| k.collector == self.collector)
            .map(|k| (k.peer_asn, k.peer_ip))
            .collect()
    }

    fn meta_for(&mut self, meta: Arc<PeerMeta>) -> Arc<PeerMeta> {
        if !self.truncate || meta.second_granularity {
            return meta;
        }
        self.rewritten
            .entry(meta.key.clone())
            .or_insert_with(|| Arc::new(PeerMeta { second_granularity: true, ..(*meta).clone() }))
            .clone()
    }
}

impl UpdateSource for VantageSource {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        loop {
            let Some(item) = self.inner.next_item()? else {
                return Ok(None);
            };
            match item {
                SourceItem::Session(meta) => {
                    if meta.key.collector != self.collector {
                        continue;
                    }
                    return Ok(Some(SourceItem::Session(self.meta_for(meta))));
                }
                SourceItem::Update(meta, mut update) => {
                    if meta.key.collector != self.collector {
                        continue;
                    }
                    let meta = self.meta_for(meta);
                    if self.truncate {
                        // What a second-granularity collector does to the
                        // data in the first place; per-session order is
                        // preserved (the map is monotone).
                        update.time_us -= update.time_us % 1_000_000;
                    }
                    return Ok(Some(SourceItem::Update(meta, update)));
                }
            }
        }
    }
}

/// The collector names of the day's universe — the vantage list.
pub fn vantage_names(cfg: &Mar20Config) -> Vec<String> {
    Mar20Source::new(cfg).universe().collectors.clone()
}

/// Streams one vantage of the day into MRT form — what that collector
/// would publish. Returns the update count and the vantage's
/// route-server endpoints (side-band metadata MRT cannot carry). One
/// session is resident at a time regardless of the day's length.
pub fn write_vantage_mrt<W: std::io::Write>(
    cfg: &MultiVantageConfig,
    collector: &str,
    w: W,
) -> Result<(u64, Vec<(kcc_bgp_types::Asn, std::net::IpAddr)>), SourceError> {
    let mut source = VantageSource::new(cfg, collector);
    let route_servers = source.route_server_peers();
    let mut writer = kcc_mrt::MrtWriter::new(w);
    let mut updates = 0u64;
    while let Some(item) = source.next_item()? {
        if let SourceItem::Update(meta, update) = item {
            writer
                .write_record(&kcc_collector::archive::mrt_record_for(
                    &meta,
                    cfg.base.epoch_seconds,
                    &update,
                ))
                .map_err(|e| SourceError::Other(format!("write vantage MRT: {e}")))?;
            updates += 1;
        }
    }
    writer.flush().map_err(|e| SourceError::Other(format!("flush vantage MRT: {e}")))?;
    Ok((updates, route_servers))
}

/// Builds the full synthetic corpus: one [`VantageSource`] per universe
/// collector, plus the shared allocation registry. K vantages × one
/// deterministic regeneration each.
pub fn multi_vantage_corpus(
    cfg: &MultiVantageConfig,
) -> Result<(Corpus<'static>, AllocationRegistry), SourceError> {
    let mut corpus = Corpus::new();
    let mut registry = None;
    for name in vantage_names(&cfg.base) {
        let vantage = VantageSource::new(cfg, &name);
        if registry.is_none() {
            registry = Some(vantage.registry().clone());
        }
        corpus.push(&name, vantage)?;
    }
    let registry =
        registry.ok_or_else(|| SourceError::Other("universe has no collectors".into()))?;
    Ok((corpus, registry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mar20::generate_mar20;
    use crate::universe::UniverseConfig;
    use kcc_collector::UpdateArchive;

    fn small_cfg() -> MultiVantageConfig {
        MultiVantageConfig {
            base: Mar20Config {
                target_announcements: 6_000,
                universe: UniverseConfig {
                    n_collectors: 3,
                    n_peers: 9,
                    n_sessions: 18,
                    n_prefixes_v4: 150,
                    n_prefixes_v6: 15,
                    second_granularity_prob: 0.0,
                    ..Default::default()
                },
                ..Default::default()
            },
            force_second_granularity: Vec::new(),
        }
    }

    #[test]
    fn vantages_partition_the_day() {
        let cfg = small_cfg();
        let whole = generate_mar20(&cfg.base).archive;
        let mut union = UpdateArchive::new(cfg.base.epoch_seconds);
        let mut per_vantage_updates = Vec::new();
        for name in vantage_names(&cfg.base) {
            let mut v = VantageSource::new(&cfg, &name);
            let part = UpdateArchive::from_source(&mut v, cfg.base.epoch_seconds).unwrap();
            for (_, rec) in part.sessions() {
                assert_eq!(rec.meta.key.collector, name, "leaked another vantage's session");
            }
            per_vantage_updates.push(part.update_count());
            for (key, rec) in part.sessions() {
                union.add_session(rec.meta.clone());
                for u in &rec.updates {
                    union.record(key, u.clone());
                }
            }
        }
        assert!(per_vantage_updates.iter().filter(|&&n| n > 0).count() >= 2);
        assert_eq!(union.update_count(), whole.update_count());
        assert_eq!(union.session_count(), whole.session_count());
        for (key, rec) in whole.sessions() {
            assert_eq!(union.session(key).unwrap().updates, rec.updates, "session {key}");
        }
    }

    #[test]
    fn forced_truncation_is_per_collector() {
        let mut cfg = small_cfg();
        let names = vantage_names(&cfg.base);
        cfg.force_second_granularity = vec![names[0].clone()];

        let mut forced = VantageSource::new(&cfg, &names[0]);
        let forced_archive =
            UpdateArchive::from_source(&mut forced, cfg.base.epoch_seconds).unwrap();
        assert!(forced_archive.update_count() > 0);
        for (_, rec) in forced_archive.sessions() {
            assert!(rec.meta.second_granularity, "forced vantage metas must be rewritten");
            assert!(rec.updates.iter().all(|u| u.time_us % 1_000_000 == 0));
        }

        let mut other = VantageSource::new(&cfg, &names[1]);
        let other_archive = UpdateArchive::from_source(&mut other, cfg.base.epoch_seconds).unwrap();
        assert!(
            other_archive
                .sessions()
                .flat_map(|(_, rec)| &rec.updates)
                .any(|u| u.time_us % 1_000_000 != 0),
            "untouched vantages keep microsecond stamps"
        );
    }

    #[test]
    fn corpus_builder_covers_all_collectors() {
        let cfg = small_cfg();
        let (corpus, registry) = multi_vantage_corpus(&cfg).unwrap();
        assert_eq!(corpus.len(), 3);
        assert!(registry.asn_allocated(crate::mar20::BEACON_ORIGIN, 0));
    }
}
