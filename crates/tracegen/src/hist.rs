//! Longitudinal generation, 2010–2020 (paper Figs. 2 and 6).
//!
//! The paper samples one full day every three months across ten years and
//! observes: session counts roughly double, community usage grows
//! strongly (×2.5 unique communities per Streibelt et al.), yet the
//! *shares* of announcement types stay roughly stable. The history
//! generator evolves the universe parameters along those axes and emits
//! one `Mar20Config` per sampled day.

use crate::mar20::Mar20Config;
use crate::universe::UniverseConfig;

/// History generation configuration.
#[derive(Debug, Clone)]
pub struct HistConfig {
    /// Base seed; each day derives its own.
    pub seed: u64,
    /// First sampled year.
    pub start_year: u16,
    /// Last sampled year (inclusive).
    pub end_year: u16,
    /// Days per year (4 = quarterly, matching the paper).
    pub samples_per_year: u8,
    /// Per-day announcement volume at the 2020 end of the series.
    pub target_announcements_2020: u64,
    /// Session count at the 2020 end (halves toward 2010).
    pub sessions_2020: usize,
}

impl Default for HistConfig {
    fn default() -> Self {
        HistConfig {
            seed: 42,
            start_year: 2010,
            end_year: 2020,
            samples_per_year: 4,
            target_announcements_2020: 40_000,
            sessions_2020: 60,
        }
    }
}

/// Builds the per-day configurations with evolving parameters.
pub fn day_configs(cfg: &HistConfig) -> Vec<(String, Mar20Config)> {
    let mut out = Vec::new();
    let years = cfg.end_year - cfg.start_year;
    let total_days = years as usize * cfg.samples_per_year as usize + 1;
    for i in 0..total_days {
        let year = cfg.start_year as usize + i / cfg.samples_per_year as usize;
        let quarter = i % cfg.samples_per_year as usize;
        let month = 3 * quarter + 3; // 03, 06, 09, 12
        let label = format!("{year}-{month:02}-15");
        // 0.0 at 2010 → 1.0 at 2020.
        let f = i as f64 / (total_days - 1).max(1) as f64;

        // Sessions roughly double over the decade; volume grows ~2.5×.
        let sessions = ((cfg.sessions_2020 as f64) * (0.5 + 0.5 * f)).round() as usize;
        let peers = (sessions as f64 * 0.4).round() as usize;
        let target = ((cfg.target_announcements_2020 as f64) * (0.4 + 0.6 * f)) as u64;
        // Community adoption: coverage grows moderately (visible share
        // ≈ 0.59 → 0.72, tracking Giotsas et al.'s ~50% coverage by 2016)
        // while tag *diversity* — unique values, Streibelt et al.'s ×2.5 —
        // grows via the city pools below. This keeps type shares roughly
        // stable, as the paper observes.
        let tagged_visible = 0.72 + 0.16 * f;
        let cities_hi = (6.0 + 18.0 * f) as u16;

        // Beacon visibility grows with the collector systems: more peers
        // carry the beacons in 2020 than in 2010 (d_beacon spans 577 of
        // 1504 sessions in the paper's 2020 snapshot).
        let beacon_session_fraction = 0.2 + 0.2 * f;

        let day = Mar20Config {
            seed: cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            universe: UniverseConfig {
                seed: cfg.seed ^ (i as u64),
                n_sessions: sessions.max(4),
                n_peers: peers.max(2),
                n_collectors: 6,
                n_prefixes_v4: 1_500,
                n_prefixes_v6: if year >= 2012 { 150 } else { 20 },
                cities_per_transit: (4, cities_hi.max(5)),
                ..Default::default()
            },
            target_announcements: target,
            class_tagged_visible: tagged_visible,
            beacon_session_fraction,
            ..Default::default()
        };
        out.push((label, day));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarterly_labels_across_decade() {
        let days = day_configs(&HistConfig::default());
        assert_eq!(days.len(), 41); // 10 years × 4 + 1
        assert_eq!(days[0].0, "2010-03-15");
        assert_eq!(days[4].0, "2011-03-15");
        assert_eq!(days.last().unwrap().0, "2020-03-15");
    }

    #[test]
    fn sessions_roughly_double() {
        let days = day_configs(&HistConfig::default());
        let first = days[0].1.universe.n_sessions;
        let last = days.last().unwrap().1.universe.n_sessions;
        assert!((last as f64 / first as f64 - 2.0).abs() < 0.2, "{first} → {last}");
    }

    #[test]
    fn adoption_grows() {
        let days = day_configs(&HistConfig::default());
        assert!(days[0].1.class_tagged_visible < days.last().unwrap().1.class_tagged_visible);
        assert!(
            days[0].1.universe.cities_per_transit.1
                < days.last().unwrap().1.universe.cities_per_transit.1
        );
    }

    #[test]
    fn volume_grows() {
        let days = day_configs(&HistConfig::default());
        assert!(days[0].1.target_announcements < days.last().unwrap().1.target_announcements);
    }

    #[test]
    fn seeds_differ_per_day() {
        let days = day_configs(&HistConfig::default());
        assert_ne!(days[0].1.seed, days[1].1.seed);
    }
}
