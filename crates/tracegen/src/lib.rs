//! # kcc-tracegen — statistical BGP update trace generation
//!
//! The paper analyzes ~1 billion updates per sampled day from RouteViews
//! and RIPE RIS. Those archives are not redistributable at repository
//! scale, so this crate synthesizes update streams from the *generative
//! mechanisms* the paper identifies, at a configurable scale:
//!
//! * a [`universe`] of collectors, peer sessions, transit ASes (some of
//!   which geo-tag), origin ASes and prefixes — with route-server peers
//!   and second-granularity collectors mixed in as in the real systems;
//! * per-`(session, prefix)` [`streams`] whose event processes produce the
//!   paper's announcement types *mechanistically*: path changes between
//!   candidate routes (`pc`/`pn`), upstream community churn (`nc`, or `nn`
//!   through egress-cleaning peers), iBGP/MED duplicates (`nn`), and rare
//!   prepend toggles (`xc`/`xn`);
//! * a March-2020-style snapshot ([`mar20`]) whose Table 1/Table 2
//!   statistics match the paper's *shape* at `scale < 1`;
//! * per-collector vantages of that same day ([`multi_vantage`]) — the
//!   paper's "same day, many collectors" corpus with a configurable
//!   second-granularity subset;
//! * beacon streams ([`beacons`]) driven by the RIS announce/withdraw
//!   timetable with community-exploration bursts during withdrawal
//!   phases;
//! * a longitudinal series ([`hist`]) with parameters evolving 2010→2020
//!   (session growth, community adoption) for Figs. 2 and 6.
//!
//! Everything is seeded and deterministic. The generated archives flow
//! through MRT and the identical `kcc-core` pipeline used for simulator
//! output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacons;
pub mod hist;
pub mod mar20;
pub mod multi_vantage;
pub mod streams;
pub mod universe;

pub use mar20::{generate_mar20, GenOutput, Mar20Config, Mar20Source};
pub use multi_vantage::{
    multi_vantage_corpus, vantage_names, write_vantage_mrt, MultiVantageConfig, VantageSource,
};
pub use universe::{PeerSpec, PrefixSpec, TransitSpec, Universe};
