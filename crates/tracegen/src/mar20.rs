//! The March-2020-style snapshot generator (*d_mar20*).
//!
//! Produces a full collector-day: background streams for thousands of
//! prefixes plus beacon streams on a subset of sessions, with bogon
//! injection (so the cleaning stage has real work), route-server peers,
//! and second-granularity collectors. Scale is set by
//! [`Mar20Config::target_announcements`]; the paper's day has ~1.008 B
//! announcements, the default here is 300 k (a ~1/3400 scale model with
//! the same per-stream statistics).

use kcc_bgp_types::{AsPath, Asn, PathAttributes, Prefix, RouteUpdate};
use kcc_collector::beacon::ripe_beacon_prefixes;
use kcc_collector::{BeaconSchedule, PeerMeta, UpdateArchive};
use kcc_core::AllocationRegistry;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::beacons::{generate_beacon_stream, BeaconBurstConfig};
use crate::streams::{
    generate_stream, sample_event_count, StreamClass, StreamProcessConfig, StreamTemplate,
};
use crate::universe::{build_universe, Universe, UniverseConfig};

/// Microseconds per day.
pub const DAY_US: u64 = 24 * 3600 * 1_000_000;
/// 2020-03-15 00:00:00 UTC.
pub const MAR15_2020_EPOCH: u32 = 1_584_230_400;

/// Snapshot generator configuration.
#[derive(Debug, Clone)]
pub struct Mar20Config {
    /// Seed for the whole generation.
    pub seed: u64,
    /// Universe shape.
    pub universe: UniverseConfig,
    /// Stream event process.
    pub process: StreamProcessConfig,
    /// Beacon burst shape.
    pub burst: BeaconBurstConfig,
    /// Approximate number of background announcements to generate.
    pub target_announcements: u64,
    /// Mean events per active stream (heavy-tailed).
    pub mean_events_per_stream: f64,
    /// Probability a stream of a *non-cleaning* peer is class A (tagged,
    /// visible). Streams of egress-cleaning peers are always class B, so
    /// the overall visible share is `(1 - peer_cleans_prob) ×` this.
    pub class_tagged_visible: f64,
    /// Probability a non-cleaning peer's stream is class B anyway (an
    /// upstream cleaned it).
    pub class_tagged_cleaned: f64,
    /// Beacon prefixes (origin AS12654).
    pub beacon_prefixes: Vec<Prefix>,
    /// Fraction of sessions that carry the beacons (paper: 577/1504).
    pub beacon_session_fraction: f64,
    /// Rate of bogon announcements (unallocated ASN or prefix) per
    /// session, relative to its background stream count.
    pub bogon_rate: f64,
    /// Archive epoch.
    pub epoch_seconds: u32,
}

impl Default for Mar20Config {
    fn default() -> Self {
        Mar20Config {
            seed: 42,
            universe: UniverseConfig::default(),
            process: StreamProcessConfig::default(),
            burst: BeaconBurstConfig::default(),
            target_announcements: 300_000,
            mean_events_per_stream: 6.0,
            class_tagged_visible: 0.88,
            class_tagged_cleaned: 0.02,
            beacon_prefixes: ripe_beacon_prefixes(),
            beacon_session_fraction: 0.4,
            bogon_rate: 0.002,
            epoch_seconds: MAR15_2020_EPOCH,
        }
    }
}

/// Everything the generator produces.
#[derive(Debug)]
pub struct GenOutput {
    /// The collector-day archive (all collectors merged; sessions carry
    /// their collector name).
    pub archive: UpdateArchive,
    /// The allocation registry covering the universe (bogons excluded).
    pub registry: AllocationRegistry,
    /// The generated universe.
    pub universe: Universe,
    /// The beacon prefixes in play.
    pub beacon_prefixes: Vec<Prefix>,
}

/// The beacon origin AS (RIPE RIS).
pub const BEACON_ORIGIN: Asn = Asn(12_654);

fn roll_class(rng: &mut StdRng, cfg: &Mar20Config, peer_cleans: bool) -> StreamClass {
    if peer_cleans {
        return StreamClass::TaggedCleaned;
    }
    let r: f64 = rng.gen();
    if r < cfg.class_tagged_visible {
        StreamClass::TaggedVisible
    } else if r < cfg.class_tagged_visible + cfg.class_tagged_cleaned {
        StreamClass::TaggedCleaned
    } else {
        StreamClass::Untagged
    }
}

/// Generates the snapshot.
pub fn generate_mar20(cfg: &Mar20Config) -> GenOutput {
    let (universe, traits) = build_universe(&cfg.universe);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Allocation registry: the legitimate universe, allocated from day 0.
    let mut registry = AllocationRegistry::new();
    for p in &universe.peers {
        registry.register_asn(p.asn, 0);
    }
    for t in &universe.transits {
        registry.register_asn(t.asn, 0);
    }
    for &o in &universe.origins {
        registry.register_asn(o, 0);
    }
    registry.register_asn(BEACON_ORIGIN, 0);
    for spec in &universe.prefixes {
        registry.register_block(spec.prefix, 0);
    }
    for bp in &cfg.beacon_prefixes {
        registry.register_block(*bp, 0);
    }

    let mut archive = UpdateArchive::new(cfg.epoch_seconds);
    let schedule = BeaconSchedule::default();

    let total_sessions: usize = universe.peers.iter().map(|p| p.sessions.len()).sum();
    let streams_per_session = ((cfg.target_announcements as f64
        / total_sessions.max(1) as f64
        / (cfg.mean_events_per_stream + 1.0))
        .ceil() as usize)
        .max(1);

    for peer in &universe.peers {
        for key in &peer.sessions {
            let second_granularity = universe
                .collector_index(&key.collector)
                .map(|i| traits.second_granularity[i])
                .unwrap_or(false);
            archive.add_session(PeerMeta {
                key: key.clone(),
                route_server: peer.route_server,
                second_granularity,
            });

            let mut session_updates: Vec<RouteUpdate> = Vec::new();

            // Background streams.
            for _ in 0..streams_per_session {
                let spec = &universe.prefixes[rng.gen_range(0..universe.prefixes.len())];
                let class = roll_class(&mut rng, cfg, peer.cleans_egress);
                let template = StreamTemplate::build(
                    &mut rng,
                    peer,
                    spec,
                    &universe.transits,
                    class,
                    key.peer_ip,
                );
                let n_events = sample_event_count(&mut rng, cfg.mean_events_per_stream, 200);
                generate_stream(
                    &mut rng,
                    &template,
                    &cfg.process,
                    spec.prefix,
                    n_events,
                    DAY_US,
                    &mut session_updates,
                );
            }

            // Bogons: unallocated ASN in the path or unallocated prefix.
            let n_bogons = (streams_per_session as f64 * cfg.bogon_rate * 10.0).round() as usize;
            for _ in 0..n_bogons {
                let t = rng.gen_range(0..DAY_US);
                if rng.gen_bool(0.5) {
                    // Unallocated (documentation-range) ASN in the path.
                    let attrs = PathAttributes {
                        as_path: AsPath::from_asns([peer.asn, Asn(64_499), BEACON_ORIGIN]),
                        next_hop: key.peer_ip,
                        ..Default::default()
                    };
                    let spec = &universe.prefixes[rng.gen_range(0..universe.prefixes.len())];
                    session_updates.push(RouteUpdate::announce(t, spec.prefix, attrs));
                } else {
                    // Unallocated prefix (TEST-NET-3 is never registered).
                    let attrs = PathAttributes {
                        as_path: AsPath::from_asns([peer.asn, universe.origins[0]]),
                        next_hop: key.peer_ip,
                        ..Default::default()
                    };
                    let bogon: Prefix = "203.0.113.0/24".parse().expect("literal prefix");
                    session_updates.push(RouteUpdate::announce(t, bogon, attrs));
                }
            }

            // Beacon streams on a subset of sessions.
            if rng.gen_bool(cfg.beacon_session_fraction) {
                for bp in &cfg.beacon_prefixes {
                    let spec = crate::universe::PrefixSpec { prefix: *bp, origin: BEACON_ORIGIN };
                    let class = if peer.cleans_egress {
                        StreamClass::TaggedCleaned
                    } else if rng.gen_bool(0.65) {
                        StreamClass::TaggedVisible
                    } else {
                        StreamClass::Untagged
                    };
                    let template = StreamTemplate::build(
                        &mut rng,
                        peer,
                        &spec,
                        &universe.transits,
                        class,
                        key.peer_ip,
                    );
                    generate_beacon_stream(
                        &mut rng,
                        &template,
                        &schedule,
                        &cfg.burst,
                        *bp,
                        0,
                        &mut session_updates,
                    );
                }
            }

            session_updates.sort_by_key(|u| u.time_us);
            if second_granularity {
                kcc_collector::timestamps::truncate_to_seconds(&mut session_updates);
            }
            for u in session_updates {
                archive.record(key, u);
            }
        }
    }

    GenOutput { archive, registry, universe, beacon_prefixes: cfg.beacon_prefixes.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_core::{classify_archive, clean_archive, AnnouncementType, CleaningConfig};

    fn small_config() -> Mar20Config {
        Mar20Config {
            target_announcements: 20_000,
            universe: UniverseConfig {
                n_collectors: 4,
                n_peers: 20,
                n_sessions: 40,
                n_prefixes_v4: 400,
                n_prefixes_v6: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn generates_roughly_target_volume() {
        let out = generate_mar20(&small_config());
        let n = out.archive.announcement_count() as f64;
        assert!(n > 10_000.0, "too few announcements: {n}");
        assert!(n < 80_000.0, "too many announcements: {n}");
    }

    #[test]
    fn deterministic() {
        let cfg = small_config();
        let a = generate_mar20(&cfg);
        let b = generate_mar20(&cfg);
        assert_eq!(a.archive.update_count(), b.archive.update_count());
        assert_eq!(a.archive.announcement_count(), b.archive.announcement_count());
    }

    #[test]
    fn cleaning_removes_bogons_only() {
        let out = generate_mar20(&small_config());
        let mut archive = out.archive.clone();
        let before = archive.update_count() as u64;
        let report = clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
        assert!(report.removed_unallocated_asn > 0, "no ASN bogons generated");
        assert!(report.removed_unallocated_prefix > 0, "no prefix bogons generated");
        let removed = report.removed_unallocated_asn + report.removed_unallocated_prefix;
        assert!(
            (removed as f64) < before as f64 * 0.02,
            "bogons should be rare: {removed}/{before}"
        );
        assert_eq!(report.kept + removed, before);
    }

    #[test]
    fn type_mix_matches_paper_shape() {
        // The headline reproduction: ~half of announcements show no path
        // change, and half of those change only the community attribute.
        let out = generate_mar20(&small_config());
        let mut archive = out.archive.clone();
        clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
        let classified = classify_archive(&archive);
        let c = &classified.counts;
        let pc = c.share(AnnouncementType::Pc);
        let pn = c.share(AnnouncementType::Pn);
        let nc = c.share(AnnouncementType::Nc);
        let nn = c.share(AnnouncementType::Nn);
        let x = c.share(AnnouncementType::Xc) + c.share(AnnouncementType::Xn);
        assert!((28.0..42.0).contains(&pc), "pc {pc:.1}% out of band");
        assert!((10.0..22.0).contains(&pn), "pn {pn:.1}% out of band");
        assert!((18.0..32.0).contains(&nc), "nc {nc:.1}% out of band");
        assert!((18.0..33.0).contains(&nn), "nn {nn:.1}% out of band");
        assert!(x < 3.0, "x types should be ~1%: {x:.1}%");
        // nc + nn ≈ half of all announcements (paper: 50.2%).
        assert!((40.0..62.0).contains(&(nc + nn)), "no-path-change {:.1}%", nc + nn);
    }

    #[test]
    fn beacon_subset_present() {
        let out = generate_mar20(&small_config());
        let beacon_updates: usize = out
            .archive
            .sessions()
            .flat_map(|(_, rec)| &rec.updates)
            .filter(|u| out.beacon_prefixes.contains(&u.prefix))
            .count();
        assert!(beacon_updates > 0, "no beacon traffic generated");
    }

    #[test]
    fn second_granularity_collectors_truncate() {
        let mut cfg = small_config();
        cfg.universe.second_granularity_prob = 1.0;
        let out = generate_mar20(&cfg);
        let mut found = false;
        for (_, rec) in out.archive.sessions() {
            if rec.meta.second_granularity && !rec.updates.is_empty() {
                found = true;
                assert!(rec.updates.iter().all(|u| u.time_us % 1_000_000 == 0));
            }
        }
        assert!(found, "no second-granularity session generated");
    }
}
