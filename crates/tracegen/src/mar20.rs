//! The March-2020-style snapshot generator (*d_mar20*).
//!
//! Produces a full collector-day: background streams for thousands of
//! prefixes plus beacon streams on a subset of sessions, with bogon
//! injection (so the cleaning stage has real work), route-server peers,
//! and second-granularity collectors. Scale is set by
//! [`Mar20Config::target_announcements`]; the paper's day has ~1.008 B
//! announcements, the default here is 300 k (a ~1/3400 scale model with
//! the same per-stream statistics).

use kcc_bgp_types::{AsPath, Asn, PathAttributes, Prefix, RouteUpdate};
use kcc_collector::beacon::ripe_beacon_prefixes;
use kcc_collector::{BeaconSchedule, PeerMeta, UpdateArchive};
use kcc_core::AllocationRegistry;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::beacons::{generate_beacon_stream, BeaconBurstConfig};
use crate::streams::{
    generate_stream, sample_event_count, StreamClass, StreamProcessConfig, StreamTemplate,
};
use crate::universe::{build_universe, Universe, UniverseConfig};

/// Microseconds per day.
pub const DAY_US: u64 = 24 * 3600 * 1_000_000;
/// 2020-03-15 00:00:00 UTC.
pub const MAR15_2020_EPOCH: u32 = 1_584_230_400;

/// Snapshot generator configuration.
#[derive(Debug, Clone)]
pub struct Mar20Config {
    /// Seed for the whole generation.
    pub seed: u64,
    /// Universe shape.
    pub universe: UniverseConfig,
    /// Stream event process.
    pub process: StreamProcessConfig,
    /// Beacon burst shape.
    pub burst: BeaconBurstConfig,
    /// Approximate number of background announcements to generate.
    pub target_announcements: u64,
    /// Mean events per active stream (heavy-tailed).
    pub mean_events_per_stream: f64,
    /// Probability a stream of a *non-cleaning* peer is class A (tagged,
    /// visible). Streams of egress-cleaning peers are always class B, so
    /// the overall visible share is `(1 - peer_cleans_prob) ×` this.
    pub class_tagged_visible: f64,
    /// Probability a non-cleaning peer's stream is class B anyway (an
    /// upstream cleaned it).
    pub class_tagged_cleaned: f64,
    /// Beacon prefixes (origin AS12654).
    pub beacon_prefixes: Vec<Prefix>,
    /// Fraction of sessions that carry the beacons (paper: 577/1504).
    pub beacon_session_fraction: f64,
    /// Rate of bogon announcements (unallocated ASN or prefix) per
    /// session, relative to its background stream count.
    pub bogon_rate: f64,
    /// Archive epoch.
    pub epoch_seconds: u32,
}

impl Default for Mar20Config {
    fn default() -> Self {
        Mar20Config {
            seed: 42,
            universe: UniverseConfig::default(),
            process: StreamProcessConfig::default(),
            burst: BeaconBurstConfig::default(),
            target_announcements: 300_000,
            mean_events_per_stream: 6.0,
            class_tagged_visible: 0.88,
            class_tagged_cleaned: 0.02,
            beacon_prefixes: ripe_beacon_prefixes(),
            beacon_session_fraction: 0.4,
            bogon_rate: 0.002,
            epoch_seconds: MAR15_2020_EPOCH,
        }
    }
}

/// Everything the generator produces.
#[derive(Debug)]
pub struct GenOutput {
    /// The collector-day archive (all collectors merged; sessions carry
    /// their collector name).
    pub archive: UpdateArchive,
    /// The allocation registry covering the universe (bogons excluded).
    pub registry: AllocationRegistry,
    /// The generated universe.
    pub universe: Universe,
    /// The beacon prefixes in play.
    pub beacon_prefixes: Vec<Prefix>,
}

/// The beacon origin AS (RIPE RIS).
pub const BEACON_ORIGIN: Asn = Asn(12_654);

fn roll_class(rng: &mut StdRng, cfg: &Mar20Config, peer_cleans: bool) -> StreamClass {
    if peer_cleans {
        return StreamClass::TaggedCleaned;
    }
    let r: f64 = rng.gen();
    if r < cfg.class_tagged_visible {
        StreamClass::TaggedVisible
    } else if r < cfg.class_tagged_visible + cfg.class_tagged_cleaned {
        StreamClass::TaggedCleaned
    } else {
        StreamClass::Untagged
    }
}

/// Streams the snapshot session by session — the constant-memory form of
/// [`generate_mar20`]. At any moment the source holds the universe, the
/// registry and **one** session's updates; a 1-billion-announcement day
/// never exists in memory at once.
///
/// The RNG consumption order is identical to the batch generator's (which
/// is implemented as a collector over this source), so both produce
/// byte-identical archives for the same [`Mar20Config`].
#[derive(Debug)]
pub struct Mar20Source {
    cfg: Mar20Config,
    universe: Universe,
    traits: crate::universe::CollectorTraits,
    registry: AllocationRegistry,
    schedule: BeaconSchedule,
    rng: StdRng,
    streams_per_session: usize,
    peer_idx: usize,
    session_idx: usize,
    pending: std::collections::VecDeque<kcc_collector::SourceItem>,
}

impl Mar20Source {
    /// Builds the universe and registry and positions the stream at the
    /// first session.
    pub fn new(cfg: &Mar20Config) -> Self {
        let (universe, traits) = build_universe(&cfg.universe);
        let rng = StdRng::seed_from_u64(cfg.seed);

        // Allocation registry: the legitimate universe, allocated from
        // day 0.
        let mut registry = AllocationRegistry::new();
        for p in &universe.peers {
            registry.register_asn(p.asn, 0);
        }
        for t in &universe.transits {
            registry.register_asn(t.asn, 0);
        }
        for &o in &universe.origins {
            registry.register_asn(o, 0);
        }
        registry.register_asn(BEACON_ORIGIN, 0);
        for spec in &universe.prefixes {
            registry.register_block(spec.prefix, 0);
        }
        for bp in &cfg.beacon_prefixes {
            registry.register_block(*bp, 0);
        }

        let total_sessions: usize = universe.peers.iter().map(|p| p.sessions.len()).sum();
        let streams_per_session = ((cfg.target_announcements as f64
            / total_sessions.max(1) as f64
            / (cfg.mean_events_per_stream + 1.0))
            .ceil() as usize)
            .max(1);

        Mar20Source {
            cfg: cfg.clone(),
            universe,
            traits,
            registry,
            schedule: BeaconSchedule::default(),
            rng,
            streams_per_session,
            peer_idx: 0,
            session_idx: 0,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// The allocation registry covering the universe (bogons excluded) —
    /// available before or during streaming, for the cleaning stage.
    pub fn registry(&self) -> &AllocationRegistry {
        &self.registry
    }

    /// The generated universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The `(ASN, IP)` endpoints of route-server peers — session
    /// metadata MRT cannot carry, needed to rebuild `PeerMeta` when the
    /// generated stream goes through MRT bytes.
    pub fn route_server_peers(&self) -> Vec<(Asn, std::net::IpAddr)> {
        self.universe
            .peers
            .iter()
            .filter(|p| p.route_server)
            .flat_map(|p| p.sessions.iter().map(|k| (k.peer_asn, k.peer_ip)))
            .collect()
    }

    /// Generates one session's day and queues it.
    fn generate_next_session(&mut self) {
        while self.peer_idx < self.universe.peers.len() {
            let peer = &self.universe.peers[self.peer_idx];
            if self.session_idx >= peer.sessions.len() {
                self.peer_idx += 1;
                self.session_idx = 0;
                continue;
            }
            let key = &peer.sessions[self.session_idx];
            self.session_idx += 1;

            let second_granularity = self
                .universe
                .collector_index(&key.collector)
                .map(|i| self.traits.second_granularity[i])
                .unwrap_or(false);
            let meta = std::sync::Arc::new(PeerMeta {
                key: key.clone(),
                route_server: peer.route_server,
                second_granularity,
            });

            let mut session_updates: Vec<RouteUpdate> = Vec::new();
            let rng = &mut self.rng;

            // Background streams.
            for _ in 0..self.streams_per_session {
                let spec = &self.universe.prefixes[rng.gen_range(0..self.universe.prefixes.len())];
                let class = roll_class(rng, &self.cfg, peer.cleans_egress);
                let template = StreamTemplate::build(
                    rng,
                    peer,
                    spec,
                    &self.universe.transits,
                    class,
                    key.peer_ip,
                );
                let n_events = sample_event_count(rng, self.cfg.mean_events_per_stream, 200);
                generate_stream(
                    rng,
                    &template,
                    &self.cfg.process,
                    spec.prefix,
                    n_events,
                    DAY_US,
                    &mut session_updates,
                );
            }

            // Bogons: unallocated ASN in the path or unallocated prefix.
            let n_bogons =
                (self.streams_per_session as f64 * self.cfg.bogon_rate * 10.0).round() as usize;
            for _ in 0..n_bogons {
                let t = rng.gen_range(0..DAY_US);
                if rng.gen_bool(0.5) {
                    // Unallocated (documentation-range) ASN in the path.
                    let attrs = PathAttributes {
                        as_path: AsPath::from_asns([peer.asn, Asn(64_499), BEACON_ORIGIN]),
                        next_hop: key.peer_ip,
                        ..Default::default()
                    };
                    let spec =
                        &self.universe.prefixes[rng.gen_range(0..self.universe.prefixes.len())];
                    session_updates.push(RouteUpdate::announce(t, spec.prefix, attrs));
                } else {
                    // Unallocated prefix (TEST-NET-3 is never registered).
                    let attrs = PathAttributes {
                        as_path: AsPath::from_asns([peer.asn, self.universe.origins[0]]),
                        next_hop: key.peer_ip,
                        ..Default::default()
                    };
                    let bogon: Prefix = "203.0.113.0/24".parse().expect("literal prefix");
                    session_updates.push(RouteUpdate::announce(t, bogon, attrs));
                }
            }

            // Beacon streams on a subset of sessions.
            if rng.gen_bool(self.cfg.beacon_session_fraction) {
                for bp in &self.cfg.beacon_prefixes {
                    let spec = crate::universe::PrefixSpec { prefix: *bp, origin: BEACON_ORIGIN };
                    let class = if peer.cleans_egress {
                        StreamClass::TaggedCleaned
                    } else if rng.gen_bool(0.65) {
                        StreamClass::TaggedVisible
                    } else {
                        StreamClass::Untagged
                    };
                    let template = StreamTemplate::build(
                        rng,
                        peer,
                        &spec,
                        &self.universe.transits,
                        class,
                        key.peer_ip,
                    );
                    generate_beacon_stream(
                        rng,
                        &template,
                        &self.schedule,
                        &self.cfg.burst,
                        *bp,
                        0,
                        &mut session_updates,
                    );
                }
            }

            session_updates.sort_by_key(|u| u.time_us);
            if second_granularity {
                kcc_collector::timestamps::truncate_to_seconds(&mut session_updates);
            }
            self.pending
                .push_back(kcc_collector::SourceItem::Session(std::sync::Arc::clone(&meta)));
            self.pending.extend(
                session_updates
                    .into_iter()
                    .map(|u| kcc_collector::SourceItem::Update(std::sync::Arc::clone(&meta), u)),
            );
            return;
        }
    }
}

impl kcc_collector::UpdateSource for Mar20Source {
    fn next_item(
        &mut self,
    ) -> Result<Option<kcc_collector::SourceItem>, kcc_collector::SourceError> {
        while self.pending.is_empty() && self.peer_idx < self.universe.peers.len() {
            self.generate_next_session();
        }
        Ok(self.pending.pop_front())
    }
}

/// Generates the snapshot — the batch wrapper that drains a
/// [`Mar20Source`] into an archive.
pub fn generate_mar20(cfg: &Mar20Config) -> GenOutput {
    use kcc_collector::{SourceItem, UpdateSource};

    let mut source = Mar20Source::new(cfg);
    let mut archive = UpdateArchive::new(cfg.epoch_seconds);
    while let Some(item) = source.next_item().expect("generated sources cannot fail") {
        match item {
            SourceItem::Session(meta) => archive.add_session((*meta).clone()),
            SourceItem::Update(meta, update) => archive.record(&meta.key, update),
        }
    }
    GenOutput {
        archive,
        registry: source.registry,
        universe: source.universe,
        beacon_prefixes: cfg.beacon_prefixes.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_core::{classify_archive, clean_archive, AnnouncementType, CleaningConfig};

    fn small_config() -> Mar20Config {
        Mar20Config {
            target_announcements: 20_000,
            universe: UniverseConfig {
                n_collectors: 4,
                n_peers: 20,
                n_sessions: 40,
                n_prefixes_v4: 400,
                n_prefixes_v6: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn generates_roughly_target_volume() {
        let out = generate_mar20(&small_config());
        let n = out.archive.announcement_count() as f64;
        assert!(n > 10_000.0, "too few announcements: {n}");
        assert!(n < 80_000.0, "too many announcements: {n}");
    }

    #[test]
    fn deterministic() {
        let cfg = small_config();
        let a = generate_mar20(&cfg);
        let b = generate_mar20(&cfg);
        assert_eq!(a.archive.update_count(), b.archive.update_count());
        assert_eq!(a.archive.announcement_count(), b.archive.announcement_count());
    }

    #[test]
    fn cleaning_removes_bogons_only() {
        let out = generate_mar20(&small_config());
        let mut archive = out.archive.clone();
        let before = archive.update_count() as u64;
        let report = clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
        assert!(report.removed_unallocated_asn > 0, "no ASN bogons generated");
        assert!(report.removed_unallocated_prefix > 0, "no prefix bogons generated");
        let removed = report.removed_unallocated_asn + report.removed_unallocated_prefix;
        assert!(
            (removed as f64) < before as f64 * 0.02,
            "bogons should be rare: {removed}/{before}"
        );
        assert_eq!(report.kept + removed, before);
    }

    #[test]
    fn type_mix_matches_paper_shape() {
        // The headline reproduction: ~half of announcements show no path
        // change, and half of those change only the community attribute.
        let out = generate_mar20(&small_config());
        let mut archive = out.archive.clone();
        clean_archive(&mut archive, &out.registry, &CleaningConfig::default());
        let classified = classify_archive(&archive);
        let c = &classified.counts;
        let pc = c.share(AnnouncementType::Pc);
        let pn = c.share(AnnouncementType::Pn);
        let nc = c.share(AnnouncementType::Nc);
        let nn = c.share(AnnouncementType::Nn);
        let x = c.share(AnnouncementType::Xc) + c.share(AnnouncementType::Xn);
        assert!((28.0..42.0).contains(&pc), "pc {pc:.1}% out of band");
        assert!((10.0..22.0).contains(&pn), "pn {pn:.1}% out of band");
        assert!((18.0..32.0).contains(&nc), "nc {nc:.1}% out of band");
        assert!((18.0..33.0).contains(&nn), "nn {nn:.1}% out of band");
        assert!(x < 3.0, "x types should be ~1%: {x:.1}%");
        // nc + nn ≈ half of all announcements (paper: 50.2%).
        assert!((40.0..62.0).contains(&(nc + nn)), "no-path-change {:.1}%", nc + nn);
    }

    #[test]
    fn beacon_subset_present() {
        let out = generate_mar20(&small_config());
        let beacon_updates: usize = out
            .archive
            .sessions()
            .flat_map(|(_, rec)| &rec.updates)
            .filter(|u| out.beacon_prefixes.contains(&u.prefix))
            .count();
        assert!(beacon_updates > 0, "no beacon traffic generated");
    }

    #[test]
    fn second_granularity_collectors_truncate() {
        let mut cfg = small_config();
        cfg.universe.second_granularity_prob = 1.0;
        let out = generate_mar20(&cfg);
        let mut found = false;
        for (_, rec) in out.archive.sessions() {
            if rec.meta.second_granularity && !rec.updates.is_empty() {
                found = true;
                assert!(rec.updates.iter().all(|u| u.time_us % 1_000_000 == 0));
            }
        }
        assert!(found, "no second-granularity session generated");
    }
}
