//! # keep-communities-clean
//!
//! Reproduction of *Keep your Communities Clean: Exploring the Routing
//! Message Impact of BGP Communities* (Krenc, Beverly, Smaragdakis —
//! CoNEXT 2020).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`types`] — BGP data model (ASNs, prefixes, communities, AS paths),
//! * [`wire`] — RFC 4271 message codec,
//! * [`mrt`] — RFC 6396 archive format,
//! * [`topology`] — AS-level Internet generation (Gao–Rexford),
//! * [`sim`] — discrete-event BGP simulator with vendor profiles and the
//!   paper's Figure 1 lab experiments,
//! * [`collector`] — collector sessions, archives, routing beacons,
//! * [`peer`] — live BGP sessions: the RFC 4271 FSM, TCP transport, and
//!   the multi-peer collector daemon feeding the streaming pipeline,
//! * [`tracegen`] — statistical RouteViews/RIS-scale trace generation,
//! * [`analysis`] — the paper's analysis pipeline (cleaning, the
//!   pc/pn/nc/nn/xc/xn classifier, community exploration, revealed
//!   information),
//!
//! plus [`adapter`], which bridges simulator captures into analysis
//! archives.
//!
//! ## Quickstart
//!
//! ```
//! use keep_communities_clean::sim::lab::{run_experiment, LabExperiment};
//! use keep_communities_clean::sim::VendorProfile;
//!
//! // Reproduce the paper's Exp2: a community change alone propagates to
//! // the route collector.
//! let report = run_experiment(LabExperiment::Exp2, VendorProfile::CISCO_IOS);
//! assert_eq!(report.at_collector.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kcc_bgp_sim as sim;
pub use kcc_bgp_types as types;
pub use kcc_bgp_wire as wire;
pub use kcc_collector as collector;
pub use kcc_core as analysis;
pub use kcc_mrt as mrt;
pub use kcc_obs as obs;
pub use kcc_peer as peer;
pub use kcc_topology as topology;
pub use kcc_tracegen as tracegen;

pub mod adapter;
