//! Bridges between the simulator and the analysis pipeline.
//!
//! A simulated collector records [`kcc_bgp_sim::CapturedUpdate`]s; the
//! analysis pipeline consumes [`kcc_collector::UpdateArchive`]s. The
//! adapter converts one into the other, naming sessions the way real
//! collectors do (`collector:ASn@ip`), so every downstream stage —
//! cleaning, classification, beacon phases — is agnostic about whether
//! its input came from the simulator, the trace generator, or an MRT file.

use std::collections::HashMap;
use std::sync::Arc;

use kcc_bgp_sim::{Capture, CapturedUpdate, Network};
use kcc_collector::{PeerMeta, SessionKey, SourceError, SourceItem, UpdateArchive, UpdateSource};
use kcc_topology::RouterId;

/// Streams a simulator capture as an [`UpdateSource`]: one pipeline item
/// per captured message, sessions discovered on first sight — the same
/// shape an MRT byte stream presents, so simulated traffic drives the
/// streaming analysis pipeline directly.
#[derive(Debug)]
pub struct CaptureSource<'a> {
    net: &'a Network,
    collector_name: String,
    entries: std::slice::Iter<'a, CapturedUpdate>,
    sessions: HashMap<SessionKey, Arc<PeerMeta>>,
    pending: Option<SourceItem>,
}

impl<'a> CaptureSource<'a> {
    /// Wraps one collector's capture; `net` resolves peer router IPs.
    pub fn new(net: &'a Network, collector_name: &str, capture: &'a Capture) -> Self {
        CaptureSource {
            net,
            collector_name: collector_name.to_owned(),
            entries: capture.entries().iter(),
            sessions: HashMap::new(),
            pending: None,
        }
    }
}

impl UpdateSource for CaptureSource<'_> {
    fn next_item(&mut self) -> Result<Option<SourceItem>, SourceError> {
        if let Some(item) = self.pending.take() {
            return Ok(Some(item));
        }
        let Some(entry) = self.entries.next() else {
            return Ok(None);
        };
        let peer_ip = self
            .net
            .router(entry.from)
            .map(|r| r.ip)
            .unwrap_or(std::net::IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED));
        let key = SessionKey::new(&self.collector_name, entry.from.asn, peer_ip);
        let update = entry.to_route_update();
        if let Some(meta) = self.sessions.get(&key) {
            return Ok(Some(SourceItem::Update(Arc::clone(meta), update)));
        }
        let meta = Arc::new(PeerMeta::normal(key.clone()));
        self.sessions.insert(key, Arc::clone(&meta));
        self.pending = Some(SourceItem::Update(Arc::clone(&meta), update));
        Ok(Some(SourceItem::Session(meta)))
    }
}

/// Converts one collector's capture into an archive — the batch wrapper
/// over [`CaptureSource`]. Sessions are keyed by the sending peer's AS
/// and router IP.
pub fn capture_to_archive(
    net: &Network,
    collector_name: &str,
    capture: &Capture,
    epoch_seconds: u32,
) -> UpdateArchive {
    let mut source = CaptureSource::new(net, collector_name, capture);
    UpdateArchive::from_source(&mut source, epoch_seconds).expect("capture sources cannot fail")
}

/// Converts every collector capture in a network into one merged archive;
/// collectors are named `rrc00`, `rrc01`, … in router-id order.
pub fn all_captures_to_archive(net: &Network, epoch_seconds: u32) -> UpdateArchive {
    let mut archive = UpdateArchive::new(epoch_seconds);
    for (i, (_, capture)) in net.captures().enumerate() {
        let name = format!("rrc{i:02}");
        let partial = capture_to_archive(net, &name, capture, epoch_seconds);
        for (key, rec) in partial.sessions() {
            archive.add_session(rec.meta.clone());
            for u in &rec.updates {
                archive.record(key, u.clone());
            }
        }
    }
    archive
}

/// The analysis-side session key for a simulated peer router on a named
/// collector.
pub fn session_key_for(net: &Network, collector_name: &str, peer: RouterId) -> Option<SessionKey> {
    net.router(peer).map(|r| SessionKey::new(collector_name, peer.asn, r.ip))
}

/// Dumps a collector's per-peer routing table as TABLE_DUMP_V2 MRT
/// records (PEER_INDEX_TABLE first, then one RIB snapshot per prefix) —
/// the "bview" files RouteViews/RIS publish alongside update archives.
pub fn dump_rib(
    net: &Network,
    collector: RouterId,
    view_name: &str,
    timestamp_seconds: u32,
) -> Vec<kcc_mrt::MrtRecord> {
    use kcc_mrt::{MrtRecord, MrtTimestamp, PeerEntry, PeerIndexTable, RibEntry, RibSnapshot};
    use std::collections::BTreeMap;

    let Some(router) = net.router(collector) else {
        return Vec::new();
    };
    let ts = MrtTimestamp::seconds(timestamp_seconds);

    // Peer table: every session endpoint facing the collector, in a
    // stable order; remember each session's index.
    let mut peers: Vec<PeerEntry> = Vec::new();
    let mut index_of_session: BTreeMap<usize, u16> = BTreeMap::new();
    for &sid in &router.sessions {
        let session = &net.sessions()[sid.0];
        let peer_router = session.other(collector);
        let Some(peer) = net.router(peer_router) else { continue };
        index_of_session.insert(sid.0, peers.len() as u16);
        let bgp_id = match peer.ip {
            std::net::IpAddr::V4(v4) => v4,
            std::net::IpAddr::V6(_) => std::net::Ipv4Addr::UNSPECIFIED,
        };
        peers.push(PeerEntry { bgp_id, addr: peer.ip, asn: peer_router.asn });
    }
    let collector_id = match router.ip {
        std::net::IpAddr::V4(v4) => v4,
        std::net::IpAddr::V6(_) => std::net::Ipv4Addr::UNSPECIFIED,
    };
    let mut records = vec![MrtRecord::PeerIndexTable(PeerIndexTable {
        timestamp: ts,
        collector_id,
        view_name: view_name.to_owned(),
        peers,
    })];

    // RIB snapshots: group the collector's Adj-RIB-In by prefix.
    let mut by_prefix: BTreeMap<kcc_bgp_types::Prefix, Vec<RibEntry>> = BTreeMap::new();
    for ((sid, prefix), entry) in router.adj_rib_in() {
        let Some(&peer_index) = index_of_session.get(&sid.0) else { continue };
        // The MRT archive mutates next hops per prefix family, so this is
        // one of the few places that deep-copies out of the interned store.
        let mut attrs = kcc_bgp_types::PathAttributes::clone(&entry.attrs);
        // TABLE_DUMP_V2 carries IPv6 next hops for IPv6 prefixes; the
        // simulator's v4 router addresses become v4-mapped v6 addresses,
        // exactly as the MRT encoder will serialize them.
        if prefix.is_ipv6() {
            if let std::net::IpAddr::V4(v4) = attrs.next_hop {
                attrs.next_hop = std::net::IpAddr::V6(v4.to_ipv6_mapped());
            }
        }
        by_prefix.entry(prefix).or_default().push(RibEntry {
            peer_index,
            originated_time: timestamp_seconds,
            attrs,
        });
    }
    for (sequence, (prefix, mut entries)) in by_prefix.into_iter().enumerate() {
        entries.sort_by_key(|e| e.peer_index);
        records.push(MrtRecord::RibSnapshot(RibSnapshot {
            timestamp: ts,
            sequence: sequence as u32,
            prefix,
            entries,
        }));
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcc_bgp_sim::lab::{build_lab, LabExperiment, LabNetwork};
    use kcc_bgp_sim::{SimTime, VendorProfile};

    #[test]
    fn lab_capture_converts_to_archive() {
        let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp2, VendorProfile::BIRD_2);
        net.schedule_announce(SimTime::ZERO, ids.z1, kcc_bgp_sim::lab::lab_prefix());
        net.run_until_quiet();
        let capture = net.capture(ids.c1).unwrap().clone();
        let archive = capture_to_archive(&net, "rrc00", &capture, 0);
        assert_eq!(archive.session_count(), 1);
        assert!(archive.announcement_count() >= 1);
        let (key, _) = archive.sessions().next().unwrap();
        assert_eq!(key.collector, "rrc00");
        assert_eq!(key.peer_asn, ids.x1.asn);
    }

    #[test]
    fn merged_archive_covers_all_collectors() {
        let LabNetwork { mut net, ids } = build_lab(LabExperiment::Exp2, VendorProfile::BIRD_2);
        net.schedule_announce(SimTime::ZERO, ids.z1, kcc_bgp_sim::lab::lab_prefix());
        net.run_until_quiet();
        let archive = all_captures_to_archive(&net, 0);
        assert_eq!(archive.session_count(), 1); // one collector, one peer
        assert!(session_key_for(&net, "rrc00", ids.x1).is_some());
        assert!(session_key_for(
            &net,
            "rrc00",
            RouterId { asn: kcc_bgp_types::Asn(99_999), index: 0 }
        )
        .is_none());
    }
}
